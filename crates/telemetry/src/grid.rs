//! [`PhaseGrid`]: a fixed-kind × day accumulation grid for hot loops.
//!
//! The sim's event loop fires millions of events; interning a metric
//! name per event would dominate the cost being measured. A grid is
//! allocated once with the kind names, hot-path recording is two array
//! adds, and the whole grid folds into a [`crate::Telemetry`] registry
//! (and its span tree) after the loop finishes.

use crate::{Plane, Telemetry};

/// Per-(kind, day) counts plus timing-plane nanoseconds.
#[derive(Debug)]
pub struct PhaseGrid {
    kinds: &'static [&'static str],
    /// One row per day, `kinds.len()` wide.
    counts: Vec<Vec<u64>>,
    nanos: Vec<Vec<u64>>,
}

impl PhaseGrid {
    /// A grid over the given kind names (indices into `kinds` are the
    /// hot-path handles). Kind names must not contain `.` — they embed
    /// into dotted metric names.
    pub fn new(kinds: &'static [&'static str]) -> PhaseGrid {
        PhaseGrid {
            kinds,
            counts: Vec::new(),
            nanos: Vec::new(),
        }
    }

    #[inline]
    fn ensure_day(&mut self, day: usize) {
        while self.counts.len() <= day {
            self.counts.push(vec![0; self.kinds.len()]);
            self.nanos.push(vec![0; self.kinds.len()]);
        }
    }

    /// Counts one occurrence of `kind` on `day` (deterministic plane).
    #[inline]
    pub fn count(&mut self, day: usize, kind: usize) {
        self.ensure_day(day);
        self.counts[day][kind] += 1;
    }

    /// Credits `elapsed_ns` of wall-clock to `kind` on `day` (timing
    /// plane).
    #[inline]
    pub fn credit_ns(&mut self, day: usize, kind: usize, elapsed_ns: u64) {
        self.ensure_day(day);
        self.nanos[day][kind] += elapsed_ns;
    }

    /// Total count for one kind across all days.
    pub fn total_count(&self, kind: usize) -> u64 {
        self.counts.iter().map(|d| d[kind]).sum()
    }

    /// Total nanoseconds for one kind across all days.
    pub fn total_ns(&self, kind: usize) -> u64 {
        self.nanos.iter().map(|d| d[kind]).sum()
    }

    /// Folds the grid into `tel`: per-(kind, day) counters named
    /// `{prefix}.{kind}.d{day:02}.count` (deterministic plane) and
    /// `.ns` (timing plane), plus one aggregated span child per kind
    /// named `{spankind}.{kind}` under `tel`'s currently open span.
    /// Days and kinds with zero count and zero ns are skipped.
    pub fn export(&self, tel: &mut Telemetry, prefix: &str, span_prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        for (day, (counts, nanos)) in self.counts.iter().zip(&self.nanos).enumerate() {
            for (k, kind) in self.kinds.iter().enumerate() {
                if counts[k] == 0 && nanos[k] == 0 {
                    continue;
                }
                let c = tel.counter(
                    &format!("{prefix}.{kind}.d{day:02}.count"),
                    Plane::Deterministic,
                );
                tel.add(c, counts[k]);
                let n = tel.counter(&format!("{prefix}.{kind}.d{day:02}.ns"), Plane::Timing);
                tel.add(n, nanos[k]);
            }
        }
        for (k, kind) in self.kinds.iter().enumerate() {
            let count = self.total_count(k);
            if count == 0 && self.total_ns(k) == 0 {
                continue;
            }
            tel.span_aggregate(&format!("{span_prefix}.{kind}"), count, self.total_ns(k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: &[&str] = &["alpha", "beta"];

    #[test]
    fn grid_accumulates_and_exports() {
        let mut g = PhaseGrid::new(KINDS);
        g.count(0, 0);
        g.count(0, 0);
        g.count(2, 1);
        g.credit_ns(2, 1, 500);
        assert_eq!(g.total_count(0), 2);
        assert_eq!(g.total_count(1), 1);
        assert_eq!(g.total_ns(1), 500);

        let mut tel = Telemetry::enabled();
        let root = tel.span_enter("root");
        g.export(&mut tel, "t.ev", "ev");
        tel.span_exit(root);
        let snap = tel.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(get("t.ev.alpha.d00.count"), Some(2));
        assert_eq!(get("t.ev.beta.d02.count"), Some(1));
        // Day 1 was empty for both kinds: skipped entirely.
        assert_eq!(get("t.ev.alpha.d01.count"), None);
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path == "root/ev.beta" && s.count == 1 && s.total_ns == 500));
    }

    #[test]
    fn disabled_export_is_a_noop() {
        let mut g = PhaseGrid::new(KINDS);
        g.count(0, 0);
        let mut tel = Telemetry::disabled();
        g.export(&mut tel, "t", "t");
        assert!(tel.snapshot().is_empty());
    }
}
