//! Snapshot sinks: chrome://tracing JSON, a human-readable profile
//! report, and a dependency-free JSON well-formedness checker used by
//! tests to prove the exporter's output actually parses.

use crate::registry::CounterRow;
use crate::{Plane, Snapshot};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot's span tree as a chrome://tracing /
/// Perfetto-loadable JSON object (`{"traceEvents": [...]}`).
///
/// Aggregated spans have no real begin/end timestamps, so each node is
/// emitted as one complete ("X") event whose duration is its total
/// accumulated time, laid out depth-first with synthetic cumulative
/// start times: a child starts where its parent started, siblings pack
/// left to right. The picture reads as "share of parent time", which is
/// the question a profile answers. Counts ride along in `args`.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut events: Vec<String> = Vec::with_capacity(snap.spans.len());
    // Cursor per depth: where the next sibling at that depth begins.
    let mut cursors: Vec<u64> = Vec::new();
    for row in &snap.spans {
        let depth = row.depth as usize;
        cursors.truncate(depth + 1);
        while cursors.len() <= depth {
            // A new level opens at its parent's current start.
            let start = if depth == 0 {
                0
            } else {
                cursors.get(depth - 1).copied().unwrap_or(0)
            };
            cursors.push(start);
        }
        let ts_us = cursors[depth] / 1_000;
        let dur_us = (row.total_ns / 1_000).max(1);
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"count\":{},\"total_ns\":{}}}}}",
            json_escape(&row.name),
            ts_us,
            dur_us,
            depth + 1,
            row.count,
            row.total_ns
        ));
        // Next sibling at this depth starts after this span...
        cursors[depth] += row.total_ns.max(1_000);
        // ...and children (if any) will open at this span's start,
        // handled by the truncate+extend above.
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

/// One real-timestamped complete event for the chrome-tracing sink —
/// the shape request-scoped tracers (borg-witness) emit, as opposed to
/// the synthetic cumulative layout [`chrome_trace_json`] builds for
/// aggregated spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span segment kind, etc.).
    pub name: String,
    /// Track id — one lane per logical flow (e.g. per query).
    pub tid: u64,
    /// Start timestamp, µs.
    pub ts_us: u64,
    /// Duration, µs (rendered as at least 1 so zero-length markers stay
    /// visible).
    pub dur_us: u64,
    /// Extra `args` entries, rendered as JSON strings.
    pub args: Vec<(String, String)>,
}

/// Renders real-timestamped events as a chrome://tracing /
/// Perfetto-loadable JSON object (`{"traceEvents": [...]}`), one
/// complete ("X") event per [`TraceEvent`], in input order.
pub fn trace_events_json(events: &[TraceEvent]) -> String {
    let mut out: Vec<String> = Vec::with_capacity(events.len());
    for e in events {
        let args = e
            .args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        out.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
            json_escape(&e.name),
            e.ts_us,
            e.dur_us.max(1),
            e.tid,
            args
        ));
    }
    format!("{{\"traceEvents\":[{}]}}", out.join(","))
}

/// A per-kind aggregate distilled from grid counters, for breakdown
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindBreakdown {
    /// Kind name (the segment between the prefix and `.dNN`).
    pub kind: String,
    /// Total count across days.
    pub count: u64,
    /// Total timing-plane nanoseconds across days.
    pub total_ns: u64,
}

/// Aggregates `{prefix}.{kind}.dNN.{count,ns}` counters back into
/// per-kind totals, sorted by descending time then name — the shape a
/// profile report wants.
pub fn grid_breakdown(snap: &Snapshot, prefix: &str) -> Vec<KindBreakdown> {
    let mut by_kind: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let dotted = format!("{prefix}.");
    for row in &snap.counters {
        let Some(rest) = row.name.strip_prefix(&dotted) else {
            continue;
        };
        // rest = "{kind}.dNN.count" | "{kind}.dNN.ns"
        let mut parts = rest.rsplitn(3, '.');
        let field = parts.next().unwrap_or("");
        let day = parts.next().unwrap_or("");
        let kind = parts.next().unwrap_or("");
        if kind.is_empty() || !day.starts_with('d') {
            continue;
        }
        let slot = by_kind.entry(kind.to_string()).or_insert((0, 0));
        match field {
            "count" => slot.0 += row.value,
            "ns" => slot.1 += row.value,
            _ => {}
        }
    }
    let mut out: Vec<KindBreakdown> = by_kind
        .into_iter()
        .map(|(kind, (count, total_ns))| KindBreakdown {
            kind,
            count,
            total_ns,
        })
        .collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.kind.cmp(&b.kind)));
    out
}

/// Formats a nanosecond quantity with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable profile report: span tree with times and counts,
/// then counters grouped by plane, then histograms.
pub fn human_report(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (count, total time):\n");
        for row in &snap.spans {
            let indent = "  ".repeat(row.depth as usize + 1);
            out.push_str(&format!(
                "{indent}{:<40} x{:<10} {}\n",
                row.name,
                row.count,
                fmt_ns(row.total_ns)
            ));
        }
    }
    for (plane, label) in [
        (Plane::Deterministic, "counters (deterministic plane):"),
        (Plane::Engine, "counters (engine plane):"),
        (Plane::Timing, "counters (timing plane):"),
    ] {
        let rows: Vec<&CounterRow> = snap.counters.iter().filter(|c| c.plane == plane).collect();
        if rows.is_empty() {
            continue;
        }
        out.push_str(label);
        out.push('\n');
        for c in rows {
            let val = if plane == Plane::Timing {
                fmt_ns(c.value)
            } else {
                c.value.to_string()
            };
            out.push_str(&format!("  {:<48} {}\n", c.name, val));
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("histograms:\n");
        for h in &snap.hists {
            out.push_str(&format!("  {:<48} {}\n", h.name, h.hist.render()));
        }
    }
    out
}

/// Renders a percentage-annotated breakdown table for one grid prefix
/// (e.g. the per-`Ev`-kind event-loop profile).
pub fn breakdown_report(snap: &Snapshot, prefix: &str, title: &str) -> String {
    let rows = grid_breakdown(snap, prefix);
    let total_ns: u64 = rows.iter().map(|r| r.total_ns).sum();
    let total_count: u64 = rows.iter().map(|r| r.count).sum();
    let mut out = format!(
        "{title} (total {} across {} events):\n",
        fmt_ns(total_ns),
        total_count
    );
    for r in &rows {
        let pct = if total_ns == 0 {
            0.0
        } else {
            r.total_ns as f64 * 100.0 / total_ns as f64
        };
        out.push_str(&format!(
            "  {:<20} x{:<10} {:>10}  {:>5.1}%\n",
            r.kind,
            r.count,
            fmt_ns(r.total_ns),
            pct
        ));
    }
    out
}

/// Minimal JSON well-formedness checker (no values are produced — this
/// exists so tests can assert exporter output parses without pulling a
/// JSON dependency into the workspace). Returns `Err(position)` at the
/// first offending byte.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }
    fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), usize> {
        if depth > 512 {
            return Err(*pos);
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, pos);
                    string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(*pos);
                    }
                    *pos += 1;
                    value(b, pos, depth + 1)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(*pos),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    value(b, pos, depth + 1)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(*pos),
                    }
                }
            }
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
            _ => Err(*pos),
        }
    }
    fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
        if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(())
        } else {
            Err(*pos)
        }
    }
    fn string(b: &[u8], pos: &mut usize) -> Result<(), usize> {
        if b.get(*pos) != Some(&b'"') {
            return Err(*pos);
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            if b.len() < *pos + 5
                                || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return Err(*pos);
                            }
                            *pos += 5;
                        }
                        _ => return Err(*pos),
                    }
                }
                0x00..=0x1f => return Err(*pos),
                _ => *pos += 1,
            }
        }
        Err(*pos)
    }
    fn number(b: &[u8], pos: &mut usize) -> Result<(), usize> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == start || (*pos == start + 1 && b[start] == b'-') {
            return Err(*pos);
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            let frac = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == frac {
                return Err(*pos);
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            let exp = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == exp {
                return Err(*pos);
            }
        }
        Ok(())
    }
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos == b.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample_snapshot() -> Snapshot {
        let mut tel = Telemetry::enabled();
        let root = tel.span_enter("run_cell");
        let inner = tel.span_enter("run_loop");
        tel.span_aggregate("ev.dispatch", 100, 5_000_000);
        tel.span_aggregate("ev.usage_tick", 50, 2_000_000);
        tel.span_exit(inner);
        tel.span_exit(root);
        let c = tel.counter("sim.ev.dispatch.d00.count", Plane::Deterministic);
        tel.add(c, 100);
        let n = tel.counter("sim.ev.dispatch.d00.ns", Plane::Timing);
        tel.add(n, 5_000_000);
        let c2 = tel.counter("sim.ev.usage_tick.d01.count", Plane::Deterministic);
        tel.add(c2, 50);
        let h = tel.hist("sim.queue.depth", Plane::Deterministic);
        tel.record(h, 7);
        tel.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let json = chrome_trace_json(&sample_snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        validate_json(&json).unwrap();
        assert!(json.contains("\"name\":\"ev.dispatch\""));
    }

    #[test]
    fn trace_events_render_as_valid_json() {
        let events = vec![
            TraceEvent {
                name: "queue".into(),
                tid: 7,
                ts_us: 100,
                dur_us: 50,
                args: vec![("trace_id".into(), "deadbeef".into())],
            },
            TraceEvent {
                name: "cancel \"marker\"".into(),
                tid: 7,
                ts_us: 150,
                dur_us: 0,
                args: Vec::new(),
            },
        ];
        let json = trace_events_json(&events);
        validate_json(&json).unwrap();
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("\"trace_id\":\"deadbeef\""));
        // Zero-length markers render with a visible 1µs duration.
        assert!(json.contains("\"dur\":1"));
    }

    #[test]
    fn breakdown_aggregates_days() {
        let snap = sample_snapshot();
        let rows = grid_breakdown(&snap, "sim.ev");
        assert_eq!(rows.len(), 2);
        // Sorted by descending time: dispatch (5ms) first.
        assert_eq!(rows[0].kind, "dispatch");
        assert_eq!(rows[0].count, 100);
        assert_eq!(rows[0].total_ns, 5_000_000);
        assert_eq!(rows[1].kind, "usage_tick");
        assert_eq!(rows[1].total_ns, 0);
    }

    #[test]
    fn reports_render() {
        let snap = sample_snapshot();
        let report = human_report(&snap);
        assert!(report.contains("run_cell"));
        assert!(report.contains("deterministic plane"));
        assert!(report.contains("sim.queue.depth"));
        let bd = breakdown_report(&snap, "sim.ev", "event loop");
        assert!(bd.contains("dispatch"));
        assert!(bd.contains('%'));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{}").unwrap();
        validate_json("[1, 2.5, -3e4, \"a\\nb\", true, null, {\"k\":[]}]").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("01ok").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }
}
