//! Named counters and histograms with interned handles.
//!
//! Registration returns a dense [`CounterId`]/[`HistId`] so hot loops
//! increment by index instead of hashing a name per event. Names are
//! interned in a `BTreeMap`, so every snapshot iterates in sorted name
//! order — deterministic by construction (borg-lint D1 would flag a
//! hash map here).

use crate::Plane;
use std::collections::BTreeMap;

/// Handle to a registered counter. The sentinel value returned by a
/// disabled [`crate::Telemetry`] makes every increment a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u32);

pub(crate) const DISABLED: u32 = u32::MAX;

/// One counter's snapshot row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRow {
    /// Dotted metric name, e.g. `sim.ev.dispatch.d00.count`.
    pub name: String,
    /// Which determinism plane the value belongs to.
    pub plane: Plane,
    /// Accumulated value.
    pub value: u64,
}

/// A power-of-two-bucket histogram of `u64` observations: bucket `i`
/// counts values whose bit length is `i` (bucket 0 holds zeros). Purely
/// arithmetic, so it lives in the deterministic plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observations with `bit_length == i`.
    pub buckets: [u64; 65],
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Index of the bucket that holds `value` (its bit length).
    pub fn bucket_of(value: u64) -> usize {
        64 - value.leading_zeros() as usize
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Inclusive upper bound of bucket `b` (`2^b - 1`; `u64::MAX` for
    /// the top bucket).
    pub fn bucket_bound(b: usize) -> u64 {
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Index of the bucket holding the `q`-quantile observation, or
    /// `None` for an empty histogram. The rank is computed on exact
    /// integer counts, so for any given histogram contents the answer
    /// is exact and deterministic.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count),
        // floored at 1 so q=0 means "the smallest observation's bucket".
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(b);
            }
        }
        Some(64)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`, clamped), or 0 for an empty histogram. The
    /// resolution is the power-of-two bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bucket(q).map_or(0, Histogram::bucket_bound)
    }

    /// Compact `lo..hi:count` rendering of the non-empty buckets, used
    /// by snapshots (stable, human-greppable).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
            parts.push(format!("{lo}+:{n}"));
        }
        format!("n={} sum={} [{}]", self.count, self.sum, parts.join(" "))
    }
}

/// One histogram's snapshot row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRow {
    /// Dotted metric name.
    pub name: String,
    /// Determinism plane.
    pub plane: Plane,
    /// The full histogram.
    pub hist: Histogram,
}

/// The counter/histogram store behind [`crate::Telemetry`].
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counter_ids: BTreeMap<String, u32>,
    counters: Vec<(String, Plane, u64)>,
    hist_ids: BTreeMap<String, u32>,
    hists: Vec<(String, Plane, Histogram)>,
}

impl Registry {
    /// Interns `name`, returning its dense id. Re-registration returns
    /// the existing id (the first plane wins).
    pub(crate) fn counter(&mut self, name: &str, plane: Plane) -> CounterId {
        if let Some(&id) = self.counter_ids.get(name) {
            return CounterId(id);
        }
        let id = self.counters.len() as u32;
        self.counter_ids.insert(name.to_string(), id);
        self.counters.push((name.to_string(), plane, 0));
        CounterId(id)
    }

    pub(crate) fn add(&mut self, id: CounterId, delta: u64) {
        if let Some(slot) = self.counters.get_mut(id.0 as usize) {
            slot.2 += delta;
        }
    }

    pub(crate) fn hist(&mut self, name: &str, plane: Plane) -> HistId {
        if let Some(&id) = self.hist_ids.get(name) {
            return HistId(id);
        }
        let id = self.hists.len() as u32;
        self.hist_ids.insert(name.to_string(), id);
        self.hists
            .push((name.to_string(), plane, Histogram::default()));
        HistId(id)
    }

    pub(crate) fn record(&mut self, id: HistId, value: u64) {
        if let Some(slot) = self.hists.get_mut(id.0 as usize) {
            slot.2.record(value);
        }
    }

    pub(crate) fn merge_hist(&mut self, id: HistId, other: &Histogram) {
        if let Some(slot) = self.hists.get_mut(id.0 as usize) {
            slot.2.merge(other);
        }
    }

    /// Counter rows in sorted-name order.
    pub(crate) fn counter_rows(&self) -> Vec<CounterRow> {
        self.counter_ids
            .iter()
            .filter_map(|(name, &id)| {
                self.counters
                    .get(id as usize)
                    .map(|(_, plane, value)| CounterRow {
                        name: name.clone(),
                        plane: *plane,
                        value: *value,
                    })
            })
            .collect()
    }

    /// Histogram rows in sorted-name order.
    pub(crate) fn hist_rows(&self) -> Vec<HistRow> {
        self.hist_ids
            .iter()
            .filter_map(|(name, &id)| {
                self.hists.get(id as usize).map(|(_, plane, hist)| HistRow {
                    name: name.clone(),
                    plane: *plane,
                    hist: hist.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let mut r = Registry::default();
        let a = r.counter("b.x", Plane::Deterministic);
        let b = r.counter("a.y", Plane::Deterministic);
        assert_eq!(a, r.counter("b.x", Plane::Deterministic));
        r.add(a, 2);
        r.add(a, 3);
        r.add(b, 1);
        let rows = r.counter_rows();
        // Sorted by name, not registration order.
        assert_eq!(rows[0].name, "a.y");
        assert_eq!(rows[1].value, 5);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.buckets[0], 1); // zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[11], 1); // 1024
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert!(h.render().contains("n=5"));
    }

    #[test]
    fn quantile_walks_bucket_bounds() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [1u64, 2, 2, 100, 1000] {
            h.record(v);
        }
        // Ranks: q=0.2 → rank 1 (bucket of 1, bound 1);
        // q=0.5 → rank 3 (bucket of 2..4, bound 3);
        // q=0.99 → rank 5 (bucket of 512..1024, bound 1023).
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.2), 1);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(7.0), 1023);
        assert_eq!(h.quantile(-1.0), 1);
    }
}
