//! borg-telemetry: dependency-free observability for a deterministic
//! workspace.
//!
//! The workspace's core contract is bit-identity — same seed and config
//! must produce byte-identical traces, and borg-lint statically bans
//! ambient nondeterminism (wall clocks, hash iteration) from library
//! code. Profiling needs a clock. This crate squares that circle by
//! splitting telemetry into planes:
//!
//! * [`Plane::Deterministic`] — counters/histograms derived purely from
//!   simulation state. Covered by the byte-identity contracts: identical
//!   across runs *and* across implementation strategies (naive vs
//!   indexed placement, sequential vs parallel scans).
//! * [`Plane::Engine`] — counters derived from implementation internals
//!   (placement-index hits, cache behavior). Deterministic for a fixed
//!   config, but legitimately different between strategies, so excluded
//!   from cross-implementation comparison.
//! * [`Plane::Timing`] — wall-clock nanoseconds from the one blessed
//!   clock ([`clock::now_ns`]). Excluded from every determinism check.
//!
//! Everything hangs off a [`Telemetry`] value (no globals, no
//! thread-locals — determinism auditing stays local). A disabled
//! instance returns sentinel ids and never allocates, so instrumented
//! code pays one branch when telemetry is off.

pub mod clock;
mod export;
mod grid;
mod registry;
mod span;

pub use export::{
    breakdown_report, chrome_trace_json, fmt_ns, grid_breakdown, human_report, trace_events_json,
    validate_json, KindBreakdown, TraceEvent,
};
pub use grid::PhaseGrid;
pub use registry::{CounterId, CounterRow, HistId, HistRow, Histogram};
pub use span::{SpanRow, SpanToken};

use registry::Registry;
use span::SpanTree;

/// Which determinism contract a metric belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plane {
    /// Pure function of (seed, config): byte-identical across runs and
    /// across implementation strategies.
    Deterministic,
    /// Deterministic for a fixed config but implementation-specific
    /// (e.g. index cache hits); excluded from cross-strategy checks.
    Engine,
    /// Wall-clock durations; excluded from all determinism checks.
    Timing,
}

impl Plane {
    fn tag(self) -> &'static str {
        match self {
            Plane::Deterministic => "det",
            Plane::Engine => "eng",
            Plane::Timing => "tim",
        }
    }
}

/// An immutable copy of everything a [`Telemetry`] accumulated.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter rows in sorted-name order.
    pub counters: Vec<CounterRow>,
    /// Histogram rows in sorted-name order.
    pub hists: Vec<HistRow>,
    /// Span rows in depth-first, first-seen order.
    pub spans: Vec<SpanRow>,
}

impl Snapshot {
    /// True if nothing was recorded (always the case when disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty() && self.spans.is_empty()
    }

    /// Canonical byte rendering of the *deterministic plane only*:
    /// deterministic counters and histograms, plus the span tree's
    /// shape and counts with all `total_ns` values omitted. Two runs
    /// with the same seed/config — even one naive and one indexed —
    /// must produce identical bytes.
    pub fn deterministic_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for c in &self.counters {
            if c.plane == Plane::Deterministic {
                out.push_str(&format!("c {} {}\n", c.name, c.value));
            }
        }
        for h in &self.hists {
            if h.plane == Plane::Deterministic {
                out.push_str(&format!("h {} {}\n", h.name, h.hist.render()));
            }
        }
        for s in &self.spans {
            out.push_str(&format!("s {} x{}\n", s.path, s.count));
        }
        out.into_bytes()
    }

    /// Canonical byte rendering of deterministic *and* engine planes —
    /// the per-config contract (same seed, same config, same code path
    /// ⇒ identical bytes), still excluding all wall-clock values.
    pub fn config_deterministic_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for c in &self.counters {
            if c.plane != Plane::Timing {
                out.push_str(&format!("c:{} {} {}\n", c.plane.tag(), c.name, c.value));
            }
        }
        for h in &self.hists {
            if h.plane != Plane::Timing {
                out.push_str(&format!(
                    "h:{} {} {}\n",
                    h.plane.tag(),
                    h.name,
                    h.hist.render()
                ));
            }
        }
        for s in &self.spans {
            out.push_str(&format!("s {} x{}\n", s.path, s.count));
        }
        out.into_bytes()
    }

    /// Merges another snapshot into this one: counters and histograms
    /// with the same name combine; span trees concatenate rows (used to
    /// fold per-cell snapshots into a run-level one).
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.hists {
            match self.hists.iter_mut().find(|m| m.name == h.name) {
                Some(m) => m.hist.merge(&h.hist),
                None => self.hists.push(h.clone()),
            }
        }
        self.hists.sort_by(|a, b| a.name.cmp(&b.name));
        for s in &other.spans {
            match self
                .spans
                .iter_mut()
                .find(|m| m.path == s.path && m.depth == s.depth)
            {
                Some(m) => {
                    m.count += s.count;
                    m.total_ns += s.total_ns;
                }
                None => self.spans.push(s.clone()),
            }
        }
    }
}

/// The telemetry accumulator. Construct one per instrumented activity
/// ([`Telemetry::enabled`] / [`Telemetry::disabled`]), thread it
/// through by `&mut`, and take a [`Snapshot`] at the end.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    registry: Registry,
    spans: SpanTree,
}

impl Telemetry {
    /// A recording instance.
    pub fn enabled() -> Telemetry {
        Telemetry {
            enabled: true,
            registry: Registry::default(),
            spans: SpanTree::default(),
        }
    }

    /// A no-op instance: every id is a sentinel, every record call is a
    /// single branch, [`Telemetry::snapshot`] is empty.
    pub fn disabled() -> Telemetry {
        Telemetry {
            enabled: false,
            registry: Registry::default(),
            spans: SpanTree::default(),
        }
    }

    /// Enabled-or-disabled by flag (mirrors `SimConfig::telemetry`).
    pub fn new(enabled: bool) -> Telemetry {
        if enabled {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Whether this instance records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or looks up) a counter.
    pub fn counter(&mut self, name: &str, plane: Plane) -> CounterId {
        if !self.enabled {
            return CounterId(registry::DISABLED);
        }
        self.registry.counter(name, plane)
    }

    /// Adds `delta` to a counter. No-op for disabled ids.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if id.0 == registry::DISABLED {
            return;
        }
        self.registry.add(id, delta);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Registers (or looks up) a histogram.
    pub fn hist(&mut self, name: &str, plane: Plane) -> HistId {
        if !self.enabled {
            return HistId(registry::DISABLED);
        }
        self.registry.hist(name, plane)
    }

    /// Records one histogram observation. No-op for disabled ids.
    #[inline]
    pub fn record(&mut self, id: HistId, value: u64) {
        if id.0 == registry::DISABLED {
            return;
        }
        self.registry.record(id, value);
    }

    /// Folds a pre-accumulated [`Histogram`] into a registered one —
    /// the bridge for subsystems (e.g. borg-serve's per-tier latency
    /// histograms) that accumulate locally and export at the end of a
    /// run. No-op for disabled ids.
    pub fn record_hist(&mut self, id: HistId, hist: &Histogram) {
        if id.0 == registry::DISABLED {
            return;
        }
        self.registry.merge_hist(id, hist);
    }

    /// Convenience: register-and-add in one call (cold paths only; hot
    /// loops should hold a [`CounterId`] or use a [`PhaseGrid`]).
    pub fn count(&mut self, name: &str, plane: Plane, delta: u64) {
        if !self.enabled {
            return;
        }
        let id = self.registry.counter(name, plane);
        self.registry.add(id, delta);
    }

    /// Opens a span under the currently open span (reads the blessed
    /// clock once). Exit with [`Telemetry::span_exit`].
    pub fn span_enter(&mut self, name: &str) -> SpanToken {
        if !self.enabled {
            return span::TOKEN_DISABLED;
        }
        self.spans.enter(name, clock::now_ns())
    }

    /// Closes a span, accumulating its wall-clock duration.
    pub fn span_exit(&mut self, token: SpanToken) {
        if token.is_disabled() {
            return;
        }
        let elapsed = clock::now_ns().saturating_sub(token.start_ns);
        self.spans.exit(token, elapsed);
    }

    /// Merges a pre-aggregated (count, total_ns) span under the current
    /// open span without touching the clock.
    pub fn span_aggregate(&mut self, name: &str, count: u64, total_ns: u64) {
        if !self.enabled {
            return;
        }
        self.spans.add_aggregate(name, count, total_ns);
    }

    /// Copies out everything accumulated so far.
    pub fn snapshot(&self) -> Snapshot {
        if !self.enabled {
            return Snapshot::default();
        }
        Snapshot {
            counters: self.registry.counter_rows(),
            hists: self.registry.hist_rows(),
            spans: self.spans.rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_workload(tel: &mut Telemetry) {
        let outer = tel.span_enter("outer");
        let det = tel.counter("work.items", Plane::Deterministic);
        tel.add(det, 41);
        tel.incr(det);
        let eng = tel.counter("index.hits", Plane::Engine);
        tel.add(eng, 7);
        let tim = tel.counter("work.ns", Plane::Timing);
        tel.add(tim, 123_456);
        let h = tel.hist("work.sizes", Plane::Deterministic);
        tel.record(h, 16);
        tel.span_aggregate("batch", 10, 999);
        tel.span_exit(outer);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tel = Telemetry::disabled();
        record_workload(&mut tel);
        assert!(tel.snapshot().is_empty());
        assert!(tel.snapshot().deterministic_bytes().is_empty());
    }

    #[test]
    fn deterministic_bytes_exclude_engine_and_timing() {
        let mut tel = Telemetry::enabled();
        record_workload(&mut tel);
        let bytes = String::from_utf8(tel.snapshot().deterministic_bytes()).unwrap();
        assert!(bytes.contains("c work.items 42"));
        assert!(!bytes.contains("index.hits"));
        assert!(!bytes.contains("work.ns"));
        // Span shape present, no nanoseconds anywhere.
        assert!(bytes.contains("s outer x1"));
        assert!(bytes.contains("s outer/batch x10"));
    }

    #[test]
    fn config_bytes_include_engine_but_not_timing() {
        let mut tel = Telemetry::enabled();
        record_workload(&mut tel);
        let bytes = String::from_utf8(tel.snapshot().config_deterministic_bytes()).unwrap();
        assert!(bytes.contains("c:eng index.hits 7"));
        assert!(!bytes.contains("work.ns"));
    }

    #[test]
    fn identical_recording_gives_identical_deterministic_bytes() {
        let mut a = Telemetry::enabled();
        let mut b = Telemetry::enabled();
        record_workload(&mut a);
        record_workload(&mut b);
        assert_eq!(
            a.snapshot().deterministic_bytes(),
            b.snapshot().deterministic_bytes()
        );
        assert_eq!(
            a.snapshot().config_deterministic_bytes(),
            b.snapshot().config_deterministic_bytes()
        );
    }

    #[test]
    fn merge_combines_counters_and_spans() {
        let mut a = Telemetry::enabled();
        let mut b = Telemetry::enabled();
        record_workload(&mut a);
        record_workload(&mut b);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let items = merged
            .counters
            .iter()
            .find(|c| c.name == "work.items")
            .unwrap();
        assert_eq!(items.value, 84);
        let outer = merged.spans.iter().find(|s| s.path == "outer").unwrap();
        assert_eq!(outer.count, 2);
        let sizes = merged
            .hists
            .iter()
            .find(|h| h.name == "work.sizes")
            .unwrap();
        assert_eq!(sizes.hist.count, 2);
    }
}
