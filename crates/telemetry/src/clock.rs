//! The blessed monotonic time source — the *only* non-bench library
//! code in the workspace allowed to read a wall clock.
//!
//! borg-lint rule D2 bans `Instant::now()` (and every other ambient
//! nondeterminism source) in library code so the bit-identity contracts
//! cannot be eroded by accident. Telemetry's timing plane still needs a
//! clock, so this module is the single lint-exempted routing point
//! (`crates/telemetry/src/clock.rs` is listed as D2's blessed helper —
//! see DESIGN.md §12): every duration in the workspace flows through
//! [`now_ns`], and nothing read here may feed back into simulation or
//! query *results*. Timing values live in [`crate::Plane::Timing`] and
//! are excluded from every determinism contract and from
//! [`crate::Snapshot::deterministic_bytes`].

use std::sync::OnceLock;
use std::time::Instant;

/// Process-local epoch: the first call pins it, every later call
/// measures against it. Relative-to-epoch keeps the values small and
/// chrome-tracing friendly.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
///
/// Timing plane only: callers must never let this value influence a
/// deterministic output (event order, trace contents, counter values).
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    let nanos = Instant::now().duration_since(*epoch).as_nanos();
    // A process would need ~584 years of uptime to overflow u64 nanos.
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn epoch_is_process_local() {
        // The first read pins the epoch, so early values are small
        // (definitely not nanoseconds-since-unix-epoch magnitude).
        let v = now_ns();
        assert!(v < 10_u64.pow(15), "epoch not process-local: {v}");
    }
}
