//! Aggregating span tree.
//!
//! Repeated spans with the same name under the same parent fold into
//! one node (count++, total_ns accumulates) instead of growing a trace
//! — a month-long simulated cell would otherwise record millions of
//! `Dispatch` spans. The resulting *shape* (names, nesting, first-seen
//! order, counts) is deterministic; only `total_ns` carries wall-clock
//! and belongs to the timing plane.

/// Sentinel "no parent" index.
const NO_PARENT: usize = usize::MAX;

#[derive(Debug, Clone)]
pub(crate) struct SpanNode {
    name: String,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
}

/// One span's snapshot row, in depth-first order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `/`-joined path from the root, e.g. `sim.run_cell/run_loop/ev.dispatch`.
    pub path: String,
    /// Leaf name.
    pub name: String,
    /// Nesting depth (roots are 0).
    pub depth: u32,
    /// Times the span was entered (or aggregate-added).
    pub count: u64,
    /// Accumulated wall-clock nanoseconds (timing plane).
    pub total_ns: u64,
}

/// Handle returned by [`crate::Telemetry::span_enter`]; pass it back to
/// [`crate::Telemetry::span_exit`].
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    pub(crate) node: usize,
    pub(crate) start_ns: u64,
}

pub(crate) const TOKEN_DISABLED: SpanToken = SpanToken {
    node: NO_PARENT,
    start_ns: 0,
};

impl SpanToken {
    pub(crate) fn is_disabled(&self) -> bool {
        self.node == NO_PARENT
    }
}

/// The tree itself: nodes in first-seen order plus an open-span stack.
#[derive(Debug, Default)]
pub(crate) struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl SpanTree {
    /// Finds or creates the child of the current open span named
    /// `name`, makes it the open span, and returns its index.
    pub(crate) fn enter(&mut self, name: &str, start_ns: u64) -> SpanToken {
        let idx = self.child_of_top(name);
        self.nodes[idx].count += 1;
        self.stack.push(idx);
        SpanToken {
            node: idx,
            start_ns,
        }
    }

    /// Closes `token`'s span, crediting `elapsed_ns` to it. Tolerates
    /// out-of-order exits by popping down to the token's node.
    pub(crate) fn exit(&mut self, token: SpanToken, elapsed_ns: u64) {
        if token.is_disabled() {
            return;
        }
        if let Some(node) = self.nodes.get_mut(token.node) {
            node.total_ns += elapsed_ns;
        }
        while let Some(top) = self.stack.pop() {
            if top == token.node {
                break;
            }
        }
    }

    /// Adds (or merges into) a child of the current open span with a
    /// pre-aggregated count and duration — how batch sources like
    /// [`crate::PhaseGrid`] fold into the tree without per-event spans.
    pub(crate) fn add_aggregate(&mut self, name: &str, count: u64, total_ns: u64) {
        let idx = self.child_of_top(name);
        self.nodes[idx].count += count;
        self.nodes[idx].total_ns += total_ns;
    }

    fn child_of_top(&mut self, name: &str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let siblings: &[usize] = if parent == NO_PARENT {
            &self.roots
        } else {
            &self.nodes[parent].children
        };
        for &c in siblings {
            if self.nodes[c].name == name {
                return c;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode {
            name: name.to_string(),
            children: Vec::new(),
            count: 0,
            total_ns: 0,
        });
        if parent == NO_PARENT {
            self.roots.push(idx);
        } else {
            self.nodes[parent].children.push(idx);
        }
        idx
    }

    /// Depth-first rows (children in first-seen order).
    pub(crate) fn rows(&self) -> Vec<SpanRow> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // Iterative DFS: (node, depth, path prefix).
        let mut work: Vec<(usize, u32, String)> = self
            .roots
            .iter()
            .rev()
            .map(|&r| (r, 0, String::new()))
            .collect();
        while let Some((idx, depth, prefix)) = work.pop() {
            let node = &self.nodes[idx];
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            out.push(SpanRow {
                path: path.clone(),
                name: node.name.clone(),
                depth,
                count: node.count,
                total_ns: node.total_ns,
            });
            for &c in node.children.iter().rev() {
                work.push((c, depth + 1, path.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_spans_aggregate() {
        let mut t = SpanTree::default();
        for i in 0..3 {
            let outer = t.enter("outer", 0);
            let inner = t.enter("inner", 0);
            t.exit(inner, 5);
            t.exit(outer, 10 + i);
        }
        let rows = t.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].path, "outer");
        assert_eq!(rows[0].count, 3);
        assert_eq!(rows[0].total_ns, 33);
        assert_eq!(rows[1].path, "outer/inner");
        assert_eq!(rows[1].depth, 1);
        assert_eq!(rows[1].count, 3);
    }

    #[test]
    fn aggregates_merge_under_open_span() {
        let mut t = SpanTree::default();
        let root = t.enter("root", 0);
        t.add_aggregate("batch", 100, 4_000);
        t.add_aggregate("batch", 50, 1_000);
        t.exit(root, 9_000);
        let rows = t.rows();
        assert_eq!(rows[1].name, "batch");
        assert_eq!(rows[1].count, 150);
        assert_eq!(rows[1].total_ns, 5_000);
    }

    #[test]
    fn unbalanced_exit_recovers() {
        let mut t = SpanTree::default();
        let a = t.enter("a", 0);
        let _b = t.enter("b", 0);
        // Exiting the outer span with the inner still open pops both.
        t.exit(a, 7);
        let c = t.enter("c", 0);
        t.exit(c, 1);
        let rows = t.rows();
        // `c` is a new root, not a child of `b`.
        assert!(rows.iter().any(|r| r.path == "c" && r.depth == 0));
    }
}
