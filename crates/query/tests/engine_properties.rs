//! Property tests: the query engine against naive reference
//! implementations, over randomized tables.
//!
//! The optimized engine encodes keys as integers, aggregates in blocks,
//! and sorts by decorated primitive keys; the references here use the
//! original row-at-a-time `Value`/`GroupKey` semantics. Generators cover
//! nulls, `-0.0`/`+0.0` floats, duplicate keys, and cross-dictionary
//! strings. Tables stay below one parallel block so float accumulation
//! order matches the references exactly; cross-block determinism is
//! checked separately by `parallel_pipeline_matches_sequential`.

// The reference percentile oracle mirrors the engine's bounded
// floor/ceil rank indexing.
#![allow(clippy::cast_possible_truncation)]

use borg_query::join::{join, JoinKind};
use borg_query::prelude::*;
use borg_query::value::GroupKey;
use borg_query::Agg;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

fn int_table(name: &str, xs: &[i64]) -> Table {
    let mut t = Table::new(vec![(name.to_string(), DataType::Int)]);
    for &x in xs {
        t.push_row(vec![Value::Int(x)]).unwrap();
    }
    t
}

/// Splits rows into groups keyed by `Value::group_key`, in first-appearance
/// order: the reference for the engine's group-by ordering contract.
fn naive_groups(t: &Table, keys: &[&str]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let cols: Vec<_> = keys.iter().map(|k| t.column(k).unwrap()).collect();
    let mut lookup: HashMap<Vec<GroupKey>, usize> = HashMap::new();
    let mut first_rows = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for row in 0..t.num_rows() {
        let gk: Vec<GroupKey> = cols.iter().map(|c| c.get(row).group_key()).collect();
        let next = members.len();
        let idx = *lookup.entry(gk).or_insert(next);
        if idx == members.len() {
            first_rows.push(row);
            members.push(Vec::new());
        }
        members[idx].push(row);
    }
    (first_rows, members)
}

/// The group's numeric input values in row order (`None` = null).
fn group_values(t: &Table, rows: &[usize], col: &str) -> Vec<Option<f64>> {
    rows.iter()
        .map(|&r| t.value(r, col).unwrap().as_f64())
        .collect()
}

const STR_POOL: [&str; 5] = ["", "a", "b", "aa", "prod"];

/// Decodes one generated row tuple into (k_s, k_f, v, w) cell values.
fn decode_row(s: u8, f: u8, c: u8, x: f64, i: i64) -> Vec<Value> {
    let k_s = match s {
        0 => Value::Null,
        _ => Value::str(STR_POOL[(s - 1) as usize]),
    };
    let k_f = match f {
        0 => Value::Null,
        1 => Value::Float(-0.0),
        2 => Value::Float(0.0),
        3 => Value::Float(1.5),
        _ => Value::Float(x),
    };
    let v = if c == 0 {
        Value::Null
    } else {
        Value::Float(x * 1.25)
    };
    let w = if c == 1 { Value::Null } else { Value::Int(i) };
    vec![k_s, k_f, v, w]
}

fn mixed_table(rows: &[(u8, u8, u8, f64, i64)]) -> Table {
    let mut t = Table::new(vec![
        ("k_s", DataType::Str),
        ("k_f", DataType::Float),
        ("v", DataType::Float),
        ("w", DataType::Int),
    ]);
    for &(s, f, c, x, i) in rows {
        t.push_row(decode_row(s, f, c, x, i)).unwrap();
    }
    t
}

proptest! {
    #[test]
    fn inner_join_matches_nested_loop(
        left in prop::collection::vec(0i64..10, 0..40),
        right in prop::collection::vec(0i64..10, 0..40),
    ) {
        let lt = int_table("k", &left);
        let mut rt = Table::new(vec![("k", DataType::Int), ("tag", DataType::Int)]);
        for (i, &x) in right.iter().enumerate() {
            rt.push_row(vec![Value::Int(x), Value::Int(i as i64)]).unwrap();
        }
        let out = join(&lt, &rt, &["k"], &["k"], JoinKind::Inner).unwrap();
        let expected: usize = left
            .iter()
            .map(|&l| right.iter().filter(|&&r| r == l).count())
            .sum();
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn left_join_keeps_every_left_row(
        left in prop::collection::vec(0i64..10, 0..40),
        right in prop::collection::vec(0i64..10, 0..40),
    ) {
        let lt = int_table("k", &left);
        let mut rt = Table::new(vec![("k", DataType::Int), ("tag", DataType::Int)]);
        for (i, &x) in right.iter().enumerate() {
            rt.push_row(vec![Value::Int(x), Value::Int(i as i64)]).unwrap();
        }
        let out = join(&lt, &rt, &["k"], &["k"], JoinKind::LeftOuter).unwrap();
        let expected: usize = left
            .iter()
            .map(|&l| right.iter().filter(|&&r| r == l).count().max(1))
            .sum();
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000) {
        let mut t = Table::new(vec![("a", DataType::Int), ("b", DataType::Int)]);
        t.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        let sum = col("a").add(col("b")).eval_row(&t, 0).unwrap();
        let product = col("a").mul(col("b")).eval_row(&t, 0).unwrap();
        prop_assert_eq!(sum, Value::Int(a.wrapping_add(b)));
        prop_assert_eq!(product, Value::Int(a.wrapping_mul(b)));
        let cmp = col("a").lt(col("b")).eval_row(&t, 0).unwrap();
        prop_assert_eq!(cmp, Value::Bool(a < b));
    }

    #[test]
    fn percentile_agg_matches_analysis_crate(
        xs in prop::collection::vec(-100.0f64..100.0, 1..60),
        p in 0.0f64..100.0,
    ) {
        let mut t = Table::new(vec![("v", DataType::Float)]);
        for &x in &xs {
            t.push_row(vec![Value::Float(x)]).unwrap();
        }
        let out = Query::from(t)
            .group_by(&[], vec![Agg::percentile("v", p, "q")])
            .run()
            .unwrap();
        let got = out.value(0, "q").unwrap().as_f64().unwrap();
        let expected = borg_analysis::percentile::percentile(&xs, p).unwrap();
        prop_assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn limit_truncates(xs in prop::collection::vec(-100i64..100, 0..50), n in 0usize..60) {
        let t = int_table("v", &xs);
        let out = Query::from(t).limit(n).run().unwrap();
        prop_assert_eq!(out.num_rows(), xs.len().min(n));
    }

    #[test]
    fn derive_then_project_preserves_rows(xs in prop::collection::vec(-100i64..100, 0..50)) {
        let t = int_table("v", &xs);
        let out = Query::from(t)
            .derive("double", col("v").mul(lit(2i64)))
            .select(&["double"])
            .run()
            .unwrap();
        prop_assert_eq!(out.num_rows(), xs.len());
        for (r, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out.value(r, "double").unwrap(), Value::Int(x * 2));
        }
    }

    #[test]
    fn group_by_matches_naive_reference(
        rows in prop::collection::vec((0u8..6, 0u8..5, 0u8..4, -4.0f64..4.0, 0i64..4), 0..100),
    ) {
        let t = mixed_table(&rows);
        let out = borg_query::groupby::group_by(
            &t,
            &["k_s", "k_f"],
            &[
                Agg::count_all("n"),
                Agg::count("v", "nv"),
                Agg::sum("v", "s"),
                Agg::mean("v", "m"),
                Agg::min("v", "lo"),
                Agg::max("v", "hi"),
                Agg::variance("v", "var"),
                Agg::percentile("v", 50.0, "p50"),
                Agg::count_distinct("w", "d"),
            ],
        )
        .unwrap();

        let (first_rows, members) = naive_groups(&t, &["k_s", "k_f"]);
        prop_assert_eq!(out.num_rows(), first_rows.len());
        for (g, (&fr, rows)) in first_rows.iter().zip(&members).enumerate() {
            // Key columns carry the group's first-appearance values.
            prop_assert_eq!(out.value(g, "k_s").unwrap(), t.value(fr, "k_s").unwrap());
            prop_assert_eq!(out.value(g, "k_f").unwrap(), t.value(fr, "k_f").unwrap());

            let vals = group_values(&t, rows, "v");
            let present: Vec<f64> = vals.iter().flatten().copied().collect();
            prop_assert_eq!(out.value(g, "n").unwrap(), Value::Int(rows.len() as i64));
            prop_assert_eq!(
                out.value(g, "nv").unwrap(),
                Value::Int(present.len() as i64)
            );

            // Accumulate in row order with the same operations the engine
            // uses, so float results are bit-identical, not just close.
            let (mut s, mut sq, mut seen) = (0.0f64, 0.0f64, false);
            let (mut lo, mut hi) = (None, None);
            for &v in &present {
                s += v;
                sq += v * v;
                seen = true;
                lo = Some(lo.map_or(v, |x: f64| x.min(v)));
                hi = Some(hi.map_or(v, |x: f64| x.max(v)));
            }
            let nf = present.len() as f64;
            let want_sum = if seen { Value::Float(s) } else { Value::Null };
            let want_mean = if seen { Value::Float(s / nf) } else { Value::Null };
            let want_var = if present.len() < 2 {
                Value::Null
            } else {
                let mean = s / nf;
                Value::Float((sq - nf * mean * mean) / (nf - 1.0))
            };
            let want_p50 = if present.is_empty() {
                Value::Null
            } else {
                let mut xs = present.clone();
                xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let rank = 0.5 * (xs.len() - 1) as f64;
                let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
                let frac = rank - lo as f64;
                Value::Float(xs[lo] * (1.0 - frac) + xs[hi] * frac)
            };
            let distinct: HashSet<GroupKey> = rows
                .iter()
                .map(|&r| t.value(r, "w").unwrap())
                .filter(|v| !v.is_null())
                .map(|v| v.group_key())
                .collect();

            prop_assert_eq!(out.value(g, "s").unwrap(), want_sum);
            prop_assert_eq!(out.value(g, "m").unwrap(), want_mean);
            prop_assert_eq!(out.value(g, "lo").unwrap(), lo.map_or(Value::Null, Value::Float));
            prop_assert_eq!(out.value(g, "hi").unwrap(), hi.map_or(Value::Null, Value::Float));
            prop_assert_eq!(out.value(g, "var").unwrap(), want_var);
            prop_assert_eq!(out.value(g, "p50").unwrap(), want_p50);
            prop_assert_eq!(out.value(g, "d").unwrap(), Value::Int(distinct.len() as i64));
        }
    }

    #[test]
    fn sort_matches_naive_stable_sort(
        rows in prop::collection::vec((0u8..6, 0u8..5, 0u8..4, -4.0f64..4.0, 0i64..6), 0..80),
        o1 in 0u8..2,
        o2 in 0u8..2,
    ) {
        let t = mixed_table(&rows);
        let order = |o: u8| if o == 0 { SortOrder::Ascending } else { SortOrder::Descending };
        let keys = [("k_s", order(o1)), ("k_f", order(o2)), ("w", SortOrder::Ascending)];
        let sorted = borg_query::sort::sort_by(&t, &keys).unwrap();

        // Reference: stable index sort with the original row-at-a-time
        // comparator.
        let cols: Vec<_> = keys.iter().map(|(k, _)| t.column(k).unwrap()).collect();
        let mut idx: Vec<usize> = (0..t.num_rows()).collect();
        idx.sort_by(|&a, &b| {
            for (c, &(_, ord)) in cols.iter().zip(&keys) {
                let mut o = c.get(a).sort_key_cmp(&c.get(b));
                if ord == SortOrder::Descending {
                    o = o.reverse();
                }
                if o != Ordering::Equal {
                    return o;
                }
            }
            Ordering::Equal
        });
        prop_assert_eq!(sorted, t.take_rows(&idx));
    }

    #[test]
    fn join_matches_naive_nested_loop(
        left in prop::collection::vec((0u8..4, 0u8..5), 0..40),
        right in prop::collection::vec((0u8..4, 0u8..5), 0..40),
    ) {
        // Left keys are (Str, Int); right keys are (Str, Float) interned in
        // a different dictionary order — exercising cross-dictionary string
        // matching and numeric Int/Float key equality, with nulls.
        const LPOOL: [&str; 3] = ["a", "b", "c"];
        const RPOOL: [&str; 3] = ["c", "b", "zz"];
        let mut lt = Table::new(vec![
            ("k_s", DataType::Str),
            ("k_n", DataType::Int),
            ("lid", DataType::Int),
        ]);
        for (i, &(s, n)) in left.iter().enumerate() {
            let k_s = if s == 0 { Value::Null } else { Value::str(LPOOL[(s - 1) as usize]) };
            let k_n = if n == 0 { Value::Null } else { Value::Int((n - 1) as i64) };
            lt.push_row(vec![k_s, k_n, Value::Int(i as i64)]).unwrap();
        }
        let mut rt = Table::new(vec![
            ("k_s", DataType::Str),
            ("k_n", DataType::Float),
            ("rid", DataType::Int),
        ]);
        for (i, &(s, n)) in right.iter().enumerate() {
            let k_s = if s == 0 { Value::Null } else { Value::str(RPOOL[(s - 1) as usize]) };
            let k_n = if n == 0 { Value::Null } else { Value::Float((n - 1) as f64) };
            rt.push_row(vec![k_s, k_n, Value::Int(i as i64)]).unwrap();
        }

        // Reference: nested loop with `group_eq`, nulls never matching,
        // matches emitted in (left row, right row) order.
        let pairs = |kind: JoinKind| {
            let mut out: Vec<(usize, Option<usize>)> = Vec::new();
            for lr in 0..lt.num_rows() {
                let mut matched = false;
                for rr in 0..rt.num_rows() {
                    let ok = ["k_s", "k_n"].iter().all(|k| {
                        let lv = lt.value(lr, k).unwrap();
                        let rv = rt.value(rr, k).unwrap();
                        !lv.is_null() && !rv.is_null() && lv.group_eq(&rv)
                    });
                    if ok {
                        out.push((lr, Some(rr)));
                        matched = true;
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    out.push((lr, None));
                }
            }
            out
        };

        for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
            let out = join(&lt, &rt, &["k_s", "k_n"], &["k_s", "k_n"], kind).unwrap();
            let expected = pairs(kind);
            prop_assert_eq!(out.num_rows(), expected.len());
            for (i, &(lr, rr)) in expected.iter().enumerate() {
                prop_assert_eq!(out.value(i, "k_s").unwrap(), lt.value(lr, "k_s").unwrap());
                prop_assert_eq!(out.value(i, "k_n").unwrap(), lt.value(lr, "k_n").unwrap());
                prop_assert_eq!(out.value(i, "lid").unwrap(), lt.value(lr, "lid").unwrap());
                let want_rid = rr.map_or(Value::Null, |r| rt.value(r, "rid").unwrap());
                prop_assert_eq!(out.value(i, "rid").unwrap(), want_rid);
            }
        }
    }

    #[test]
    fn filter_matches_row_at_a_time_eval(
        rows in prop::collection::vec((0u8..6, 0u8..5, 0u8..4, -4.0f64..4.0, 0i64..4), 0..80),
    ) {
        let t = mixed_table(&rows);
        let pred = col("v").gt(lit(0.0)).or(col("k_s").eq(lit("a")));
        let out = Query::from(t.clone()).filter(pred.clone()).run().unwrap();
        // Reference: keep rows where the scalar evaluator says
        // `Bool(true)`; null predicates drop the row.
        let mask: Vec<bool> = (0..t.num_rows())
            .map(|r| pred.eval_row(&t, r).unwrap() == Value::Bool(true))
            .collect();
        prop_assert_eq!(out, t.filter_rows(&mask));
    }
}

/// A full filter → group-by → sort pipeline over a table spanning several
/// parallel blocks must produce identical values *and row order* whatever
/// the worker-thread count.
#[test]
fn parallel_pipeline_matches_sequential() {
    use borg_query::parallel::{override_threads, BLOCK_ROWS};
    let n = BLOCK_ROWS * 2 + 1234;
    let tiers = ["prod", "batch", "free", "mid"];
    let mut t = Table::new(vec![
        ("tier", DataType::Str),
        ("cpu", DataType::Float),
        ("id", DataType::Int),
    ]);
    t.reserve_rows(n);
    for i in 0..n {
        let tier = if i % 97 == 0 {
            Value::Null
        } else {
            Value::str(tiers[i % 4])
        };
        let cpu = if i % 31 == 0 {
            Value::Null
        } else {
            Value::Float((i % 1000) as f64 * 0.25 - 100.0)
        };
        t.push_row(vec![tier, cpu, Value::Int(i as i64)]).unwrap();
    }
    let run = || {
        Query::from(t.clone())
            .filter(col("cpu").gt(lit(-50.0)))
            .group_by(
                &["tier"],
                vec![
                    Agg::sum("cpu", "s"),
                    Agg::mean("cpu", "m"),
                    Agg::count_all("n"),
                    Agg::count_distinct("id", "d"),
                ],
            )
            .sort_by("s", SortOrder::Descending)
            .run()
            .unwrap()
    };
    override_threads(1);
    let sequential = run();
    override_threads(8);
    let parallel = run();
    override_threads(0);
    assert_eq!(sequential, parallel);
    assert!(sequential.num_rows() > 0);
}
