//! Property tests: the query engine against naive reference
//! implementations, over randomized tables.

use borg_query::prelude::*;
use borg_query::join::{join, JoinKind};
use borg_query::Agg;
use proptest::prelude::*;

fn int_table(name: &str, xs: &[i64]) -> Table {
    let mut t = Table::new(vec![(name.to_string(), DataType::Int)]);
    for &x in xs {
        t.push_row(vec![Value::Int(x)]).unwrap();
    }
    t
}

proptest! {
    #[test]
    fn inner_join_matches_nested_loop(
        left in prop::collection::vec(0i64..10, 0..40),
        right in prop::collection::vec(0i64..10, 0..40),
    ) {
        let lt = int_table("k", &left);
        let mut rt = Table::new(vec![("k", DataType::Int), ("tag", DataType::Int)]);
        for (i, &x) in right.iter().enumerate() {
            rt.push_row(vec![Value::Int(x), Value::Int(i as i64)]).unwrap();
        }
        let out = join(&lt, &rt, &["k"], &["k"], JoinKind::Inner).unwrap();
        let expected: usize = left
            .iter()
            .map(|&l| right.iter().filter(|&&r| r == l).count())
            .sum();
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn left_join_keeps_every_left_row(
        left in prop::collection::vec(0i64..10, 0..40),
        right in prop::collection::vec(0i64..10, 0..40),
    ) {
        let lt = int_table("k", &left);
        let mut rt = Table::new(vec![("k", DataType::Int), ("tag", DataType::Int)]);
        for (i, &x) in right.iter().enumerate() {
            rt.push_row(vec![Value::Int(x), Value::Int(i as i64)]).unwrap();
        }
        let out = join(&lt, &rt, &["k"], &["k"], JoinKind::LeftOuter).unwrap();
        let expected: usize = left
            .iter()
            .map(|&l| right.iter().filter(|&&r| r == l).count().max(1))
            .sum();
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000) {
        let mut t = Table::new(vec![("a", DataType::Int), ("b", DataType::Int)]);
        t.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        let sum = col("a").add(col("b")).eval_row(&t, 0).unwrap();
        let product = col("a").mul(col("b")).eval_row(&t, 0).unwrap();
        prop_assert_eq!(sum, Value::Int(a.wrapping_add(b)));
        prop_assert_eq!(product, Value::Int(a.wrapping_mul(b)));
        let cmp = col("a").lt(col("b")).eval_row(&t, 0).unwrap();
        prop_assert_eq!(cmp, Value::Bool(a < b));
    }

    #[test]
    fn percentile_agg_matches_analysis_crate(
        xs in prop::collection::vec(-100.0f64..100.0, 1..60),
        p in 0.0f64..100.0,
    ) {
        let mut t = Table::new(vec![("v", DataType::Float)]);
        for &x in &xs {
            t.push_row(vec![Value::Float(x)]).unwrap();
        }
        let out = Query::from(t)
            .group_by(&[], vec![Agg::percentile("v", p, "q")])
            .run()
            .unwrap();
        let got = out.value(0, "q").unwrap().as_f64().unwrap();
        let expected = borg_analysis::percentile::percentile(&xs, p).unwrap();
        prop_assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn limit_truncates(xs in prop::collection::vec(-100i64..100, 0..50), n in 0usize..60) {
        let t = int_table("v", &xs);
        let out = Query::from(t).limit(n).run().unwrap();
        prop_assert_eq!(out.num_rows(), xs.len().min(n));
    }

    #[test]
    fn derive_then_project_preserves_rows(xs in prop::collection::vec(-100i64..100, 0..50)) {
        let t = int_table("v", &xs);
        let out = Query::from(t)
            .derive("double", col("v").mul(lit(2i64)))
            .select(&["double"])
            .run()
            .unwrap();
        prop_assert_eq!(out.num_rows(), xs.len());
        for (r, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out.value(r, "double").unwrap(), Value::Int(x * 2));
        }
    }
}
