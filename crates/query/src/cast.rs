//! Checked index/code narrowing (borg-lint rule S3).
//!
//! The engine packs row ids and dictionary codes into `u32` (half the
//! footprint of `usize` columns, and the take/remap kernels stream
//! twice as many per cache line). A silent `as u32` would wrap at 2^32
//! rows and corrupt results without any diagnostic; every narrowing
//! therefore routes through [`code32`], which panics loudly at the
//! capacity boundary instead.

/// Narrows a row index / dictionary size to the engine's `u32` code
/// space, panicking with a clear capacity message on overflow.
///
/// The panic is deliberate: 2^32 rows is an engine capacity limit (like
/// exceeding memory), not a recoverable query error, and threading a
/// `Result` through every take/remap inner loop would tax exactly the
/// kernels the u32 encoding exists to speed up.
#[inline]
pub fn code32(n: usize) -> u32 {
    match u32::try_from(n) {
        Ok(code) => code,
        // lint: library-panic-ok (engine capacity limit, documented above) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
        Err(_) => panic!("borg-query capacity exceeded: {n} does not fit the u32 row/code space"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_range() {
        assert_eq!(code32(0), 0);
        assert_eq!(code32(123_456), 123_456);
        assert_eq!(code32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn panics_past_u32() {
        code32(u32::MAX as usize + 1);
    }
}
