//! Scalar values.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL-style null.
    Null,
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints widen to floats; `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for anything but `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view; `None` for anything but `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view; `None` for anything but `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is null
    /// or the types are not comparable. Ints and floats compare
    /// numerically.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// A total ordering for sorting: nulls first, then by natural order;
    /// incomparable cross-type pairs order by a type rank so sorting never
    /// panics.
    pub fn sort_key_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (rank(self), rank(other)) {
            (a, b) if a != b => a.cmp(&b),
            _ => self.compare(other).unwrap_or(Ordering::Equal),
        }
    }

    /// Equality for grouping: nulls group together; numerics compare
    /// numerically.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }

    /// A hashable group key for this value.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Float(f) => GroupKey::Num(if *f == 0.0 {
                0.0f64.to_bits()
            } else {
                f.to_bits()
            }),
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// Hashable projection of a [`Value`], used as a hash-map key in group-by
/// and join.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Null key.
    Null,
    /// Boolean key.
    Bool(bool),
    /// Numeric key (bit pattern of the f64 widening; -0.0 normalized).
    Num(u64),
    /// String key.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn sort_key_total_order() {
        let mut vs = [
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vs.sort_by(|a, b| a.sort_key_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Float(1.5));
        assert_eq!(vs[3], Value::Int(3));
        assert_eq!(vs[4], Value::str("b"));
    }

    #[test]
    fn group_keys() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_eq!(
            Value::Float(0.0).group_key(),
            Value::Float(-0.0).group_key()
        );
        assert_ne!(Value::Null.group_key(), Value::Int(0).group_key());
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Float(1.0).as_i64(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::str("a").to_string(), "a");
    }
}
