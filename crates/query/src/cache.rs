//! Plan+epoch-keyed result cache with single-flight deduplication.
//!
//! borg-serve answers many concurrent sessions asking overlapping
//! questions about the same immutable trace epoch. Query results over an
//! immutable snapshot are themselves immutable, so the cache key is the
//! pair `(epoch_seq, plan_fingerprint)` — two queries with the same key
//! must produce byte-identical tables, and the second one should pay
//! nothing.
//!
//! **Single-flight:** when several threads miss on the same key at once,
//! exactly one (the *leader*) computes; the rest block on a condvar and
//! receive the leader's `Arc<Table>` when it lands. A leader that fails
//! (including [`QueryError::Cancelled`] — an expired deadline must not
//! poison the cache) removes the in-flight marker and wakes the waiters,
//! the first of which becomes the new leader. Entries are evicted FIFO
//! by insertion order once `capacity` is exceeded — deterministic, no
//! clocks, no access-order state.
//!
//! The map is keyed storage only — no iteration except the FIFO order
//! queue — so hash-map order can never leak into results (borg-lint D1).

use crate::error::QueryError;
use crate::fxhash::FxHashMap;
use crate::table::Table;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Cache key: `(epoch_seq, plan_fingerprint)`.
pub type CacheKey = (u64, u64);

/// How a [`ResultCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The result was already cached.
    Hit,
    /// This caller computed the result (the single-flight leader).
    Miss,
    /// Another in-flight caller computed it; this caller waited.
    Coalesced,
}

enum Slot {
    /// A leader is computing; waiters block on the condvar.
    InFlight,
    /// The finished result.
    Ready(Arc<Table>),
}

struct Inner {
    slots: FxHashMap<CacheKey, Slot>,
    /// Ready keys in insertion order, for FIFO eviction.
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// A bounded, thread-safe result cache. See the module docs.
pub struct ResultCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

/// Hit/miss/coalesced tallies for telemetry export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Calls answered from a cached entry.
    pub hits: u64,
    /// Calls that computed (led) the result.
    pub misses: u64,
    /// Calls that waited on another caller's computation.
    pub coalesced: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` finished results (at least 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                slots: FxHashMap::default(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                coalesced: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached table for `key`, or computes it with `f`
    /// exactly once across all concurrent callers (single-flight). `f`
    /// runs **outside** the cache lock. On `Err`, nothing is cached and
    /// the error is returned to the caller that computed; waiting
    /// callers retry leadership.
    pub fn get_or_compute<F>(
        &self,
        key: CacheKey,
        f: F,
    ) -> Result<(Arc<Table>, CacheOutcome), QueryError>
    where
        F: FnOnce() -> Result<Table, QueryError>,
    {
        let mut waited = false;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match inner.slots.get(&key) {
                Some(Slot::Ready(t)) => {
                    let t = Arc::clone(t);
                    if waited {
                        inner.coalesced += 1;
                    } else {
                        inner.hits += 1;
                    }
                    return Ok((
                        t,
                        if waited {
                            CacheOutcome::Coalesced
                        } else {
                            CacheOutcome::Hit
                        },
                    ));
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    inner = self
                        .ready
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => break,
            }
        }
        // This caller leads the computation for `key`.
        inner.slots.insert(key, Slot::InFlight);
        drop(inner);
        let computed = f();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match computed {
            Ok(table) => {
                let t = Arc::new(table);
                inner.slots.insert(key, Slot::Ready(Arc::clone(&t)));
                inner.order.push_back(key);
                inner.misses += 1;
                while inner.order.len() > self.capacity {
                    if let Some(old) = inner.order.pop_front() {
                        inner.slots.remove(&old);
                    }
                }
                self.ready.notify_all();
                Ok((t, CacheOutcome::Miss))
            }
            Err(e) => {
                inner.slots.remove(&key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Current hit/miss/coalesced tallies.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
        }
    }

    /// Number of finished results currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .order
            .len()
    }

    /// True when no finished result is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn one_row(x: i64) -> Table {
        let mut t = Table::new(vec![("x", DataType::Int)]);
        t.push_row(vec![Value::Int(x)]).unwrap();
        t
    }

    #[test]
    fn hit_after_miss_returns_same_table() {
        let cache = ResultCache::new(4);
        let (a, o1) = cache.get_or_compute((1, 7), || Ok(one_row(42))).unwrap();
        let (b, o2) = cache
            .get_or_compute((1, 7), || panic!("must not recompute"))
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ResultCache::new(4);
        let err = cache.get_or_compute((1, 1), || Err(QueryError::Cancelled));
        assert_eq!(err.unwrap_err(), QueryError::Cancelled);
        let (t, o) = cache.get_or_compute((1, 1), || Ok(one_row(5))).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(t.value(0, "x").unwrap(), Value::Int(5));
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ResultCache::new(2);
        for k in 0..5u64 {
            cache
                .get_or_compute((0, k), || Ok(one_row(k as i64)))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        // Oldest keys gone: recompute is a miss.
        let (_, o) = cache.get_or_compute((0, 0), || Ok(one_row(0))).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        // Newest key still present.
        let (_, o) = cache
            .get_or_compute((0, 4), || panic!("must be cached"))
            .unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn single_flight_computes_once_across_threads() {
        let cache = ResultCache::new(8);
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(s.spawn(|| {
                    cache
                        .get_or_compute((3, 3), || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Widen the in-flight window so others pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(one_row(9))
                        })
                        .unwrap()
                }));
            }
            let outcomes: Vec<CacheOutcome> =
                handles.into_iter().map(|h| h.join().unwrap().1).collect();
            assert_eq!(computed.load(Ordering::SeqCst), 1);
            assert_eq!(
                outcomes
                    .iter()
                    .filter(|o| **o == CacheOutcome::Miss)
                    .count(),
                1
            );
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
    }
}
