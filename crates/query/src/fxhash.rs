//! A fast, non-cryptographic hasher for the engine's hot hash maps.
//!
//! The standard library's SipHash is DoS-resistant but costs real time in
//! group-by and join inner loops. Keys here are either fixed-width `u64`
//! encodings or short interned strings from trusted in-process data, so
//! the rustc-style multiply-rotate hash (FxHash) is the right trade.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// rustc-FxHash: one multiply and rotate per word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Snapshot of a hash map's entries in key-sorted order — the blessed
/// way (borg-lint rule D1) to iterate an [`FxHashMap`] when anything
/// order-sensitive is derived from the traversal.
pub fn sorted_entries<K: Ord + Clone, V: Clone>(map: &FxHashMap<K, V>) -> Vec<(K, V)> {
    let mut v: Vec<(K, V)> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_distribute() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);

        let mut s: FxHashSet<Box<[u64]>> = FxHashSet::default();
        s.insert(vec![1, 2].into_boxed_slice());
        assert!(s.contains(&[1u64, 2][..]));
    }

    #[test]
    fn string_keys_hash_consistently() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("prod".into(), 1);
        assert_eq!(m.get("prod"), Some(&1));
        assert_eq!(m.get("beb"), None);
    }
}
