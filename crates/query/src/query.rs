//! Fluent query builder.
//!
//! [`Query`] chains the relational operators into a lazily executed plan,
//! mirroring how the paper's BigQuery SQL composes `WHERE`, `GROUP BY`,
//! and `ORDER BY`.

use crate::error::QueryError;
use crate::expr::Expr;
use crate::groupby::Agg;
use crate::join::JoinKind;
use crate::sort::SortOrder;
use crate::table::Table;
use borg_telemetry::{Plane, Telemetry};

enum Step {
    Filter(Expr),
    Project(Vec<String>),
    Derive(String, Expr),
    GroupBy(Vec<String>, Vec<Agg>),
    Sort(Vec<(String, SortOrder)>),
    Join {
        right: Table,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
        kind: JoinKind,
    },
    Limit(usize),
}

impl Step {
    /// Operator name for telemetry metric/span labels.
    fn name(&self) -> &'static str {
        match self {
            Step::Filter(_) => "filter",
            Step::Project(_) => "project",
            Step::Derive(..) => "derive",
            Step::GroupBy(..) => "group_by",
            Step::Sort(_) => "sort",
            Step::Join { .. } => "join",
            Step::Limit(_) => "limit",
        }
    }

    /// True for operators whose expression evaluation runs as parallel
    /// block scans (`crate::parallel`).
    fn is_scan(&self) -> bool {
        matches!(self, Step::Filter(_) | Step::Derive(..))
    }
}

/// Total dictionary entries across a table's string columns — the
/// telemetry proxy for dictionary-encoding behavior (growth across a
/// join/group_by means codes were remapped into a merged dictionary).
fn dict_entries(t: &Table) -> u64 {
    (0..t.num_columns())
        .filter_map(|i| t.column_at(i).str_vec())
        .map(|sv| sv.dict_len() as u64)
        .sum()
}

/// A lazily executed query plan over one source table.
pub struct Query {
    source: Table,
    steps: Vec<Step>,
    cancel: Option<crate::cancel::CancelToken>,
}

impl Query {
    /// Starts a query over `table`.
    pub fn from(table: Table) -> Query {
        Query {
            source: table,
            steps: Vec::new(),
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token: execution checks it
    /// between plan steps and at block boundaries inside scan and
    /// group-by operators, returning [`QueryError::Cancelled`] once it
    /// is set. borg-serve arms one per admitted query with the query's
    /// deadline budget.
    pub fn with_cancel(mut self, token: crate::cancel::CancelToken) -> Query {
        self.cancel = Some(token);
        self
    }

    /// Keeps rows where `predicate` is true.
    pub fn filter(mut self, predicate: Expr) -> Query {
        self.steps.push(Step::Filter(predicate));
        self
    }

    /// Keeps only the named columns.
    pub fn select(mut self, columns: &[&str]) -> Query {
        self.steps.push(Step::Project(
            columns.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Adds a computed column.
    pub fn derive(mut self, name: impl Into<String>, expr: Expr) -> Query {
        self.steps.push(Step::Derive(name.into(), expr));
        self
    }

    /// Groups by key columns and aggregates.
    pub fn group_by(mut self, keys: &[&str], aggs: Vec<Agg>) -> Query {
        self.steps.push(Step::GroupBy(
            keys.iter().map(|s| s.to_string()).collect(),
            aggs,
        ));
        self
    }

    /// Sorts by one column.
    pub fn sort_by(mut self, column: &str, order: SortOrder) -> Query {
        self.steps
            .push(Step::Sort(vec![(column.to_string(), order)]));
        self
    }

    /// Sorts by several columns, earlier keys first.
    pub fn sort_by_many(mut self, keys: &[(&str, SortOrder)]) -> Query {
        self.steps.push(Step::Sort(
            keys.iter().map(|(c, o)| (c.to_string(), *o)).collect(),
        ));
        self
    }

    /// Inner-joins with `right` on pairwise key equality.
    pub fn join(mut self, right: Table, left_keys: &[&str], right_keys: &[&str]) -> Query {
        self.steps.push(Step::Join {
            right,
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            kind: JoinKind::Inner,
        });
        self
    }

    /// Left-outer-joins with `right` on pairwise key equality.
    pub fn left_join(mut self, right: Table, left_keys: &[&str], right_keys: &[&str]) -> Query {
        self.steps.push(Step::Join {
            right,
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            kind: JoinKind::LeftOuter,
        });
        self
    }

    /// Keeps only the first `n` rows.
    pub fn limit(mut self, n: usize) -> Query {
        self.steps.push(Step::Limit(n));
        self
    }

    /// Executes the plan.
    pub fn run(self) -> Result<Table, QueryError> {
        self.run_with(&mut Telemetry::disabled())
    }

    /// Executes the plan, recording per-operator telemetry into `tel`:
    /// one span per step (timing plane) nested under the caller's open
    /// span, rows in/out and step counts (deterministic plane), and
    /// scan-block / parallel-fan-out / dictionary-size counters
    /// (engine plane — implementation detail, excluded from the
    /// cross-strategy byte contract). [`Query::run`] is this with a
    /// disabled instance.
    pub fn run_with(self, tel: &mut Telemetry) -> Result<Table, QueryError> {
        let mut t = self.source;
        let cancel = self.cancel.as_ref();
        for step in self.steps {
            if cancel.is_some_and(crate::cancel::CancelToken::is_cancelled) {
                return Err(QueryError::Cancelled);
            }
            let name = step.name();
            let rows_in = t.num_rows() as u64;
            let span = tel.span_enter(&format!("query.{name}"));
            if tel.is_enabled() {
                tel.count(&format!("query.op.{name}.steps"), Plane::Deterministic, 1);
                tel.count(
                    &format!("query.op.{name}.rows_in"),
                    Plane::Deterministic,
                    rows_in,
                );
                if step.is_scan() {
                    let blocks = rows_in.div_ceil(crate::parallel::BLOCK_ROWS as u64).max(1);
                    let fanout = blocks.min(crate::parallel::num_threads() as u64);
                    tel.count(&format!("query.op.{name}.blocks"), Plane::Engine, blocks);
                    tel.count(&format!("query.op.{name}.fanout"), Plane::Engine, fanout);
                }
            }
            t = match step {
                Step::Filter(p) => crate::ops::filter_cancel(&t, &p, cancel)?,
                Step::Project(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    crate::ops::project(&t, &names)?
                }
                Step::Derive(name, expr) => crate::ops::derive(t, &name, &expr)?,
                Step::GroupBy(keys, aggs) => {
                    let names: Vec<&str> = keys.iter().map(String::as_str).collect();
                    crate::groupby::group_by_cancel(&t, &names, &aggs, cancel)?
                }
                Step::Sort(keys) => {
                    let pairs: Vec<(&str, SortOrder)> =
                        keys.iter().map(|(c, o)| (c.as_str(), *o)).collect();
                    crate::sort::sort_by(&t, &pairs)?
                }
                Step::Join {
                    right,
                    left_keys,
                    right_keys,
                    kind,
                } => {
                    let lk: Vec<&str> = left_keys.iter().map(String::as_str).collect();
                    let rk: Vec<&str> = right_keys.iter().map(String::as_str).collect();
                    crate::join::join(&t, &right, &lk, &rk, kind)?
                }
                Step::Limit(n) => {
                    let keep: Vec<usize> = (0..t.num_rows().min(n)).collect();
                    t.take_rows(&keep)
                }
            };
            if tel.is_enabled() {
                tel.count(
                    &format!("query.op.{name}.rows_out"),
                    Plane::Deterministic,
                    t.num_rows() as u64,
                );
                tel.count(
                    &format!("query.op.{name}.dict_entries_out"),
                    Plane::Engine,
                    dict_entries(&t),
                );
                let h = tel.hist("query.op.rows_out", Plane::Deterministic);
                tel.record(h, t.num_rows() as u64);
            }
            tel.span_exit(span);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::expr::{col, lit};
    use crate::value::Value;

    fn usage_table() -> Table {
        let mut t = Table::new(vec![
            ("cell", DataType::Str),
            ("tier", DataType::Str),
            ("cpu", DataType::Float),
        ]);
        for (cell, tier, cpu) in [
            ("a", "prod", 0.4),
            ("a", "beb", 0.2),
            ("b", "prod", 0.1),
            ("b", "beb", 0.5),
            ("a", "prod", 0.6),
        ] {
            t.push_row(vec![Value::str(cell), Value::str(tier), Value::Float(cpu)])
                .unwrap();
        }
        t
    }

    #[test]
    fn full_pipeline() {
        let out = Query::from(usage_table())
            .filter(col("cpu").gt(lit(0.15)))
            .group_by(&["cell", "tier"], vec![Agg::sum("cpu", "total")])
            .sort_by_many(&[
                ("cell", SortOrder::Ascending),
                ("total", SortOrder::Descending),
            ])
            .run()
            .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "cell").unwrap(), Value::str("a"));
        assert_eq!(out.value(0, "total").unwrap(), Value::Float(1.0));
        assert_eq!(out.value(2, "cell").unwrap(), Value::str("b"));
    }

    #[test]
    fn derive_then_filter() {
        let out = Query::from(usage_table())
            .derive("double", col("cpu").mul(lit(2.0)))
            .filter(col("double").ge(lit(1.0)))
            .run()
            .unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn select_and_limit() {
        let out = Query::from(usage_table())
            .select(&["cpu"])
            .limit(2)
            .run()
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 1);
    }

    #[test]
    fn join_in_pipeline() {
        let mut weights = Table::new(vec![("tier", DataType::Str), ("w", DataType::Float)]);
        weights
            .push_row(vec![Value::str("prod"), Value::Float(1.0)])
            .unwrap();
        weights
            .push_row(vec![Value::str("beb"), Value::Float(0.1)])
            .unwrap();
        let out = Query::from(usage_table())
            .join(weights, &["tier"], &["tier"])
            .derive("weighted", col("cpu").mul(col("w")))
            .group_by(&[], vec![Agg::sum("weighted", "total")])
            .run()
            .unwrap();
        let total = out.value(0, "total").unwrap().as_f64().unwrap();
        assert!((total - (0.4 + 0.1 + 0.6 + 0.02 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn run_with_records_operator_stats() {
        let mut tel = Telemetry::enabled();
        let out = Query::from(usage_table())
            .filter(col("cpu").gt(lit(0.15)))
            .select(&["cell", "cpu"])
            .run_with(&mut tel)
            .unwrap();
        assert_eq!(out.num_rows(), 4);
        let snap = tel.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(get("query.op.filter.rows_in"), Some(5));
        assert_eq!(get("query.op.filter.rows_out"), Some(4));
        assert_eq!(get("query.op.filter.steps"), Some(1));
        assert_eq!(get("query.op.project.rows_out"), Some(4));
        // Scan ops report engine-plane block/fan-out counters.
        assert_eq!(get("query.op.filter.blocks"), Some(1));
        assert!(snap.spans.iter().any(|s| s.path == "query.filter"));
        assert!(snap
            .hists
            .iter()
            .any(|h| h.name == "query.op.rows_out" && h.hist.count == 2));
    }

    #[test]
    fn errors_propagate() {
        assert!(Query::from(usage_table())
            .filter(col("nope").gt(lit(0.0)))
            .run()
            .is_err());
    }
}
