//! Telemetry → [`Table`] bridge: turn a [`Snapshot`] into query-engine
//! tables so metrics are analyzed with the same operators as trace data
//! ("self-queryable" observability — the profile numbers round-trip
//! through the engine they describe).
//!
//! Lives here rather than in `borg-telemetry` to keep that crate
//! dependency-free (everything else depends on it).

use crate::column::DataType;
use crate::table::Table;
use crate::value::Value;
use borg_telemetry::Snapshot;

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn push(t: &mut Table, row: Vec<Value>) {
    let ok = t.push_row(row).is_ok();
    debug_assert!(ok, "bridge rows match their schema by construction");
}

/// The snapshot's counters as a table: `name`, `plane`
/// (`det`/`eng`/`tim`), `value`.
pub fn counters_table(snap: &Snapshot) -> Table {
    let mut t = Table::new(vec![
        ("name", DataType::Str),
        ("plane", DataType::Str),
        ("value", DataType::Int),
    ]);
    for c in &snap.counters {
        push(
            &mut t,
            vec![
                Value::str(&c.name),
                Value::str(plane_tag(c.plane)),
                int(c.value),
            ],
        );
    }
    t
}

/// The snapshot's histograms as a table: `name`, `plane`, `count`,
/// `sum`, and the compact bucket rendering.
pub fn hists_table(snap: &Snapshot) -> Table {
    let mut t = Table::new(vec![
        ("name", DataType::Str),
        ("plane", DataType::Str),
        ("count", DataType::Int),
        ("sum", DataType::Int),
        ("buckets", DataType::Str),
    ]);
    for h in &snap.hists {
        push(
            &mut t,
            vec![
                Value::str(&h.name),
                Value::str(plane_tag(h.plane)),
                int(h.hist.count),
                int(h.hist.sum),
                Value::str(h.hist.render()),
            ],
        );
    }
    t
}

/// The snapshot's span tree as a table in depth-first order: `path`,
/// `name`, `depth`, `count`, `total_ns`.
pub fn spans_table(snap: &Snapshot) -> Table {
    let mut t = Table::new(vec![
        ("path", DataType::Str),
        ("name", DataType::Str),
        ("depth", DataType::Int),
        ("count", DataType::Int),
        ("total_ns", DataType::Int),
    ]);
    for s in &snap.spans {
        push(
            &mut t,
            vec![
                Value::str(&s.path),
                Value::str(&s.name),
                int(u64::from(s.depth)),
                int(s.count),
                int(s.total_ns),
            ],
        );
    }
    t
}

/// All three bridge tables: `[counters, hists, spans]`.
pub fn snapshot_tables(snap: &Snapshot) -> Vec<Table> {
    vec![counters_table(snap), hists_table(snap), spans_table(snap)]
}

fn plane_tag(p: borg_telemetry::Plane) -> &'static str {
    match p {
        borg_telemetry::Plane::Deterministic => "det",
        borg_telemetry::Plane::Engine => "eng",
        borg_telemetry::Plane::Timing => "tim",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::query::Query;
    use borg_telemetry::{Plane, Telemetry};

    #[test]
    fn snapshot_round_trips_through_the_engine() {
        let mut tel = Telemetry::enabled();
        let root = tel.span_enter("root");
        tel.count("a.hits", Plane::Deterministic, 5);
        tel.count("a.misses", Plane::Engine, 2);
        let h = tel.hist("a.sizes", Plane::Deterministic);
        tel.record(h, 100);
        tel.span_exit(root);
        let snap = tel.snapshot();

        let counters = counters_table(&snap);
        // Query the metrics with the engine itself: deterministic-plane
        // rows only, by value.
        let det = Query::from(counters)
            .filter(col("plane").eq(lit("det")))
            .run()
            .unwrap();
        assert_eq!(det.num_rows(), 1);
        assert_eq!(det.value(0, "name").unwrap(), Value::str("a.hits"));
        assert_eq!(det.value(0, "value").unwrap(), Value::Int(5));

        let spans = spans_table(&snap);
        assert_eq!(spans.num_rows(), 1);
        assert_eq!(spans.value(0, "path").unwrap(), Value::str("root"));

        let hists = hists_table(&snap);
        assert_eq!(hists.value(0, "count").unwrap(), Value::Int(1));
        assert_eq!(hists.value(0, "sum").unwrap(), Value::Int(100));
    }

    #[test]
    fn empty_snapshot_gives_empty_tables() {
        let tables = snapshot_tables(&Snapshot::default());
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| t.num_rows() == 0));
    }
}
