//! Tables: named, typed columns of equal length.

use crate::column::{Column, DataType};
use crate::error::QueryError;
use crate::value::Value;
use std::fmt;

/// A table: an ordered set of named columns with equal row counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table with the given schema.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names (a schema is a programming
    /// artifact, not runtime data).
    pub fn new<S: Into<String>>(schema: Vec<(S, DataType)>) -> Table {
        let mut names = Vec::with_capacity(schema.len());
        let mut columns = Vec::with_capacity(schema.len());
        for (name, dt) in schema {
            let name = name.into();
            assert!(
                !names.contains(&name),
                "duplicate column name {name:?} in schema"
            );
            names.push(name);
            columns.push(Column::empty(dt));
        }
        Table { names, columns }
    }

    /// Builds a table directly from named columns.
    pub fn from_columns(cols: Vec<(String, Column)>) -> Result<Table, QueryError> {
        let mut names = Vec::with_capacity(cols.len());
        let mut columns = Vec::with_capacity(cols.len());
        let mut len: Option<usize> = None;
        for (name, col) in cols {
            if names.contains(&name) {
                return Err(QueryError::DuplicateColumn(name));
            }
            if let Some(l) = len {
                if col.len() != l {
                    return Err(QueryError::ArityMismatch {
                        expected: l,
                        actual: col.len(),
                    });
                }
            } else {
                len = Some(col.len());
            }
            names.push(name);
            columns.push(col);
        }
        Ok(Table { names, columns })
    }

    /// Column names, in declaration order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize, QueryError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| QueryError::UnknownColumn(name.to_string()))
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Result<&Column, QueryError> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// A column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// One cell.
    pub fn value(&self, row: usize, column: &str) -> Result<Value, QueryError> {
        Ok(self.column(column)?.get(row))
    }

    /// Reserves room for `additional` more rows in every column —
    /// call before a `push_row` loop of known size to avoid repeated
    /// reallocation.
    pub fn reserve_rows(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    /// Appends a row; values must match the schema positionally.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), QueryError> {
        if row.len() != self.columns.len() {
            return Err(QueryError::ArityMismatch {
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        // Validate all fields before mutating any column so a failed push
        // cannot leave ragged columns.
        for (i, value) in row.iter().enumerate() {
            let dt = self.columns[i].data_type();
            let ok = matches!(
                (dt, value),
                (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_) | Value::Int(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            ) || value.is_null();
            if !ok {
                return Err(QueryError::TypeMismatch {
                    column: self.names[i].clone(),
                    expected: dt.name(),
                    actual: format!("{value:?}"),
                });
            }
        }
        for (i, value) in row.into_iter().enumerate() {
            let name = &self.names[i];
            self.columns[i]
                .push(value, name)
                // lint: library-panic-ok (the loop above type-checked every cell) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
                .expect("row pre-validated");
        }
        Ok(())
    }

    /// One row as values.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// A new table keeping only rows where `mask` is true.
    pub fn filter_rows(&self, mask: &[bool]) -> Table {
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// A new table with rows rearranged to `indices` order.
    pub fn take_rows(&self, indices: &[usize]) -> Table {
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// A new table with only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Table, QueryError> {
        let mut out_names = Vec::with_capacity(names.len());
        let mut out_cols = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self.column_index(n)?;
            out_names.push(self.names[idx].clone());
            out_cols.push(self.columns[idx].clone());
        }
        Ok(Table {
            names: out_names,
            columns: out_cols,
        })
    }

    /// Adds (or replaces) a column; must match the row count.
    pub fn with_column(
        mut self,
        name: impl Into<String>,
        col: Column,
    ) -> Result<Table, QueryError> {
        let name = name.into();
        if col.len() != self.num_rows() && self.num_columns() > 0 {
            return Err(QueryError::ArityMismatch {
                expected: self.num_rows(),
                actual: col.len(),
            });
        }
        if let Ok(idx) = self.column_index(&name) {
            self.columns[idx] = col;
        } else {
            self.names.push(name);
            self.columns.push(col);
        }
        Ok(self)
    }
}

impl fmt::Display for Table {
    /// Renders the table in a compact aligned-text form (useful in
    /// examples and experiment harnesses).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.names.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = (0..self.num_rows())
            .map(|r| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| {
                        let s = match col.get(r) {
                            Value::Float(x) => format!("{x:.6}"),
                            v => v.to_string(),
                        };
                        widths[c] = widths[c].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        for (i, name) in self.names.iter().enumerate() {
            write!(f, "{:>w$}  ", name, w = widths[i])?;
        }
        writeln!(f)?;
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:>w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec![("id", DataType::Int), ("name", DataType::Str)]);
        t.push_row(vec![Value::Int(1), Value::str("a")]).unwrap();
        t.push_row(vec![Value::Int(2), Value::str("b")]).unwrap();
        t.push_row(vec![Value::Int(3), Value::Null]).unwrap();
        t
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.value(1, "name").unwrap(), Value::str("b"));
        assert_eq!(t.value(2, "name").unwrap(), Value::Null);
        assert!(t.value(0, "nope").is_err());
    }

    #[test]
    fn arity_checked() {
        let mut t = sample();
        assert!(t.push_row(vec![Value::Int(4)]).is_err());
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn failed_push_leaves_table_rectangular() {
        let mut t = sample();
        // Second field has the wrong type; first must not be committed.
        assert!(t.push_row(vec![Value::Int(4), Value::Bool(true)]).is_err());
        assert_eq!(t.column("id").unwrap().len(), 3);
        assert_eq!(t.column("name").unwrap().len(), 3);
    }

    #[test]
    fn filter_and_take() {
        let t = sample();
        let f = t.filter_rows(&[true, false, true]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(1, "id").unwrap(), Value::Int(3));
        let r = t.take_rows(&[2, 0]);
        assert_eq!(r.value(0, "id").unwrap(), Value::Int(3));
    }

    #[test]
    fn project_reorders() {
        let t = sample();
        let p = t.project(&["name", "id"]).unwrap();
        assert_eq!(p.column_names(), &["name".to_string(), "id".to_string()]);
        assert!(t.project(&["missing"]).is_err());
    }

    #[test]
    fn with_column_replaces_or_adds() {
        let t = sample();
        let mut flag = Column::empty(DataType::Bool);
        for _ in 0..3 {
            flag.push(Value::Bool(true), "f").unwrap();
        }
        let t = t.with_column("flag", flag).unwrap();
        assert_eq!(t.num_columns(), 3);
        let short = Column::empty(DataType::Bool);
        assert!(t.with_column("oops", short).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_schema_panics() {
        Table::new(vec![("x", DataType::Int), ("x", DataType::Int)]);
    }

    #[test]
    fn from_columns_validates() {
        let mut a = Column::empty(DataType::Int);
        a.push(Value::Int(1), "a").unwrap();
        let b = Column::empty(DataType::Int);
        assert!(Table::from_columns(vec![("a".into(), a), ("b".into(), b)]).is_err());
    }

    #[test]
    fn display_renders() {
        let s = sample().to_string();
        assert!(s.contains("id"));
        assert!(s.contains("null"));
    }
}
