//! Dictionary-encoded string storage.
//!
//! String columns are the hot keys of every trace analysis (tiers, event
//! names, collection ids…), and a `Vec<Option<String>>` representation
//! heap-allocates per cell and clones per comparison. [`StrVec`] instead
//! interns every distinct string once in an [`Arc`]-shared pool and
//! stores one dense `u32` code per row, so:
//!
//! * group-by, join, and sort key comparisons operate on integer codes;
//! * `filter`/`take` copy 4-byte codes and share the pool (no string
//!   clones at all);
//! * equality against a literal is one pool lookup plus a code scan.
//!
//! Null is represented by the reserved [`NULL_CODE`].

use crate::fxhash::FxHashMap;
use std::sync::Arc;

/// Reserved code for SQL null (never a valid pool index).
pub const NULL_CODE: u32 = u32::MAX;

/// The shared intern pool: dense code → string, plus the reverse index.
#[derive(Debug, Clone, Default)]
struct Dict {
    strings: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, u32>,
}

impl Dict {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        let code = crate::cast::code32(self.strings.len());
        assert!(code != NULL_CODE, "dictionary overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, code);
        code
    }
}

/// A nullable string vector with dictionary encoding.
#[derive(Debug, Clone, Default)]
pub struct StrVec {
    dict: Arc<Dict>,
    codes: Vec<u32>,
}

impl StrVec {
    /// An empty vector.
    pub fn new() -> StrVec {
        StrVec::default()
    }

    /// An empty vector with room for `n` rows.
    pub fn with_capacity(n: usize) -> StrVec {
        StrVec {
            dict: Arc::new(Dict::default()),
            codes: Vec::with_capacity(n),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reserves room for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.codes.reserve(additional);
    }

    /// Number of distinct strings in the pool.
    pub fn dict_len(&self) -> usize {
        self.dict.strings.len()
    }

    /// Interns `s` (if new) and returns its code without appending a row.
    pub fn intern(&mut self, s: &str) -> u32 {
        Arc::make_mut(&mut self.dict).intern(s)
    }

    /// The code for `s` if it is already in the pool.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict.lookup.get(s).copied()
    }

    /// The string behind a pool code.
    ///
    /// # Panics
    ///
    /// Panics when `code` is [`NULL_CODE`] or out of range.
    pub fn string_of(&self, code: u32) -> &str {
        &self.dict.strings[code as usize]
    }

    /// Appends a row.
    pub fn push(&mut self, s: Option<&str>) {
        let code = match s {
            Some(s) => self.intern(s),
            None => NULL_CODE,
        };
        self.codes.push(code);
    }

    /// Appends a row that is already encoded (a code from *this* pool or
    /// [`NULL_CODE`]).
    pub(crate) fn push_code(&mut self, code: u32) {
        debug_assert!(code == NULL_CODE || (code as usize) < self.dict.strings.len());
        self.codes.push(code);
    }

    /// The row's string; `None` for null or out-of-range rows.
    pub fn get(&self, row: usize) -> Option<&str> {
        match self.codes.get(row) {
            Some(&NULL_CODE) | None => None,
            Some(&code) => Some(&self.dict.strings[code as usize]),
        }
    }

    /// The row's code; [`NULL_CODE`] for null or out-of-range rows.
    pub fn code(&self, row: usize) -> u32 {
        self.codes.get(row).copied().unwrap_or(NULL_CODE)
    }

    /// All row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Iterates the rows as `Option<&str>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        self.codes.iter().map(move |&c| {
            if c == NULL_CODE {
                None
            } else {
                Some(&*self.dict.strings[c as usize])
            }
        })
    }

    /// Rows selected by `mask`, sharing this pool (no string clones).
    pub fn filter(&self, mask: &[bool]) -> StrVec {
        let kept = mask.iter().filter(|&&m| m).count();
        let mut codes = Vec::with_capacity(kept);
        codes.extend(
            self.codes
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(&c, _)| c),
        );
        StrVec {
            dict: Arc::clone(&self.dict),
            codes,
        }
    }

    /// The contiguous sub-range of rows, sharing this pool.
    pub fn slice(&self, range: std::ops::Range<usize>) -> StrVec {
        StrVec {
            dict: Arc::clone(&self.dict),
            codes: self.codes[range].to_vec(),
        }
    }

    /// Rows rearranged to `indices` order (out-of-range → null), sharing
    /// this pool.
    pub fn take(&self, indices: &[usize]) -> StrVec {
        let mut codes = Vec::with_capacity(indices.len());
        codes.extend(
            indices
                .iter()
                .map(|&i| self.codes.get(i).copied().unwrap_or(NULL_CODE)),
        );
        StrVec {
            dict: Arc::clone(&self.dict),
            codes,
        }
    }

    /// For every pool code, its rank in lexicographic string order.
    ///
    /// Sorting decorates string cells with `rank[code]`, turning string
    /// comparisons into integer comparisons.
    pub fn lex_ranks(&self) -> Vec<u32> {
        let n = self.dict.strings.len();
        let mut order: Vec<u32> = (0..crate::cast::code32(n)).collect();
        order.sort_unstable_by(|&a, &b| {
            self.dict.strings[a as usize].cmp(&self.dict.strings[b as usize])
        });
        let mut ranks = vec![0u32; n];
        for (rank, &code) in order.iter().enumerate() {
            ranks[code as usize] = crate::cast::code32(rank);
        }
        ranks
    }

    /// Maps every code of `self` to the corresponding code in `other`'s
    /// pool, for join probes across tables. Strings absent from `other`
    /// map to `None`.
    pub fn code_mapping_into(&self, other: &StrVec) -> Vec<Option<u32>> {
        if Arc::ptr_eq(&self.dict, &other.dict) {
            return (0..crate::cast::code32(self.dict.strings.len()))
                .map(Some)
                .collect();
        }
        self.dict
            .strings
            .iter()
            .map(|s| other.dict.lookup.get(s.as_ref()).copied())
            .collect()
    }

    /// True when the two vectors share one pool allocation, making raw
    /// code comparison valid across them.
    pub fn same_dict(&self, other: &StrVec) -> bool {
        Arc::ptr_eq(&self.dict, &other.dict)
    }
}

impl PartialEq for StrVec {
    /// Row-wise semantic equality (pools may assign different codes).
    fn eq(&self, other: &StrVec) -> bool {
        if self.codes.len() != other.codes.len() {
            return false;
        }
        if Arc::ptr_eq(&self.dict, &other.dict) {
            return self.codes == other.codes;
        }
        self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<'a> FromIterator<Option<&'a str>> for StrVec {
    fn from_iter<I: IntoIterator<Item = Option<&'a str>>>(iter: I) -> StrVec {
        let mut v = StrVec::new();
        for s in iter {
            v.push(s);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut v = StrVec::new();
        v.push(Some("prod"));
        v.push(Some("beb"));
        v.push(Some("prod"));
        v.push(None);
        assert_eq!(v.len(), 4);
        assert_eq!(v.dict_len(), 2);
        assert_eq!(v.get(0), Some("prod"));
        assert_eq!(v.get(2), Some("prod"));
        assert_eq!(v.get(3), None);
        assert_eq!(v.code(0), v.code(2));
        assert_ne!(v.code(0), v.code(1));
        assert_eq!(v.code(3), NULL_CODE);
        assert_eq!(v.get(99), None);
    }

    #[test]
    fn filter_and_take_share_pool() {
        let mut v = StrVec::new();
        for s in [Some("a"), Some("b"), None, Some("a")] {
            v.push(s);
        }
        let f = v.filter(&[true, false, true, true]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(0), Some("a"));
        assert_eq!(f.get(1), None);
        assert!(f.same_dict(&v));

        let t = v.take(&[3, 99, 1]);
        assert_eq!(t.get(0), Some("a"));
        assert_eq!(t.get(1), None); // out of range → null
        assert_eq!(t.get(2), Some("b"));
    }

    #[test]
    fn semantic_equality_across_pools() {
        let mut a = StrVec::new();
        a.push(Some("x"));
        a.push(Some("y"));
        let mut b = StrVec::new();
        b.push(Some("y")); // different insertion order → different codes
        b.push(Some("x"));
        let b = b.take(&[1, 0]);
        assert_eq!(a, b);
        assert_ne!(a.code(0), b.code(0)); // codes differ, strings match
    }

    #[test]
    fn lex_ranks_order_strings() {
        let mut v = StrVec::new();
        for s in ["mid", "beb", "prod", "free"] {
            v.push(Some(s));
        }
        let ranks = v.lex_ranks();
        let rank_of = |s: &str| ranks[v.code_of(s).unwrap() as usize];
        assert!(rank_of("beb") < rank_of("free"));
        assert!(rank_of("free") < rank_of("mid"));
        assert!(rank_of("mid") < rank_of("prod"));
    }

    #[test]
    fn code_mapping_across_pools() {
        let mut l = StrVec::new();
        l.push(Some("prod"));
        l.push(Some("beb"));
        let mut r = StrVec::new();
        r.push(Some("beb"));
        r.push(Some("unknown"));
        let map = r.code_mapping_into(&l);
        assert_eq!(map[r.code(0) as usize], Some(l.code(1)));
        assert_eq!(map[r.code(1) as usize], None);
    }
}
