//! Fixed-width `u64` key encodings for grouping and joining.
//!
//! Group-by and join used to build a `Vec<GroupKey>` per row — one enum
//! (often holding a cloned `String`) per key cell. This module encodes a
//! key column once, up front, into a flat `Vec<u64>` whose equality
//! classes match [`crate::value::Value::group_key`]:
//!
//! * numerics widen to `f64` and compare by bit pattern, with `-0.0`
//!   normalized to `+0.0` (so `Int(2)`, `Float(2.0)` and `-0.0`/`+0.0`
//!   group together exactly as before);
//! * strings use their dictionary codes;
//! * booleans use 0/1.
//!
//! Nulls get a per-type sentinel that no non-null cell can produce, so
//! null cells group with each other and with nothing else. Row keys are
//! then fixed-width `[u64]` slices: hashable with no per-row allocation.

use crate::column::Column;
use crate::dict::NULL_CODE;

/// Null sentinel for numeric cells: the bit pattern of `-0.0`, which is
/// unreachable because [`num_key`] normalizes `-0.0` to `+0.0`.
pub const NUM_NULL: u64 = 0x8000_0000_0000_0000;
/// Null sentinel for string cells (never a valid dictionary code).
pub const STR_NULL: u64 = NULL_CODE as u64;
/// Null sentinel for boolean cells.
pub const BOOL_NULL: u64 = 2;

/// The grouping key of one non-null numeric cell.
#[inline]
pub fn num_key(f: f64) -> u64 {
    // `-0.0 == 0.0`, so equal-comparing values must encode equally.
    if f == 0.0 {
        0
    } else {
        f.to_bits()
    }
}

/// A key column encoded to one `u64` per row.
pub struct EncodedCol {
    /// Per-row keys.
    pub keys: Vec<u64>,
    /// The value `keys[row]` takes when the cell is null.
    pub null_key: u64,
}

impl EncodedCol {
    /// True when the cell at `row` is null.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.keys[row] == self.null_key
    }
}

/// Encodes a column for grouping (equality semantics of
/// [`crate::value::Value::group_key`]).
pub fn encode_column(col: &Column) -> EncodedCol {
    match col {
        Column::Int(v) => EncodedCol {
            keys: v
                .iter()
                .map(|c| c.map_or(NUM_NULL, |x| num_key(x as f64)))
                .collect(),
            null_key: NUM_NULL,
        },
        Column::Float(v) => EncodedCol {
            keys: v.iter().map(|c| c.map_or(NUM_NULL, num_key)).collect(),
            null_key: NUM_NULL,
        },
        Column::Str(v) => EncodedCol {
            keys: v.codes().iter().map(|&c| c as u64).collect(),
            null_key: STR_NULL,
        },
        Column::Bool(v) => EncodedCol {
            keys: v
                .iter()
                .map(|c| c.map_or(BOOL_NULL, |b| b as u64))
                .collect(),
            null_key: BOOL_NULL,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;

    fn encode_values(dt: DataType, vs: &[Value]) -> EncodedCol {
        let mut c = Column::empty(dt);
        for v in vs {
            c.push(v.clone(), "x").unwrap();
        }
        encode_column(&c)
    }

    #[test]
    fn int_and_float_share_equality_classes() {
        let i = encode_values(DataType::Int, &[Value::Int(2), Value::Int(0), Value::Null]);
        let f = encode_values(
            DataType::Float,
            &[Value::Float(2.0), Value::Float(-0.0), Value::Null],
        );
        assert_eq!(i.keys, f.keys);
        assert!(i.is_null(2));
        assert!(!i.is_null(1));
    }

    #[test]
    fn zero_never_collides_with_null() {
        let c = encode_values(DataType::Float, &[Value::Float(0.0), Value::Null]);
        assert_ne!(c.keys[0], c.keys[1]);
    }

    #[test]
    fn strings_encode_as_codes() {
        let c = encode_values(
            DataType::Str,
            &[
                Value::str("a"),
                Value::str("b"),
                Value::str("a"),
                Value::Null,
            ],
        );
        assert_eq!(c.keys[0], c.keys[2]);
        assert_ne!(c.keys[0], c.keys[1]);
        assert!(c.is_null(3));
    }

    #[test]
    fn bools_encode_distinctly() {
        let c = encode_values(
            DataType::Bool,
            &[Value::Bool(false), Value::Bool(true), Value::Null],
        );
        assert_eq!(c.keys, vec![0, 1, BOOL_NULL]);
    }
}
