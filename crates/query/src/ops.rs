//! Relational operators: filter, project, derive.

use crate::error::QueryError;
use crate::expr::Expr;
use crate::table::Table;

/// Rows of `table` where `predicate` evaluates to `true` (null does not
/// select).
pub fn filter(table: &Table, predicate: &Expr) -> Result<Table, QueryError> {
    filter_cancel(table, predicate, None)
}

/// [`filter`] with cooperative cancellation checked at block boundaries
/// of the predicate scan ([`QueryError::Cancelled`] once set).
pub fn filter_cancel(
    table: &Table,
    predicate: &Expr,
    cancel: Option<&crate::cancel::CancelToken>,
) -> Result<Table, QueryError> {
    let mask = predicate.eval_mask_cancel(table, cancel)?;
    Ok(table.filter_rows(&mask))
}

/// Only the named columns, in order.
pub fn project(table: &Table, columns: &[&str]) -> Result<Table, QueryError> {
    table.project(columns)
}

/// `table` plus a derived column computed from an expression.
pub fn derive(table: Table, name: &str, expr: &Expr) -> Result<Table, QueryError> {
    let col = expr.eval_column(&table)?;
    table.with_column(name, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::expr::{col, lit};
    use crate::value::Value;

    fn table() -> Table {
        let mut t = Table::new(vec![("a", DataType::Int), ("b", DataType::Int)]);
        for i in 0..10 {
            t.push_row(vec![Value::Int(i), Value::Int(i * i)]).unwrap();
        }
        t
    }

    #[test]
    fn filter_selects_matching_rows() {
        let t = table();
        let f = filter(&t, &col("a").ge(lit(7i64))).unwrap();
        assert_eq!(f.num_rows(), 3);
        assert_eq!(f.value(0, "a").unwrap(), Value::Int(7));
    }

    #[test]
    fn filter_with_compound_predicate() {
        let t = table();
        let p = col("a").ge(lit(2i64)).and(col("b").lt(lit(50i64)));
        let f = filter(&t, &p).unwrap();
        assert_eq!(f.num_rows(), 6); // a in 2..=7 (b = 49 at a = 7)
    }

    #[test]
    fn derive_adds_computed_column() {
        let t = derive(table(), "sum", &col("a").add(col("b"))).unwrap();
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value(3, "sum").unwrap(), Value::Int(12));
    }

    #[test]
    fn project_picks_columns() {
        let t = table();
        let p = project(&t, &["b"]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.num_rows(), 10);
    }

    #[test]
    fn errors_surface() {
        let t = table();
        assert!(filter(&t, &col("missing").gt(lit(0i64))).is_err());
        assert!(project(&t, &["missing"]).is_err());
    }
}
