//! Typed columnar storage.

use crate::error::QueryError;
use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DataType {
    /// Lowercase type name.
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        }
    }
}

/// A nullable, typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` (out-of-range returns `Null`).
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v.get(row).copied().flatten().map_or(Value::Null, Value::Int),
            Column::Float(v) => v.get(row).copied().flatten().map_or(Value::Null, Value::Float),
            Column::Str(v) => v
                .get(row)
                .and_then(|o| o.clone())
                .map_or(Value::Null, Value::Str),
            Column::Bool(v) => v.get(row).copied().flatten().map_or(Value::Null, Value::Bool),
        }
    }

    /// Appends a value, checking its type against the column.
    ///
    /// Integers are accepted into float columns (widening); everything
    /// else must match exactly or be `Null`.
    pub fn push(&mut self, value: Value, column_name: &str) -> Result<(), QueryError> {
        let expected = self.data_type().name();
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (_, other) => {
                return Err(QueryError::TypeMismatch {
                    column: column_name.to_string(),
                    expected,
                    actual: format!("{other:?}"),
                });
            }
        }
        Ok(())
    }

    /// A new column containing only the rows selected by `mask` (same
    /// length as the column; `true` keeps).
    pub fn filter(&self, mask: &[bool]) -> Column {
        fn keep<T: Clone>(v: &[Option<T>], mask: &[bool]) -> Vec<Option<T>> {
            v.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::Int(v) => Column::Int(keep(v, mask)),
            Column::Float(v) => Column::Float(keep(v, mask)),
            Column::Str(v) => Column::Str(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
        }
    }

    /// A new column with rows rearranged to `indices` order.
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(v: &[Option<T>], idx: &[usize]) -> Vec<Option<T>> {
            idx.iter().map(|&i| v.get(i).cloned().flatten()).collect()
        }
        match self {
            Column::Int(v) => Column::Int(gather(v, indices)),
            Column::Float(v) => Column::Float(gather(v, indices)),
            Column::Str(v) => Column::Str(gather(v, indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
        }
    }

    /// Iterates the column as [`Value`]s.
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// All non-null values as `f64` (ints widened); `None` for non-numeric
    /// columns.
    pub fn numeric_values(&self) -> Option<Vec<f64>> {
        match self {
            Column::Int(v) => Some(v.iter().flatten().map(|&x| x as f64).collect()),
            Column::Float(v) => Some(v.iter().flatten().copied().collect()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(1.5), "x").unwrap();
        c.push(Value::Int(2), "x").unwrap(); // widening
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Float(2.0));
        assert_eq!(c.get(2), Value::Null);
        assert_eq!(c.get(99), Value::Null);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int);
        assert!(c.push(Value::str("nope"), "x").is_err());
        assert!(c.push(Value::Float(1.0), "x").is_err()); // no narrowing
    }

    #[test]
    fn filter_and_take() {
        let mut c = Column::empty(DataType::Int);
        for i in 0..5 {
            c.push(Value::Int(i), "x").unwrap();
        }
        let f = c.filter(&[true, false, true, false, true]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(2), Value::Int(4));
        let t = c.take(&[4, 0]);
        assert_eq!(t.get(0), Value::Int(4));
        assert_eq!(t.get(1), Value::Int(0));
    }

    #[test]
    fn numeric_values_skip_nulls() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(1.0), "x").unwrap();
        c.push(Value::Null, "x").unwrap();
        c.push(Value::Float(3.0), "x").unwrap();
        assert_eq!(c.numeric_values(), Some(vec![1.0, 3.0]));
        let s = Column::empty(DataType::Str);
        assert_eq!(s.numeric_values(), None);
    }

    #[test]
    fn iter_values() {
        let mut c = Column::empty(DataType::Bool);
        c.push(Value::Bool(true), "x").unwrap();
        c.push(Value::Bool(false), "x").unwrap();
        let vs: Vec<Value> = c.iter_values().collect();
        assert_eq!(vs, vec![Value::Bool(true), Value::Bool(false)]);
    }
}
