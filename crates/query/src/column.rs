//! Typed columnar storage.

use crate::dict::StrVec;
use crate::error::QueryError;
use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DataType {
    /// Lowercase type name.
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        }
    }
}

/// A nullable, typed column of values.
///
/// Strings are dictionary-encoded ([`StrVec`]): each distinct string is
/// stored once in a shared pool and rows hold dense `u32` codes, so the
/// relational operators compare integers rather than cloned `String`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column (dictionary-encoded).
    Str(StrVec),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(StrVec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// An empty column with room for `n` rows.
    pub fn with_capacity(dt: DataType, n: usize) -> Column {
        match dt {
            DataType::Int => Column::Int(Vec::with_capacity(n)),
            DataType::Float => Column::Float(Vec::with_capacity(n)),
            DataType::Str => Column::Str(StrVec::with_capacity(n)),
            DataType::Bool => Column::Bool(Vec::with_capacity(n)),
        }
    }

    /// Reserves room for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Int(v) => v.reserve(additional),
            Column::Float(v) => v.reserve(additional),
            Column::Str(v) => v.reserve(additional),
            Column::Bool(v) => v.reserve(additional),
        }
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` (out-of-range returns `Null`).
    ///
    /// This is the boundary where dictionary codes become owned
    /// [`Value::Str`]s; hot paths inside the engine use the typed
    /// accessors ([`Column::f64_at`], [`Column::str_vec`], …) instead.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v
                .get(row)
                .copied()
                .flatten()
                .map_or(Value::Null, Value::Int),
            Column::Float(v) => v
                .get(row)
                .copied()
                .flatten()
                .map_or(Value::Null, Value::Float),
            Column::Str(v) => v
                .get(row)
                .map_or(Value::Null, |s| Value::Str(s.to_string())),
            Column::Bool(v) => v
                .get(row)
                .copied()
                .flatten()
                .map_or(Value::Null, Value::Bool),
        }
    }

    /// Numeric view of one cell: ints widen to `f64`; `None` for nulls
    /// and non-numeric columns. No `Value` is materialized.
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v.get(row).copied().flatten().map(|x| x as f64),
            Column::Float(v) => v.get(row).copied().flatten(),
            _ => None,
        }
    }

    /// True when the cell is null (out-of-range counts as null).
    #[inline]
    pub fn is_null_at(&self, row: usize) -> bool {
        match self {
            Column::Int(v) => v.get(row).copied().flatten().is_none(),
            Column::Float(v) => v.get(row).copied().flatten().is_none(),
            Column::Str(v) => v.get(row).is_none(),
            Column::Bool(v) => v.get(row).copied().flatten().is_none(),
        }
    }

    /// The dictionary-encoded string storage, for string columns.
    pub fn str_vec(&self) -> Option<&StrVec> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The raw integer cells, for int columns.
    pub fn int_slice(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The raw float cells, for float columns.
    pub fn float_slice(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The raw boolean cells, for bool columns.
    pub fn bool_slice(&self) -> Option<&[Option<bool>]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Appends a value, checking its type against the column.
    ///
    /// Integers are accepted into float columns (widening); everything
    /// else must match exactly or be `Null`.
    pub fn push(&mut self, value: Value, column_name: &str) -> Result<(), QueryError> {
        let expected = self.data_type().name();
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(&x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (_, other) => {
                return Err(QueryError::TypeMismatch {
                    column: column_name.to_string(),
                    expected,
                    actual: format!("{other:?}"),
                });
            }
        }
        Ok(())
    }

    /// A new column containing only the rows selected by `mask` (same
    /// length as the column; `true` keeps). Allocation is sized exactly
    /// from the mask's population count.
    pub fn filter(&self, mask: &[bool]) -> Column {
        fn keep<T: Copy>(v: &[Option<T>], mask: &[bool]) -> Vec<Option<T>> {
            let kept = mask.iter().filter(|&&m| m).count();
            let mut out = Vec::with_capacity(kept);
            out.extend(v.iter().zip(mask).filter(|(_, &m)| m).map(|(&x, _)| x));
            out
        }
        match self {
            Column::Int(v) => Column::Int(keep(v, mask)),
            Column::Float(v) => Column::Float(keep(v, mask)),
            Column::Str(v) => Column::Str(v.filter(mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
        }
    }

    /// A new column with rows rearranged to `indices` order
    /// (out-of-range indices become null).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Copy>(v: &[Option<T>], idx: &[usize]) -> Vec<Option<T>> {
            let mut out = Vec::with_capacity(idx.len());
            out.extend(idx.iter().map(|&i| v.get(i).copied().flatten()));
            out
        }
        match self {
            Column::Int(v) => Column::Int(gather(v, indices)),
            Column::Float(v) => Column::Float(gather(v, indices)),
            Column::Str(v) => Column::Str(v.take(indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
        }
    }

    /// Iterates the column as [`Value`]s.
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// All non-null values as `f64` (ints widened); `None` for non-numeric
    /// columns.
    pub fn numeric_values(&self) -> Option<Vec<f64>> {
        match self {
            Column::Int(v) => Some(v.iter().flatten().map(|&x| x as f64).collect()),
            Column::Float(v) => Some(v.iter().flatten().copied().collect()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(1.5), "x").unwrap();
        c.push(Value::Int(2), "x").unwrap(); // widening
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Float(2.0));
        assert_eq!(c.get(2), Value::Null);
        assert_eq!(c.get(99), Value::Null);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int);
        assert!(c.push(Value::str("nope"), "x").is_err());
        assert!(c.push(Value::Float(1.0), "x").is_err()); // no narrowing
    }

    #[test]
    fn filter_and_take() {
        let mut c = Column::empty(DataType::Int);
        for i in 0..5 {
            c.push(Value::Int(i), "x").unwrap();
        }
        let f = c.filter(&[true, false, true, false, true]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(2), Value::Int(4));
        let t = c.take(&[4, 0]);
        assert_eq!(t.get(0), Value::Int(4));
        assert_eq!(t.get(1), Value::Int(0));
    }

    #[test]
    fn string_columns_dictionary_encode() {
        let mut c = Column::empty(DataType::Str);
        for s in ["prod", "beb", "prod", "prod"] {
            c.push(Value::str(s), "tier").unwrap();
        }
        c.push(Value::Null, "tier").unwrap();
        let sv = c.str_vec().unwrap();
        assert_eq!(sv.dict_len(), 2); // two distinct strings despite 4 rows
        assert_eq!(sv.code(0), sv.code(2));
        assert_eq!(c.get(0), Value::str("prod"));
        assert_eq!(c.get(4), Value::Null);
        // Filter shares the pool instead of cloning strings.
        let f = c.filter(&[true, true, false, false, true]);
        assert_eq!(f.str_vec().unwrap().get(0), Some("prod"));
        assert!(f.str_vec().unwrap().same_dict(sv));
    }

    #[test]
    fn typed_accessors() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(3), "x").unwrap();
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.f64_at(0), Some(3.0));
        assert_eq!(c.f64_at(1), None);
        assert!(!c.is_null_at(0));
        assert!(c.is_null_at(1));
        assert!(c.is_null_at(7));
        assert!(c.str_vec().is_none());
        assert_eq!(c.int_slice().unwrap().len(), 2);
    }

    #[test]
    fn numeric_values_skip_nulls() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(1.0), "x").unwrap();
        c.push(Value::Null, "x").unwrap();
        c.push(Value::Float(3.0), "x").unwrap();
        assert_eq!(c.numeric_values(), Some(vec![1.0, 3.0]));
        let s = Column::empty(DataType::Str);
        assert_eq!(s.numeric_values(), None);
    }

    #[test]
    fn iter_values() {
        let mut c = Column::empty(DataType::Bool);
        c.push(Value::Bool(true), "x").unwrap();
        c.push(Value::Bool(false), "x").unwrap();
        let vs: Vec<Value> = c.iter_values().collect();
        assert_eq!(vs, vec![Value::Bool(true), Value::Bool(false)]);
    }
}
