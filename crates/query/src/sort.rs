//! Sorting, decorate-sort-undecorate style.
//!
//! Instead of comparing [`crate::value::Value`]s (which clones strings
//! and re-dispatches on type for every comparison), each sort key column
//! is encoded **once** into a vector of order-preserving `u128` keys:
//!
//! * nulls encode as `0`, so they sort first ascending — as before;
//! * ints use the classic sign-flip trick, floats the IEEE-754
//!   order-bits trick (`-0.0` normalized to `+0.0` so they tie, NaN
//!   canonicalized to sort after `+inf`);
//! * strings decorate with their dictionary value's lexicographic rank,
//!   so string comparisons become integer comparisons;
//! * descending keys are bitwise-complemented, which reverses the whole
//!   order (nulls last — as before).
//!
//! The sort itself is an unstable index sort with the original row index
//! as the final tiebreak, which is equivalent to a stable sort.

use crate::column::Column;
use crate::error::QueryError;
use crate::keys::num_key;
use crate::table::Table;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first (nulls first).
    Ascending,
    /// Largest first (nulls last).
    Descending,
}

/// Monotone `u64` image of a non-null numeric value: preserves `<` on
/// the widened `f64` (with `-0.0` tied to `+0.0`, NaN after `+inf`).
#[inline]
fn order_bits(f: f64) -> u64 {
    let bits = if f.is_nan() {
        f64::NAN.to_bits() // one canonical NaN, whatever its source payload
    } else {
        num_key(f) // normalizes -0.0 so the two zeros tie
    };
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Order-preserving `u128` image of one cell: null < every non-null.
#[inline]
fn decorate(non_null_key: Option<u64>) -> u128 {
    match non_null_key {
        None => 0,
        Some(k) => (1u128 << 64) | k as u128,
    }
}

/// Encodes a whole column into per-row sort keys for `order`.
fn sort_keys(col: &Column, order: SortOrder) -> Vec<u128> {
    let mut keys: Vec<u128> = match col {
        Column::Int(v) => v
            .iter()
            .map(|c| decorate(c.map(|x| (x as u64) ^ (1 << 63))))
            .collect(),
        Column::Float(v) => v.iter().map(|c| decorate(c.map(order_bits))).collect(),
        Column::Str(v) => {
            let ranks = v.lex_ranks();
            v.codes()
                .iter()
                .map(|&code| {
                    decorate((code != crate::dict::NULL_CODE).then(|| ranks[code as usize] as u64))
                })
                .collect()
        }
        Column::Bool(v) => v.iter().map(|c| decorate(c.map(|b| b as u64))).collect(),
    };
    if order == SortOrder::Descending {
        for k in &mut keys {
            *k = !*k;
        }
    }
    keys
}

/// Stable sort of `table` by a sequence of `(column, order)` keys, with
/// earlier keys taking precedence.
pub fn sort_by(table: &Table, keys: &[(&str, SortOrder)]) -> Result<Table, QueryError> {
    let decorated: Vec<Vec<u128>> = keys
        .iter()
        .map(|(name, order)| table.column(name).map(|c| sort_keys(c, *order)))
        .collect::<Result<_, _>>()?;
    let mut indices: Vec<u32> = (0..crate::cast::code32(table.num_rows())).collect();
    indices.sort_unstable_by(|&a, &b| {
        for keys in &decorated {
            let ord = keys[a as usize].cmp(&keys[b as usize]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b) // original position: stability without a stable sort
    });
    let indices: Vec<usize> = indices.into_iter().map(|i| i as usize).collect();
    Ok(table.take_rows(&indices))
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;

    fn table() -> Table {
        let mut t = Table::new(vec![("k", DataType::Str), ("v", DataType::Int)]);
        for (k, v) in [("b", 2), ("a", 3), ("b", 1), ("a", 1)] {
            t.push_row(vec![Value::str(k), Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn single_key_ascending() {
        let out = sort_by(&table(), &[("v", SortOrder::Ascending)]).unwrap();
        let vs: Vec<Value> = (0..4).map(|r| out.value(r, "v").unwrap()).collect();
        assert_eq!(
            vs,
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn multi_key() {
        let out = sort_by(
            &table(),
            &[("k", SortOrder::Ascending), ("v", SortOrder::Descending)],
        )
        .unwrap();
        assert_eq!(out.value(0, "k").unwrap(), Value::str("a"));
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(2, "k").unwrap(), Value::str("b"));
        assert_eq!(out.value(2, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn stability() {
        // Equal keys preserve input order.
        let out = sort_by(&table(), &[("k", SortOrder::Ascending)]).unwrap();
        // "a" rows were (a,3) then (a,1) in input order.
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(1));
    }

    #[test]
    fn nulls_order() {
        let mut t = Table::new(vec![("v", DataType::Int)]);
        t.push_row(vec![Value::Int(5)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let asc = sort_by(&t, &[("v", SortOrder::Ascending)]).unwrap();
        assert!(asc.value(0, "v").unwrap().is_null());
        let desc = sort_by(&t, &[("v", SortOrder::Descending)]).unwrap();
        assert!(desc.value(2, "v").unwrap().is_null());
    }

    #[test]
    fn unknown_column() {
        assert!(sort_by(&table(), &[("missing", SortOrder::Ascending)]).is_err());
    }

    #[test]
    fn int_extremes_order_correctly() {
        let mut t = Table::new(vec![("v", DataType::Int)]);
        for v in [0, i64::MAX, i64::MIN, -1, 1, i64::MAX - 1, i64::MIN + 1] {
            t.push_row(vec![Value::Int(v)]).unwrap();
        }
        let out = sort_by(&t, &[("v", SortOrder::Ascending)]).unwrap();
        let vs: Vec<i64> = (0..7)
            .map(|r| out.value(r, "v").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(
            vs,
            vec![i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX]
        );
    }

    #[test]
    fn float_edge_values_order_correctly() {
        let mut t = Table::new(vec![("v", DataType::Float)]);
        for v in [
            1.0,
            f64::NEG_INFINITY,
            -0.0,
            f64::INFINITY,
            0.0,
            -1.5,
            f64::NAN,
        ] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let out = sort_by(&t, &[("v", SortOrder::Ascending)]).unwrap();
        let vs: Vec<f64> = (0..7)
            .map(|r| out.value(r, "v").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(vs[0], f64::NEG_INFINITY);
        assert_eq!(vs[1], -1.5);
        // -0.0 and 0.0 tie; stability keeps input order (-0.0 first).
        assert!(vs[2] == 0.0 && vs[2].is_sign_negative());
        assert!(vs[3] == 0.0 && !vs[3].is_sign_negative());
        assert_eq!(vs[4], 1.0);
        assert_eq!(vs[5], f64::INFINITY);
        assert!(vs[6].is_nan(), "NaN sorts after +inf");
    }

    #[test]
    fn string_sort_uses_lexicographic_order() {
        let mut t = Table::new(vec![("s", DataType::Str)]);
        for s in ["prod", "beb", "free", "mid"] {
            t.push_row(vec![Value::str(s)]).unwrap();
        }
        t.push_row(vec![Value::Null]).unwrap();
        let out = sort_by(&t, &[("s", SortOrder::Descending)]).unwrap();
        assert_eq!(out.value(0, "s").unwrap(), Value::str("prod"));
        assert_eq!(out.value(3, "s").unwrap(), Value::str("beb"));
        assert!(out.value(4, "s").unwrap().is_null()); // nulls last descending
    }
}
