//! Sorting.

use crate::error::QueryError;
use crate::table::Table;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first (nulls first).
    Ascending,
    /// Largest first (nulls last).
    Descending,
}

/// Stable sort of `table` by a sequence of `(column, order)` keys, with
/// earlier keys taking precedence.
pub fn sort_by(table: &Table, keys: &[(&str, SortOrder)]) -> Result<Table, QueryError> {
    let cols: Vec<_> = keys
        .iter()
        .map(|(name, order)| table.column(name).map(|c| (c, *order)))
        .collect::<Result<_, _>>()?;
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (col, order) in &cols {
            let va = col.get(a);
            let vb = col.get(b);
            let ord = va.sort_key_cmp(&vb);
            let ord = match order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(table.take_rows(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;

    fn table() -> Table {
        let mut t = Table::new(vec![("k", DataType::Str), ("v", DataType::Int)]);
        for (k, v) in [("b", 2), ("a", 3), ("b", 1), ("a", 1)] {
            t.push_row(vec![Value::str(k), Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn single_key_ascending() {
        let out = sort_by(&table(), &[("v", SortOrder::Ascending)]).unwrap();
        let vs: Vec<Value> = (0..4).map(|r| out.value(r, "v").unwrap()).collect();
        assert_eq!(
            vs,
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn multi_key() {
        let out = sort_by(
            &table(),
            &[("k", SortOrder::Ascending), ("v", SortOrder::Descending)],
        )
        .unwrap();
        assert_eq!(out.value(0, "k").unwrap(), Value::str("a"));
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(2, "k").unwrap(), Value::str("b"));
        assert_eq!(out.value(2, "v").unwrap(), Value::Int(2));
    }

    #[test]
    fn stability() {
        // Equal keys preserve input order.
        let out = sort_by(&table(), &[("k", SortOrder::Ascending)]).unwrap();
        // "a" rows were (a,3) then (a,1) in input order.
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "v").unwrap(), Value::Int(1));
    }

    #[test]
    fn nulls_order() {
        let mut t = Table::new(vec![("v", DataType::Int)]);
        t.push_row(vec![Value::Int(5)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let asc = sort_by(&t, &[("v", SortOrder::Ascending)]).unwrap();
        assert!(asc.value(0, "v").unwrap().is_null());
        let desc = sort_by(&t, &[("v", SortOrder::Descending)]).unwrap();
        assert!(desc.value(2, "v").unwrap().is_null());
    }

    #[test]
    fn unknown_column() {
        assert!(sort_by(&table(), &[("missing", SortOrder::Ascending)]).is_err());
    }
}
