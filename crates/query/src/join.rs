//! Hash joins over encoded keys.
//!
//! Keys are encoded once per column into flat `u64` vectors
//! ([`crate::keys`]); the build and probe loops then hash fixed-width
//! `[u64]` row keys with FxHash — no `Value`s and no cloned `String`s.
//! For string key pairs, the right column's dictionary codes are
//! remapped into the left column's dictionary up front, so the probe
//! compares integer codes directly; right strings absent from the left
//! pool get a sentinel no left row can produce.
//!
//! Output assembly is `take`-based: string columns share their
//! dictionary with the input instead of cloning row values.

use crate::column::{Column, DataType};
use crate::dict::NULL_CODE;
use crate::error::QueryError;
use crate::fxhash::FxHashMap;
use crate::keys::{encode_column, EncodedCol, STR_NULL};
use crate::table::Table;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching row pairs.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    LeftOuter,
}

/// Key-type compatibility: pairs outside one class can never be equal
/// (ints and floats compare numerically, as in `Value::compare`).
fn compatible(l: DataType, r: DataType) -> bool {
    let class = |dt: DataType| match dt {
        DataType::Int | DataType::Float => 0u8,
        DataType::Str => 1,
        DataType::Bool => 2,
    };
    class(l) == class(r)
}

/// Encodes a right-side key column into the left column's key space.
fn encode_right(lcol: &Column, rcol: &Column) -> EncodedCol {
    match (lcol, rcol) {
        (Column::Str(l), Column::Str(r)) => {
            // Strings absent from the left pool can never match a probe;
            // give them per-code sentinels above every valid left key.
            let map = r.code_mapping_into(l);
            let keys = r
                .codes()
                .iter()
                .map(|&c| {
                    if c == NULL_CODE {
                        STR_NULL
                    } else {
                        map[c as usize].map_or((1u64 << 32) | c as u64, |lc| lc as u64)
                    }
                })
                .collect();
            EncodedCol {
                keys,
                null_key: STR_NULL,
            }
        }
        _ => encode_column(rcol),
    }
}

/// Hash-joins `left` and `right` on equality of the given key columns
/// (pairwise: `left_keys[i] == right_keys[i]`). Null keys never match,
/// SQL-style. Right-side key columns are dropped from the output;
/// remaining right columns that clash with a left name get a `right_`
/// prefix.
pub fn join(
    left: &Table,
    right: &Table,
    left_keys: &[&str],
    right_keys: &[&str],
    kind: JoinKind,
) -> Result<Table, QueryError> {
    if left_keys.len() != right_keys.len() {
        return Err(QueryError::InvalidParameter(format!(
            "join key arity {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let lcols: Vec<&Column> = left_keys
        .iter()
        .map(|k| left.column(k))
        .collect::<Result<_, _>>()?;
    let rcols: Vec<&Column> = right_keys
        .iter()
        .map(|k| right.column(k))
        .collect::<Result<_, _>>()?;

    // Pairs from different type classes can never match; with an empty
    // index every probe misses, which reproduces the old row-at-a-time
    // semantics (inner: no rows; left outer: every left row unmatched).
    let matchable = lcols
        .iter()
        .zip(&rcols)
        .all(|(l, r)| compatible(l.data_type(), r.data_type()));

    let lkeys: Vec<EncodedCol> = lcols.iter().map(|c| encode_column(c)).collect();
    let rkeys: Vec<EncodedCol> = lcols
        .iter()
        .zip(&rcols)
        .map(|(l, r)| encode_right(l, r))
        .collect();

    // Build the hash table over the right side (null keys never match).
    let mut index: FxHashMap<Box<[u64]>, Vec<u32>> = FxHashMap::default();
    let mut key_buf = vec![0u64; rkeys.len()];
    if matchable {
        'rows: for row in 0..right.num_rows() {
            for (slot, e) in key_buf.iter_mut().zip(&rkeys) {
                if e.is_null(row) {
                    continue 'rows;
                }
                *slot = e.keys[row];
            }
            match index.get_mut(key_buf.as_slice()) {
                Some(rows) => rows.push(crate::cast::code32(row)),
                None => {
                    index.insert(key_buf.as_slice().into(), vec![crate::cast::code32(row)]);
                }
            }
        }
    }

    // Probe with the left side, in left row order.
    let mut left_rows: Vec<usize> = Vec::with_capacity(left.num_rows());
    let mut right_indices: Vec<usize> = Vec::with_capacity(left.num_rows());
    // Out-of-range marker: `Column::take` turns it into null.
    let missing = right.num_rows();
    let mut key_buf = vec![0u64; lkeys.len()];
    'probe: for row in 0..left.num_rows() {
        for (slot, e) in key_buf.iter_mut().zip(&lkeys) {
            if e.is_null(row) {
                if kind == JoinKind::LeftOuter {
                    left_rows.push(row);
                    right_indices.push(missing);
                }
                continue 'probe;
            }
            *slot = e.keys[row];
        }
        match index.get(key_buf.as_slice()) {
            Some(matches) => {
                for &r in matches {
                    left_rows.push(row);
                    right_indices.push(r as usize);
                }
            }
            None => {
                if kind == JoinKind::LeftOuter {
                    left_rows.push(row);
                    right_indices.push(missing);
                }
            }
        }
    }

    // Materialize output columns; `take` shares string dictionaries, so
    // no cell values are cloned here.
    let mut out_cols: Vec<(String, Column)> =
        Vec::with_capacity(left.num_columns() + right.num_columns());
    for name in left.column_names() {
        // lint: library-panic-ok (name came from this table's own column list) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
        let col = left.column(name).expect("own column");
        out_cols.push((name.clone(), col.take(&left_rows)));
    }
    for name in right.column_names() {
        if right_keys.contains(&name.as_str()) {
            continue;
        }
        // lint: library-panic-ok (name came from this table's own column list) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
        let col = right.column(name).expect("own column");
        let out_name = if left.column_names().contains(name) {
            format!("right_{name}")
        } else {
            name.clone()
        };
        out_cols.push((out_name, col.take(&right_indices)));
    }
    Table::from_columns(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;

    fn jobs() -> Table {
        let mut t = Table::new(vec![("job", DataType::Int), ("tier", DataType::Str)]);
        for (j, tier) in [(1, "prod"), (2, "beb"), (3, "free")] {
            t.push_row(vec![Value::Int(j), Value::str(tier)]).unwrap();
        }
        t
    }

    fn tasks() -> Table {
        let mut t = Table::new(vec![("job", DataType::Int), ("cpu", DataType::Float)]);
        for (j, cpu) in [(1, 0.5), (1, 0.7), (2, 0.1), (9, 0.9)] {
            t.push_row(vec![Value::Int(j), Value::Float(cpu)]).unwrap();
        }
        t
    }

    #[test]
    fn inner_join_matches() {
        let out = join(&jobs(), &tasks(), &["job"], &["job"], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3); // job 1 × 2, job 2 × 1
        assert_eq!(out.value(0, "tier").unwrap(), Value::str("prod"));
        assert_eq!(out.value(0, "cpu").unwrap(), Value::Float(0.5));
        assert_eq!(out.value(2, "tier").unwrap(), Value::str("beb"));
    }

    #[test]
    fn left_outer_keeps_unmatched() {
        let out = join(&jobs(), &tasks(), &["job"], &["job"], JoinKind::LeftOuter).unwrap();
        assert_eq!(out.num_rows(), 4); // free job 3 kept with null cpu
        let last = out.num_rows() - 1;
        assert_eq!(out.value(last, "job").unwrap(), Value::Int(3));
        assert!(out.value(last, "cpu").unwrap().is_null());
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = Table::new(vec![("k", DataType::Int)]);
        l.push_row(vec![Value::Null]).unwrap();
        let mut r = Table::new(vec![("k", DataType::Int), ("v", DataType::Int)]);
        r.push_row(vec![Value::Null, Value::Int(1)]).unwrap();
        let inner = join(&l, &r, &["k"], &["k"], JoinKind::Inner).unwrap();
        assert_eq!(inner.num_rows(), 0);
        let outer = join(&l, &r, &["k"], &["k"], JoinKind::LeftOuter).unwrap();
        assert_eq!(outer.num_rows(), 1);
        assert!(outer.value(0, "v").unwrap().is_null());
    }

    #[test]
    fn name_clash_prefixed() {
        let mut r = Table::new(vec![("job", DataType::Int), ("tier", DataType::Str)]);
        r.push_row(vec![Value::Int(1), Value::str("x")]).unwrap();
        let out = join(&jobs(), &r, &["job"], &["job"], JoinKind::Inner).unwrap();
        assert!(out.column_names().contains(&"right_tier".to_string()));
    }

    #[test]
    fn key_arity_checked() {
        assert!(join(&jobs(), &tasks(), &["job"], &[], JoinKind::Inner).is_err());
    }

    #[test]
    fn string_keys_join_across_dictionaries() {
        // Right table interns strings in a different order (different
        // codes); join must still match on string value.
        let mut r = Table::new(vec![("tier", DataType::Str), ("w", DataType::Float)]);
        for (t, w) in [("free", 0.0), ("unknown", 9.0), ("prod", 1.0)] {
            r.push_row(vec![Value::str(t), Value::Float(w)]).unwrap();
        }
        let out = join(&jobs(), &r, &["tier"], &["tier"], JoinKind::LeftOuter).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "w").unwrap(), Value::Float(1.0)); // prod
        assert!(out.value(1, "w").unwrap().is_null()); // beb unmatched
        assert_eq!(out.value(2, "w").unwrap(), Value::Float(0.0)); // free
    }

    #[test]
    fn int_and_float_keys_compare_numerically() {
        let mut l = Table::new(vec![("k", DataType::Int)]);
        l.push_row(vec![Value::Int(2)]).unwrap();
        let mut r = Table::new(vec![("k", DataType::Float), ("v", DataType::Int)]);
        r.push_row(vec![Value::Float(2.0), Value::Int(7)]).unwrap();
        let out = join(&l, &r, &["k"], &["k"], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(7));
    }

    #[test]
    fn incompatible_key_types_never_match() {
        let mut l = Table::new(vec![("k", DataType::Int)]);
        l.push_row(vec![Value::Int(1)]).unwrap();
        let mut r = Table::new(vec![("k", DataType::Bool), ("v", DataType::Int)]);
        r.push_row(vec![Value::Bool(true), Value::Int(7)]).unwrap();
        let inner = join(&l, &r, &["k"], &["k"], JoinKind::Inner).unwrap();
        assert_eq!(inner.num_rows(), 0);
        let outer = join(&l, &r, &["k"], &["k"], JoinKind::LeftOuter).unwrap();
        assert_eq!(outer.num_rows(), 1);
        assert!(outer.value(0, "v").unwrap().is_null());
    }
}
