//! Hash joins.

use crate::error::QueryError;
use crate::table::Table;
use crate::value::GroupKey;
use std::collections::HashMap;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching row pairs.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    LeftOuter,
}

/// Hash-joins `left` and `right` on equality of the given key columns
/// (pairwise: `left_keys[i] == right_keys[i]`). Null keys never match,
/// SQL-style. Right-side key columns are dropped from the output;
/// remaining right columns that clash with a left name get a `right_`
/// prefix.
pub fn join(
    left: &Table,
    right: &Table,
    left_keys: &[&str],
    right_keys: &[&str],
    kind: JoinKind,
) -> Result<Table, QueryError> {
    if left_keys.len() != right_keys.len() {
        return Err(QueryError::InvalidParameter(format!(
            "join key arity {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let lcols: Vec<_> = left_keys
        .iter()
        .map(|k| left.column(k))
        .collect::<Result<_, _>>()?;
    let rcols: Vec<_> = right_keys
        .iter()
        .map(|k| right.column(k))
        .collect::<Result<_, _>>()?;

    // Build the hash table over the right side.
    let mut index: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    'rows: for row in 0..right.num_rows() {
        let mut key = Vec::with_capacity(rcols.len());
        for c in &rcols {
            let v = c.get(row);
            if v.is_null() {
                continue 'rows; // null keys never match
            }
            key.push(v.group_key());
        }
        index.entry(key).or_default().push(row);
    }

    // Probe with the left side.
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    'probe: for row in 0..left.num_rows() {
        let mut key = Vec::with_capacity(lcols.len());
        for c in &lcols {
            let v = c.get(row);
            if v.is_null() {
                if kind == JoinKind::LeftOuter {
                    left_rows.push(row);
                    right_rows.push(None);
                }
                continue 'probe;
            }
            key.push(v.group_key());
        }
        match index.get(&key) {
            Some(matches) => {
                for &r in matches {
                    left_rows.push(row);
                    right_rows.push(Some(r));
                }
            }
            None => {
                if kind == JoinKind::LeftOuter {
                    left_rows.push(row);
                    right_rows.push(None);
                }
            }
        }
    }

    // Materialize output columns.
    let mut out_cols: Vec<(String, crate::column::Column)> = Vec::new();
    for name in left.column_names() {
        let col = left.column(name).expect("own column");
        out_cols.push((name.clone(), col.take(&left_rows)));
    }
    let left_names: std::collections::HashSet<&String> = left.column_names().iter().collect();
    // For right columns, a take with "missing" markers: map None to an
    // out-of-range index, which Column::take turns into null.
    let sentinel = right.num_rows();
    let right_indices: Vec<usize> = right_rows
        .iter()
        .map(|r| r.unwrap_or(sentinel))
        .collect();
    for name in right.column_names() {
        if right_keys.contains(&name.as_str()) {
            continue;
        }
        let col = right.column(name).expect("own column");
        let out_name = if left_names.contains(name) {
            format!("right_{name}")
        } else {
            name.clone()
        };
        out_cols.push((out_name, col.take(&right_indices)));
    }
    Table::from_columns(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;

    fn jobs() -> Table {
        let mut t = Table::new(vec![("job", DataType::Int), ("tier", DataType::Str)]);
        for (j, tier) in [(1, "prod"), (2, "beb"), (3, "free")] {
            t.push_row(vec![Value::Int(j), Value::str(tier)]).unwrap();
        }
        t
    }

    fn tasks() -> Table {
        let mut t = Table::new(vec![("job", DataType::Int), ("cpu", DataType::Float)]);
        for (j, cpu) in [(1, 0.5), (1, 0.7), (2, 0.1), (9, 0.9)] {
            t.push_row(vec![Value::Int(j), Value::Float(cpu)]).unwrap();
        }
        t
    }

    #[test]
    fn inner_join_matches() {
        let out = join(&jobs(), &tasks(), &["job"], &["job"], JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3); // job 1 × 2, job 2 × 1
        assert_eq!(out.value(0, "tier").unwrap(), Value::str("prod"));
        assert_eq!(out.value(0, "cpu").unwrap(), Value::Float(0.5));
        assert_eq!(out.value(2, "tier").unwrap(), Value::str("beb"));
    }

    #[test]
    fn left_outer_keeps_unmatched() {
        let out = join(&jobs(), &tasks(), &["job"], &["job"], JoinKind::LeftOuter).unwrap();
        assert_eq!(out.num_rows(), 4); // free job 3 kept with null cpu
        let last = out.num_rows() - 1;
        assert_eq!(out.value(last, "job").unwrap(), Value::Int(3));
        assert!(out.value(last, "cpu").unwrap().is_null());
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = Table::new(vec![("k", DataType::Int)]);
        l.push_row(vec![Value::Null]).unwrap();
        let mut r = Table::new(vec![("k", DataType::Int), ("v", DataType::Int)]);
        r.push_row(vec![Value::Null, Value::Int(1)]).unwrap();
        let inner = join(&l, &r, &["k"], &["k"], JoinKind::Inner).unwrap();
        assert_eq!(inner.num_rows(), 0);
        let outer = join(&l, &r, &["k"], &["k"], JoinKind::LeftOuter).unwrap();
        assert_eq!(outer.num_rows(), 1);
        assert!(outer.value(0, "v").unwrap().is_null());
    }

    #[test]
    fn name_clash_prefixed() {
        let mut r = Table::new(vec![("job", DataType::Int), ("tier", DataType::Str)]);
        r.push_row(vec![Value::Int(1), Value::str("x")]).unwrap();
        let out = join(&jobs(), &r, &["job"], &["job"], JoinKind::Inner).unwrap();
        assert!(out.column_names().contains(&"right_tier".to_string()));
    }

    #[test]
    fn key_arity_checked() {
        assert!(join(&jobs(), &tasks(), &["job"], &[], JoinKind::Inner).is_err());
    }
}
