//! Expression AST and evaluation.
//!
//! Expressions reference columns, combine them with arithmetic, compare
//! them, and connect predicates with boolean logic — the `WHERE`-clause
//! subset the paper's queries need. Nulls propagate SQL-style: any
//! operation on a null yields null, and a null predicate does not select
//! the row.

use crate::column::Column;
use crate::error::QueryError;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean negation.
    Not(Box<Expr>),
    /// True when the operand is null.
    IsNull(Box<Expr>),
    /// Floors a numeric operand to a multiple of a positive width —
    /// SQL-style bucketing (`bucket(time, 3600)` groups into hours).
    Bucket {
        /// The numeric operand.
        inner: Box<Expr>,
        /// Bucket width (must be positive).
        width: f64,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float; division by zero yields null).
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Literal(value.into())
}

macro_rules! binop_method {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        $(#[$doc])*
        pub fn $name(self, rhs: Expr) -> Expr {
            Expr::Binary {
                op: BinOp::$op,
                left: Box::new(self),
                right: Box::new(rhs),
            }
        }
    };
}

// The arithmetic method names intentionally mirror the `std::ops` traits:
// they build AST nodes rather than compute, like most query DSLs.
#[allow(clippy::should_implement_trait)]
impl Expr {
    binop_method!(/// `self + rhs`.
        add, Add);
    binop_method!(/// `self - rhs`.
        sub, Sub);
    binop_method!(/// `self * rhs`.
        mul, Mul);
    binop_method!(/// `self / rhs` (null on division by zero).
        div, Div);
    binop_method!(/// `self == rhs`.
        eq, Eq);
    binop_method!(/// `self != rhs`.
        ne, Ne);
    binop_method!(/// `self < rhs`.
        lt, Lt);
    binop_method!(/// `self <= rhs`.
        le, Le);
    binop_method!(/// `self > rhs`.
        gt, Gt);
    binop_method!(/// `self >= rhs`.
        ge, Ge);
    binop_method!(/// `self AND rhs`.
        and, And);
    binop_method!(/// `self OR rhs`.
        or, Or);

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// True when the expression evaluates to null.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Floors the (numeric) expression to a multiple of `width` — the
    /// bucketing idiom behind the paper's hourly aggregations (Figures
    /// 2/4/8/9) and Figure 13's 1-NCU-hour bins.
    pub fn bucket(self, width: f64) -> Expr {
        Expr::Bucket {
            inner: Box::new(self),
            width,
        }
    }

    /// Evaluates the expression for one row of a table.
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<Value, QueryError> {
        match self {
            Expr::Column(name) => table.value(row, name),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(inner) => match inner.eval_row(table, row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(QueryError::IncompatibleOperands {
                    op: "not",
                    detail: format!("{other:?}"),
                }),
            },
            Expr::IsNull(inner) => Ok(Value::Bool(inner.eval_row(table, row)?.is_null())),
            Expr::Bucket { inner, width } => {
                if width.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(QueryError::IncompatibleOperands {
                        op: "bucket",
                        detail: format!("non-positive width {width}"),
                    });
                }
                match inner.eval_row(table, row)? {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => {
                        let w = *width as i64;
                        if w >= 1 && (*width - w as f64).abs() < 1e-9 {
                            Ok(Value::Int(i.div_euclid(w) * w))
                        } else {
                            Ok(Value::Float((i as f64 / width).floor() * width))
                        }
                    }
                    Value::Float(x) => Ok(Value::Float((x / width).floor() * width)),
                    other => Err(QueryError::IncompatibleOperands {
                        op: "bucket",
                        detail: format!("{other:?}"),
                    }),
                }
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval_row(table, row)?;
                let r = right.eval_row(table, row)?;
                eval_binop(*op, l, r)
            }
        }
    }

    /// Evaluates the expression for every row, producing a column.
    pub fn eval(&self, table: &Table) -> Result<Vec<Value>, QueryError> {
        (0..table.num_rows())
            .map(|r| self.eval_row(table, r))
            .collect()
    }

    /// Evaluates the expression as a predicate mask: null ⇒ `false`.
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>, QueryError> {
        self.eval(table)?
            .into_iter()
            .map(|v| match v {
                Value::Bool(b) => Ok(b),
                Value::Null => Ok(false),
                other => Err(QueryError::IncompatibleOperands {
                    op: "filter",
                    detail: format!("predicate produced {other:?}"),
                }),
            })
            .collect()
    }

    /// Evaluates into a typed [`Column`] (type inferred from the first
    /// non-null value; all-null becomes a float column).
    pub fn eval_column(&self, table: &Table) -> Result<Column, QueryError> {
        let values = self.eval(table)?;
        let dt = values
            .iter()
            .find_map(|v| match v {
                Value::Int(_) => Some(crate::column::DataType::Int),
                Value::Float(_) => Some(crate::column::DataType::Float),
                Value::Str(_) => Some(crate::column::DataType::Str),
                Value::Bool(_) => Some(crate::column::DataType::Bool),
                Value::Null => None,
            })
            .unwrap_or(crate::column::DataType::Float);
        let mut col = Column::empty(dt);
        for v in values {
            // Ints widen into float columns when the first value was a
            // float; a genuine mixed-type expression is a user error.
            col.push(v, "<expr>")?;
        }
        Ok(col)
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, QueryError> {
    use BinOp::*;
    match op {
        And | Or => {
            // SQL three-valued logic.
            let lb = match &l {
                Value::Bool(b) => Some(*b),
                Value::Null => None,
                other => {
                    return Err(QueryError::IncompatibleOperands {
                        op: "and/or",
                        detail: format!("{other:?}"),
                    })
                }
            };
            let rb = match &r {
                Value::Bool(b) => Some(*b),
                Value::Null => None,
                other => {
                    return Err(QueryError::IncompatibleOperands {
                        op: "and/or",
                        detail: format!("{other:?}"),
                    })
                }
            };
            Ok(match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
                (And, Some(true), Some(true)) => Value::Bool(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
                (Or, Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except for division.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Float(*a as f64 / *b as f64)
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                });
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(QueryError::IncompatibleOperands {
                        op: "arithmetic",
                        detail: format!("{l:?} vs {r:?}"),
                    })
                }
            };
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!("arithmetic op"),
            })
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            match l.compare(&r) {
                None if l.is_null() || r.is_null() => Ok(Value::Null),
                None => Err(QueryError::IncompatibleOperands {
                    op: "comparison",
                    detail: format!("{l:?} vs {r:?}"),
                }),
                Some(ord) => Ok(Value::Bool(match op {
                    Eq => ord == Ordering::Equal,
                    Ne => ord != Ordering::Equal,
                    Lt => ord == Ordering::Less,
                    Le => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    Ge => ord != Ordering::Less,
                    _ => unreachable!("comparison op"),
                })),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;

    fn table() -> Table {
        let mut t = Table::new(vec![
            ("x", DataType::Int),
            ("y", DataType::Float),
            ("s", DataType::Str),
        ]);
        t.push_row(vec![Value::Int(1), Value::Float(0.5), Value::str("a")])
            .unwrap();
        t.push_row(vec![Value::Int(2), Value::Null, Value::str("b")])
            .unwrap();
        t.push_row(vec![Value::Int(3), Value::Float(3.5), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn arithmetic_and_comparison() {
        let t = table();
        let e = col("x").mul(lit(2i64)).add(lit(1i64));
        assert_eq!(e.eval_row(&t, 0).unwrap(), Value::Int(3));
        let cmp = col("x").ge(lit(2i64));
        assert_eq!(cmp.eval_mask(&t).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn nulls_propagate() {
        let t = table();
        let e = col("y").add(lit(1.0));
        assert_eq!(e.eval_row(&t, 1).unwrap(), Value::Null);
        // Null comparison does not select.
        let m = col("y").gt(lit(0.0)).eval_mask(&t).unwrap();
        assert_eq!(m, vec![true, false, true]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let t = table();
        let e = col("x").div(lit(0i64));
        assert_eq!(e.eval_row(&t, 0).unwrap(), Value::Null);
        let f = col("y").div(lit(0.0));
        assert_eq!(f.eval_row(&t, 0).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let t = table();
        // null AND false = false; null OR true = true; null AND true = null.
        let null_pred = col("y").gt(lit(100.0)); // null on row 1
        let and_false = null_pred.clone().and(lit(false));
        assert_eq!(and_false.eval_row(&t, 1).unwrap(), Value::Bool(false));
        let or_true = null_pred.clone().or(lit(true));
        assert_eq!(or_true.eval_row(&t, 1).unwrap(), Value::Bool(true));
        let and_true = null_pred.and(lit(true));
        assert_eq!(and_true.eval_row(&t, 1).unwrap(), Value::Null);
    }

    #[test]
    fn not_and_is_null() {
        let t = table();
        let e = col("s").is_null();
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, false, true]);
        let n = col("x").eq(lit(1i64)).not();
        assert_eq!(n.eval_mask(&t).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn string_comparison() {
        let t = table();
        let e = col("s").eq(lit("a"));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false]);
    }

    #[test]
    fn type_errors_reported() {
        let t = table();
        assert!(col("s").add(lit(1i64)).eval_row(&t, 0).is_err());
        assert!(col("x").and(lit(true)).eval_row(&t, 0).is_err());
        assert!(col("s").gt(lit(1i64)).eval_row(&t, 0).is_err());
        assert!(lit(5i64).not().eval_row(&t, 0).is_err());
    }

    #[test]
    fn eval_column_types() {
        let t = table();
        let c = col("x").mul(lit(2i64)).eval_column(&t).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        let f = col("y").eval_column(&t).unwrap();
        assert_eq!(f.data_type(), DataType::Float);
    }

    #[test]
    fn bucket_floors_to_width() {
        let t = table();
        assert_eq!(
            col("x").bucket(2.0).eval_row(&t, 2).unwrap(),
            Value::Int(2),
            "3 buckets to 2"
        );
        assert_eq!(
            col("y").bucket(1.0).eval_row(&t, 2).unwrap(),
            Value::Float(3.0),
            "3.5 buckets to 3.0"
        );
        assert_eq!(col("y").bucket(1.0).eval_row(&t, 1).unwrap(), Value::Null);
        assert!(col("s").bucket(1.0).eval_row(&t, 0).is_err());
        assert!(col("x").bucket(0.0).eval_row(&t, 0).is_err());
        // Negative values floor toward -infinity, like SQL's
        // date_trunc-style bucketing.
        let mut neg = Table::new(vec![("v", DataType::Int)]);
        neg.push_row(vec![Value::Int(-3)]).unwrap();
        assert_eq!(
            col("v").bucket(2.0).eval_row(&neg, 0).unwrap(),
            Value::Int(-4)
        );
    }

    #[test]
    fn int_float_mixed_arithmetic() {
        let t = table();
        let e = col("x").add(col("y"));
        assert_eq!(e.eval_row(&t, 0).unwrap(), Value::Float(1.5));
    }
}
