//! Expression AST and evaluation.
//!
//! Expressions reference columns, combine them with arithmetic, compare
//! them, and connect predicates with boolean logic — the `WHERE`-clause
//! subset the paper's queries need. Nulls propagate SQL-style: any
//! operation on a null yields null, and a null predicate does not select
//! the row.
//!
//! Evaluation is columnar: an expression evaluates over a row range into
//! a typed vector ([`EvalVec`]), with literal operands kept as broadcast
//! constants and per-type kernels for the hot combinations (numeric
//! arithmetic and comparison, string-vs-literal comparison via
//! dictionary codes, boolean logic). Predicate masks evaluate blocks of
//! rows in parallel ([`crate::parallel`]); because each block is a pure
//! function of the input rows, the mask is identical however many
//! threads run. [`Expr::eval_row`] remains as the row-at-a-time
//! reference implementation.

use crate::column::Column;
use crate::dict::{StrVec, NULL_CODE};
use crate::error::QueryError;
use crate::parallel;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::ops::Range;

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean negation.
    Not(Box<Expr>),
    /// True when the operand is null.
    IsNull(Box<Expr>),
    /// Floors a numeric operand to a multiple of a positive width —
    /// SQL-style bucketing (`bucket(time, 3600)` groups into hours).
    Bucket {
        /// The numeric operand.
        inner: Box<Expr>,
        /// Bucket width (must be positive).
        width: f64,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float; division by zero yields null).
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Literal(value.into())
}

macro_rules! binop_method {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        $(#[$doc])*
        pub fn $name(self, rhs: Expr) -> Expr {
            Expr::Binary {
                op: BinOp::$op,
                left: Box::new(self),
                right: Box::new(rhs),
            }
        }
    };
}

// The arithmetic method names intentionally mirror the `std::ops` traits:
// they build AST nodes rather than compute, like most query DSLs.
#[allow(clippy::should_implement_trait)]
impl Expr {
    binop_method!(/// `self + rhs`.
        add, Add);
    binop_method!(/// `self - rhs`.
        sub, Sub);
    binop_method!(/// `self * rhs`.
        mul, Mul);
    binop_method!(/// `self / rhs` (null on division by zero).
        div, Div);
    binop_method!(/// `self == rhs`.
        eq, Eq);
    binop_method!(/// `self != rhs`.
        ne, Ne);
    binop_method!(/// `self < rhs`.
        lt, Lt);
    binop_method!(/// `self <= rhs`.
        le, Le);
    binop_method!(/// `self > rhs`.
        gt, Gt);
    binop_method!(/// `self >= rhs`.
        ge, Ge);
    binop_method!(/// `self AND rhs`.
        and, And);
    binop_method!(/// `self OR rhs`.
        or, Or);

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// True when the expression evaluates to null.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Floors the (numeric) expression to a multiple of `width` — the
    /// bucketing idiom behind the paper's hourly aggregations (Figures
    /// 2/4/8/9) and Figure 13's 1-NCU-hour bins.
    pub fn bucket(self, width: f64) -> Expr {
        Expr::Bucket {
            inner: Box::new(self),
            width,
        }
    }

    /// Evaluates the expression for one row of a table (the reference
    /// semantics; the columnar path must agree with this).
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<Value, QueryError> {
        match self {
            Expr::Column(name) => table.value(row, name),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(inner) => match inner.eval_row(table, row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(QueryError::IncompatibleOperands {
                    op: "not",
                    detail: format!("{other:?}"),
                }),
            },
            Expr::IsNull(inner) => Ok(Value::Bool(inner.eval_row(table, row)?.is_null())),
            Expr::Bucket { inner, width } => {
                check_bucket_width(*width)?;
                match inner.eval_row(table, row)? {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(bucket_int(i, *width)),
                    Value::Float(x) => Ok(Value::Float(bucket_f64(x, *width))),
                    other => Err(QueryError::IncompatibleOperands {
                        op: "bucket",
                        detail: format!("{other:?}"),
                    }),
                }
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval_row(table, row)?;
                let r = right.eval_row(table, row)?;
                eval_binop(*op, l, r)
            }
        }
    }

    /// Evaluates the expression for every row, producing a column.
    pub fn eval(&self, table: &Table) -> Result<Vec<Value>, QueryError> {
        (0..table.num_rows())
            .map(|r| self.eval_row(table, r))
            .collect()
    }

    /// Evaluates the expression as a predicate mask: null ⇒ `false`.
    ///
    /// Blocks of rows evaluate in parallel; the result is independent of
    /// the thread count.
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>, QueryError> {
        self.eval_mask_cancel(table, None)
    }

    /// [`Expr::eval_mask`] with a cooperative cancellation check at every
    /// block boundary; returns [`QueryError::Cancelled`] once `cancel`
    /// is set. An unset (or absent) token changes nothing.
    pub fn eval_mask_cancel(
        &self,
        table: &Table,
        cancel: Option<&crate::cancel::CancelToken>,
    ) -> Result<Vec<bool>, QueryError> {
        let n = table.num_rows();
        if n == 0 {
            return Ok(Vec::new());
        }
        let blocks = parallel::try_map_blocks(n, parallel::num_threads(), cancel, |_, rows| {
            let len = rows.len();
            self.eval_vec(table, rows).and_then(|v| mask_block(v, len))
        })?;
        let mut mask = Vec::with_capacity(n);
        for block in blocks {
            mask.extend(block?);
        }
        Ok(mask)
    }

    /// Evaluates into a typed [`Column`] (type inferred from the first
    /// non-null value; all-null becomes a float column).
    pub fn eval_column(&self, table: &Table) -> Result<Column, QueryError> {
        let n = table.num_rows();
        if n == 0 {
            return Ok(Column::Float(Vec::new()));
        }
        fn all_null<T>(v: &[Option<T>]) -> bool {
            v.iter().all(Option::is_none)
        }
        Ok(match self.eval_vec(table, 0..n)? {
            EvalVec::Int(v) if !all_null(&v) => Column::Int(v),
            EvalVec::Float(v) if !all_null(&v) => Column::Float(v),
            EvalVec::Str(v) if v.codes().iter().any(|&c| c != NULL_CODE) => Column::Str(v),
            EvalVec::Bool(v) if !all_null(&v) => Column::Bool(v),
            EvalVec::Const(Value::Int(x)) => Column::Int(vec![Some(x); n]),
            EvalVec::Const(Value::Float(x)) => Column::Float(vec![Some(x); n]),
            EvalVec::Const(Value::Bool(x)) => Column::Bool(vec![Some(x); n]),
            EvalVec::Const(Value::Str(s)) => {
                let mut v = StrVec::with_capacity(n);
                let code = v.intern(&s);
                for _ in 0..n {
                    v.push_code(code);
                }
                Column::Str(v)
            }
            // All-null results (whatever carrier produced them) become a
            // float column, matching the row-at-a-time type inference.
            _ => Column::Float(vec![None; n]),
        })
    }

    /// Columnar evaluation over a row range. Pure: the result depends
    /// only on `table` and `rows`, never on scheduling.
    fn eval_vec(&self, table: &Table, rows: Range<usize>) -> Result<EvalVec, QueryError> {
        match self {
            Expr::Column(name) => Ok(match table.column(name)? {
                Column::Int(v) => EvalVec::Int(v[rows].to_vec()),
                Column::Float(v) => EvalVec::Float(v[rows].to_vec()),
                Column::Str(v) => EvalVec::Str(v.slice(rows)),
                Column::Bool(v) => EvalVec::Bool(v[rows].to_vec()),
            }),
            Expr::Literal(v) => Ok(EvalVec::Const(v.clone())),
            Expr::Not(inner) => eval_not(inner.eval_vec(table, rows)?),
            Expr::IsNull(inner) => Ok(eval_is_null(inner.eval_vec(table, rows)?)),
            Expr::Bucket { inner, width } => {
                check_bucket_width(*width)?;
                eval_bucket(inner.eval_vec(table, rows)?, *width)
            }
            Expr::Binary { op, left, right } => {
                let len = rows.len();
                let l = left.eval_vec(table, rows.clone())?;
                let r = right.eval_vec(table, rows)?;
                eval_binop_vec(*op, l, r, len)
            }
        }
    }
}

/// One block's evaluation result: a typed vector, or a broadcast literal
/// (length-independent).
enum EvalVec {
    Int(Vec<Option<i64>>),
    Float(Vec<Option<f64>>),
    Str(StrVec),
    Bool(Vec<Option<bool>>),
    Const(Value),
}

/// A borrowed scalar view of one cell — the generic fallback currency
/// (no heap allocation, unlike [`Value`]).
#[derive(Clone, Copy)]
enum Cell<'a> {
    Null,
    Int(i64),
    Float(f64),
    Str(&'a str),
    Bool(bool),
}

impl Cell<'_> {
    fn is_null(self) -> bool {
        matches!(self, Cell::Null)
    }

    fn as_f64(self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(i as f64),
            Cell::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Owned value, for error messages only.
    fn to_value(self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Int(i) => Value::Int(i),
            Cell::Float(f) => Value::Float(f),
            Cell::Str(s) => Value::Str(s.to_string()),
            Cell::Bool(b) => Value::Bool(b),
        }
    }
}

impl EvalVec {
    #[inline]
    fn cell(&self, i: usize) -> Cell<'_> {
        match self {
            EvalVec::Int(v) => v[i].map_or(Cell::Null, Cell::Int),
            EvalVec::Float(v) => v[i].map_or(Cell::Null, Cell::Float),
            EvalVec::Str(v) => v.get(i).map_or(Cell::Null, Cell::Str),
            EvalVec::Bool(v) => v[i].map_or(Cell::Null, Cell::Bool),
            EvalVec::Const(v) => match v {
                Value::Null => Cell::Null,
                Value::Int(x) => Cell::Int(*x),
                Value::Float(x) => Cell::Float(*x),
                Value::Str(s) => Cell::Str(s),
                Value::Bool(b) => Cell::Bool(*b),
            },
        }
    }

    fn is_const_null(&self) -> bool {
        matches!(self, EvalVec::Const(Value::Null))
    }

    /// The first non-null cell, if any (error paths and all-null checks).
    fn first_non_null(&self, len: usize) -> Option<Cell<'_>> {
        (0..len).map(|i| self.cell(i)).find(|c| !c.is_null())
    }
}

/// Numeric per-row view: ints widen to `f64`.
enum NumView<'a> {
    Int(&'a [Option<i64>]),
    Float(&'a [Option<f64>]),
    Const(f64),
}

impl NumView<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<f64> {
        match self {
            NumView::Int(v) => v[i].map(|x| x as f64),
            NumView::Float(v) => v[i],
            NumView::Const(x) => Some(*x),
        }
    }
}

/// Numeric view when the operand is statically numeric; `None` otherwise
/// (the caller falls back to the generic cell path).
fn num_view(v: &EvalVec) -> Option<NumView<'_>> {
    match v {
        EvalVec::Int(v) => Some(NumView::Int(v)),
        EvalVec::Float(v) => Some(NumView::Float(v)),
        EvalVec::Const(Value::Int(x)) => Some(NumView::Const(*x as f64)),
        EvalVec::Const(Value::Float(x)) => Some(NumView::Const(*x)),
        _ => None,
    }
}

/// Integer per-row view (for int-preserving arithmetic).
enum IntView<'a> {
    Vec(&'a [Option<i64>]),
    Const(i64),
}

impl IntView<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<i64> {
        match self {
            IntView::Vec(v) => v[i],
            IntView::Const(x) => Some(*x),
        }
    }
}

fn int_view(v: &EvalVec) -> Option<IntView<'_>> {
    match v {
        EvalVec::Int(v) => Some(IntView::Vec(v)),
        EvalVec::Const(Value::Int(x)) => Some(IntView::Const(*x)),
        _ => None,
    }
}

/// Boolean per-row view for `AND`/`OR`/`NOT` operands. Errors when the
/// operand can produce a non-null non-boolean (matching the row-at-a-time
/// semantics, where such a row errors regardless of the other operand).
enum BoolView<'a> {
    Vec(&'a [Option<bool>]),
    Const(Option<bool>),
}

impl BoolView<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<bool> {
        match self {
            BoolView::Vec(v) => v[i],
            BoolView::Const(b) => *b,
        }
    }
}

fn bool_view<'a>(v: &'a EvalVec, len: usize, op: &'static str) -> Result<BoolView<'a>, QueryError> {
    match v {
        EvalVec::Bool(v) => Ok(BoolView::Vec(v)),
        EvalVec::Const(Value::Bool(b)) => Ok(BoolView::Const(Some(*b))),
        EvalVec::Const(Value::Null) => Ok(BoolView::Const(None)),
        other => match other.first_non_null(len) {
            None => Ok(BoolView::Const(None)), // all null: a null operand per row
            Some(cell) => Err(QueryError::IncompatibleOperands {
                op,
                detail: format!("{:?}", cell.to_value()),
            }),
        },
    }
}

fn check_bucket_width(width: f64) -> Result<(), QueryError> {
    if width.partial_cmp(&0.0) != Some(Ordering::Greater) {
        return Err(QueryError::IncompatibleOperands {
            op: "bucket",
            detail: format!("non-positive width {width}"),
        });
    }
    Ok(())
}

// The f64→i64 cast deliberately truncates toward zero and is then
// round-trip checked (`width - w as f64`) before the integer path is
// taken; non-integral widths fall through to float bucketing.
#[allow(clippy::cast_possible_truncation)]
fn bucket_int(i: i64, width: f64) -> Value {
    let w = width as i64;
    if w >= 1 && (width - w as f64).abs() < 1e-9 {
        Value::Int(i.div_euclid(w) * w)
    } else {
        Value::Float((i as f64 / width).floor() * width)
    }
}

fn bucket_f64(x: f64, width: f64) -> f64 {
    (x / width).floor() * width
}

fn eval_not(v: EvalVec) -> Result<EvalVec, QueryError> {
    match v {
        EvalVec::Bool(v) => Ok(EvalVec::Bool(
            v.into_iter().map(|b| b.map(|b| !b)).collect(),
        )),
        EvalVec::Const(Value::Bool(b)) => Ok(EvalVec::Const(Value::Bool(!b))),
        EvalVec::Const(Value::Null) => Ok(EvalVec::Const(Value::Null)),
        other => {
            let len = match &other {
                EvalVec::Int(v) => v.len(),
                EvalVec::Float(v) => v.len(),
                EvalVec::Str(v) => v.len(),
                _ => 1,
            };
            match other.first_non_null(len) {
                None => Ok(EvalVec::Const(Value::Null)),
                Some(cell) => Err(QueryError::IncompatibleOperands {
                    op: "not",
                    detail: format!("{:?}", cell.to_value()),
                }),
            }
        }
    }
}

fn eval_is_null(v: EvalVec) -> EvalVec {
    match v {
        EvalVec::Int(v) => EvalVec::Bool(v.into_iter().map(|c| Some(c.is_none())).collect()),
        EvalVec::Float(v) => EvalVec::Bool(v.into_iter().map(|c| Some(c.is_none())).collect()),
        EvalVec::Str(v) => EvalVec::Bool(v.codes().iter().map(|&c| Some(c == NULL_CODE)).collect()),
        EvalVec::Bool(v) => EvalVec::Bool(v.into_iter().map(|c| Some(c.is_none())).collect()),
        EvalVec::Const(v) => EvalVec::Const(Value::Bool(v.is_null())),
    }
}

// Same round-trip-checked truncation as `bucket_int` above.
#[allow(clippy::cast_possible_truncation)]
fn eval_bucket(v: EvalVec, width: f64) -> Result<EvalVec, QueryError> {
    match v {
        EvalVec::Int(xs) => {
            let w = width as i64;
            if w >= 1 && (width - w as f64).abs() < 1e-9 {
                Ok(EvalVec::Int(
                    xs.into_iter()
                        .map(|c| c.map(|i| i.div_euclid(w) * w))
                        .collect(),
                ))
            } else {
                Ok(EvalVec::Float(
                    xs.into_iter()
                        .map(|c| c.map(|i| bucket_f64(i as f64, width)))
                        .collect(),
                ))
            }
        }
        EvalVec::Float(xs) => Ok(EvalVec::Float(
            xs.into_iter()
                .map(|c| c.map(|x| bucket_f64(x, width)))
                .collect(),
        )),
        EvalVec::Const(Value::Null) => Ok(EvalVec::Const(Value::Null)),
        EvalVec::Const(Value::Int(i)) => Ok(EvalVec::Const(bucket_int(i, width))),
        EvalVec::Const(Value::Float(x)) => Ok(EvalVec::Const(Value::Float(bucket_f64(x, width)))),
        other => {
            let len = match &other {
                EvalVec::Str(v) => v.len(),
                EvalVec::Bool(v) => v.len(),
                _ => 1,
            };
            match other.first_non_null(len) {
                None => Ok(EvalVec::Const(Value::Null)),
                Some(cell) => Err(QueryError::IncompatibleOperands {
                    op: "bucket",
                    detail: format!("{:?}", cell.to_value()),
                }),
            }
        }
    }
}

#[inline]
fn ord_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("comparison op"),
    }
}

/// String column vs string literal: one `Ordering` per dictionary code,
/// then an integer scan (`flipped` when the literal is the left operand).
fn str_const_cmp(op: BinOp, sv: &StrVec, s: &str, flipped: bool) -> EvalVec {
    let ords: Vec<Ordering> = (0..crate::cast::code32(sv.dict_len()))
        .map(|c| {
            let ord = sv.string_of(c).cmp(s);
            if flipped {
                ord.reverse()
            } else {
                ord
            }
        })
        .collect();
    EvalVec::Bool(
        sv.codes()
            .iter()
            .map(|&c| {
                if c == NULL_CODE {
                    None
                } else {
                    Some(ord_matches(op, ords[c as usize]))
                }
            })
            .collect(),
    )
}

fn incompatible(op: &'static str, l: Cell<'_>, r: Cell<'_>) -> QueryError {
    QueryError::IncompatibleOperands {
        op,
        detail: format!("{:?} vs {:?}", l.to_value(), r.to_value()),
    }
}

/// Generic arithmetic fallback: at least one operand is statically
/// non-numeric, so every row with both sides non-null is an error and
/// the surviving rows are all null.
fn generic_arith(l: &EvalVec, r: &EvalVec, len: usize) -> Result<EvalVec, QueryError> {
    for i in 0..len {
        let (cl, cr) = (l.cell(i), r.cell(i));
        if !cl.is_null() && !cr.is_null() {
            return Err(incompatible("arithmetic", cl, cr));
        }
    }
    Ok(EvalVec::Float(vec![None; len]))
}

/// Generic comparison fallback, mirroring `Value::compare` cell-wise.
fn generic_cmp(op: BinOp, l: &EvalVec, r: &EvalVec, len: usize) -> Result<EvalVec, QueryError> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let (cl, cr) = (l.cell(i), r.cell(i));
        if cl.is_null() || cr.is_null() {
            out.push(None);
            continue;
        }
        let ord = match (cl, cr) {
            (Cell::Str(a), Cell::Str(b)) => a.cmp(b),
            (Cell::Bool(a), Cell::Bool(b)) => a.cmp(&b),
            _ => match (cl.as_f64(), cr.as_f64()) {
                (Some(a), Some(b)) => match a.partial_cmp(&b) {
                    Some(ord) => ord,
                    None => return Err(incompatible("comparison", cl, cr)),
                },
                _ => return Err(incompatible("comparison", cl, cr)),
            },
        };
        out.push(Some(ord_matches(op, ord)));
    }
    Ok(EvalVec::Bool(out))
}

fn eval_binop_vec(op: BinOp, l: EvalVec, r: EvalVec, len: usize) -> Result<EvalVec, QueryError> {
    use BinOp::*;
    // Two literals fold to a literal via the scalar engine.
    if let (EvalVec::Const(a), EvalVec::Const(b)) = (&l, &r) {
        return Ok(EvalVec::Const(eval_binop(op, a.clone(), b.clone())?));
    }
    match op {
        And | Or => {
            let lv = bool_view(&l, len, "and/or")?;
            let rv = bool_view(&r, len, "and/or")?;
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                // SQL three-valued logic.
                out.push(match (op, lv.get(i), rv.get(i)) {
                    (And, Some(false), _) | (And, _, Some(false)) => Some(false),
                    (And, Some(true), Some(true)) => Some(true),
                    (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
                    (Or, Some(false), Some(false)) => Some(false),
                    _ => None,
                });
            }
            Ok(EvalVec::Bool(out))
        }
        Add | Sub | Mul | Div => {
            // A null literal nulls every row, whatever the other side is.
            if l.is_const_null() || r.is_const_null() {
                return Ok(EvalVec::Const(Value::Null));
            }
            if let (Some(a), Some(b)) = (int_view(&l), int_view(&r)) {
                // Integer arithmetic stays integral except for division.
                return Ok(if op == Div {
                    EvalVec::Float(
                        (0..len)
                            .map(|i| match (a.get(i), b.get(i)) {
                                (Some(x), Some(y)) if y != 0 => Some(x as f64 / y as f64),
                                _ => None,
                            })
                            .collect(),
                    )
                } else {
                    EvalVec::Int(
                        (0..len)
                            .map(|i| match (a.get(i), b.get(i)) {
                                (Some(x), Some(y)) => Some(match op {
                                    Add => x.wrapping_add(y),
                                    Sub => x.wrapping_sub(y),
                                    Mul => x.wrapping_mul(y),
                                    _ => unreachable!("int arithmetic op"),
                                }),
                                _ => None,
                            })
                            .collect(),
                    )
                });
            }
            if let (Some(a), Some(b)) = (num_view(&l), num_view(&r)) {
                return Ok(EvalVec::Float(
                    (0..len)
                        .map(|i| match (a.get(i), b.get(i)) {
                            (Some(x), Some(y)) => match op {
                                Add => Some(x + y),
                                Sub => Some(x - y),
                                Mul => Some(x * y),
                                Div => {
                                    if y == 0.0 {
                                        None
                                    } else {
                                        Some(x / y)
                                    }
                                }
                                _ => unreachable!("arithmetic op"),
                            },
                            _ => None,
                        })
                        .collect(),
                ));
            }
            generic_arith(&l, &r, len)
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            // A null literal nulls every comparison.
            if l.is_const_null() || r.is_const_null() {
                return Ok(EvalVec::Const(Value::Null));
            }
            if let (EvalVec::Str(sv), EvalVec::Const(Value::Str(s))) = (&l, &r) {
                return Ok(str_const_cmp(op, sv, s, false));
            }
            if let (EvalVec::Const(Value::Str(s)), EvalVec::Str(sv)) = (&l, &r) {
                return Ok(str_const_cmp(op, sv, s, true));
            }
            if let (Some(a), Some(b)) = (num_view(&l), num_view(&r)) {
                let mut out = Vec::with_capacity(len);
                for i in 0..len {
                    out.push(match (a.get(i), b.get(i)) {
                        (Some(x), Some(y)) => match x.partial_cmp(&y) {
                            Some(ord) => Some(ord_matches(op, ord)),
                            // NaN comparisons error, as in the scalar path.
                            None => return Err(incompatible("comparison", l.cell(i), r.cell(i))),
                        },
                        _ => None,
                    });
                }
                return Ok(EvalVec::Bool(out));
            }
            generic_cmp(op, &l, &r, len)
        }
    }
}

/// Converts one block's predicate result to a mask (null ⇒ `false`).
fn mask_block(v: EvalVec, len: usize) -> Result<Vec<bool>, QueryError> {
    match v {
        EvalVec::Bool(v) => Ok(v.into_iter().map(|b| b.unwrap_or(false)).collect()),
        EvalVec::Const(Value::Bool(b)) => Ok(vec![b; len]),
        EvalVec::Const(Value::Null) => Ok(vec![false; len]),
        other => {
            let first = other
                .first_non_null(len)
                .map_or(Value::Null, |c| c.to_value());
            Err(QueryError::IncompatibleOperands {
                op: "filter",
                detail: format!("predicate produced {first:?}"),
            })
        }
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, QueryError> {
    use BinOp::*;
    match op {
        And | Or => {
            // SQL three-valued logic.
            let lb = match &l {
                Value::Bool(b) => Some(*b),
                Value::Null => None,
                other => {
                    return Err(QueryError::IncompatibleOperands {
                        op: "and/or",
                        detail: format!("{other:?}"),
                    })
                }
            };
            let rb = match &r {
                Value::Bool(b) => Some(*b),
                Value::Null => None,
                other => {
                    return Err(QueryError::IncompatibleOperands {
                        op: "and/or",
                        detail: format!("{other:?}"),
                    })
                }
            };
            Ok(match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
                (And, Some(true), Some(true)) => Value::Bool(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
                (Or, Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except for division.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Float(*a as f64 / *b as f64)
                        }
                    }
                    _ => unreachable!("arithmetic op"),
                });
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(QueryError::IncompatibleOperands {
                        op: "arithmetic",
                        detail: format!("{l:?} vs {r:?}"),
                    })
                }
            };
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!("arithmetic op"),
            })
        }
        Eq | Ne | Lt | Le | Gt | Ge => match l.compare(&r) {
            None if l.is_null() || r.is_null() => Ok(Value::Null),
            None => Err(QueryError::IncompatibleOperands {
                op: "comparison",
                detail: format!("{l:?} vs {r:?}"),
            }),
            Some(ord) => Ok(Value::Bool(ord_matches(op, ord))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;

    fn table() -> Table {
        let mut t = Table::new(vec![
            ("x", DataType::Int),
            ("y", DataType::Float),
            ("s", DataType::Str),
        ]);
        t.push_row(vec![Value::Int(1), Value::Float(0.5), Value::str("a")])
            .unwrap();
        t.push_row(vec![Value::Int(2), Value::Null, Value::str("b")])
            .unwrap();
        t.push_row(vec![Value::Int(3), Value::Float(3.5), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn arithmetic_and_comparison() {
        let t = table();
        let e = col("x").mul(lit(2i64)).add(lit(1i64));
        assert_eq!(e.eval_row(&t, 0).unwrap(), Value::Int(3));
        let cmp = col("x").ge(lit(2i64));
        assert_eq!(cmp.eval_mask(&t).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn nulls_propagate() {
        let t = table();
        let e = col("y").add(lit(1.0));
        assert_eq!(e.eval_row(&t, 1).unwrap(), Value::Null);
        // Null comparison does not select.
        let m = col("y").gt(lit(0.0)).eval_mask(&t).unwrap();
        assert_eq!(m, vec![true, false, true]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let t = table();
        let e = col("x").div(lit(0i64));
        assert_eq!(e.eval_row(&t, 0).unwrap(), Value::Null);
        let f = col("y").div(lit(0.0));
        assert_eq!(f.eval_row(&t, 0).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let t = table();
        // null AND false = false; null OR true = true; null AND true = null.
        let null_pred = col("y").gt(lit(100.0)); // null on row 1
        let and_false = null_pred.clone().and(lit(false));
        assert_eq!(and_false.eval_row(&t, 1).unwrap(), Value::Bool(false));
        let or_true = null_pred.clone().or(lit(true));
        assert_eq!(or_true.eval_row(&t, 1).unwrap(), Value::Bool(true));
        let and_true = null_pred.and(lit(true));
        assert_eq!(and_true.eval_row(&t, 1).unwrap(), Value::Null);
    }

    #[test]
    fn not_and_is_null() {
        let t = table();
        let e = col("s").is_null();
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, false, true]);
        let n = col("x").eq(lit(1i64)).not();
        assert_eq!(n.eval_mask(&t).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn string_comparison() {
        let t = table();
        let e = col("s").eq(lit("a"));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false]);
        // Flipped operand order and inequality.
        let f = lit("a").lt(col("s"));
        assert_eq!(f.eval_mask(&t).unwrap(), vec![false, true, false]);
    }

    #[test]
    fn type_errors_reported() {
        let t = table();
        assert!(col("s").add(lit(1i64)).eval_row(&t, 0).is_err());
        assert!(col("x").and(lit(true)).eval_row(&t, 0).is_err());
        assert!(col("s").gt(lit(1i64)).eval_row(&t, 0).is_err());
        assert!(lit(5i64).not().eval_row(&t, 0).is_err());
        // The columnar path agrees.
        assert!(col("s").add(lit(1i64)).eval_column(&t).is_err());
        assert!(col("x").and(lit(true)).eval_mask(&t).is_err());
        assert!(col("s").gt(lit(1i64)).eval_mask(&t).is_err());
        assert!(lit(5i64).not().eval_mask(&t).is_err());
    }

    #[test]
    fn eval_column_types() {
        let t = table();
        let c = col("x").mul(lit(2i64)).eval_column(&t).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        let f = col("y").eval_column(&t).unwrap();
        assert_eq!(f.data_type(), DataType::Float);
        // Strings and literals materialize too.
        let s = col("s").eval_column(&t).unwrap();
        assert_eq!(s.data_type(), DataType::Str);
        assert_eq!(s.get(1), Value::str("b"));
        let k = lit("tag").eval_column(&t).unwrap();
        assert_eq!(k.get(2), Value::str("tag"));
    }

    #[test]
    fn all_null_expression_becomes_float_column() {
        let mut t = Table::new(vec![("x", DataType::Int)]);
        t.push_row(vec![Value::Null]).unwrap();
        let c = col("x").eval_column(&t).unwrap();
        assert_eq!(c.data_type(), DataType::Float);
        assert!(c.get(0).is_null());
    }

    #[test]
    fn bucket_floors_to_width() {
        let t = table();
        assert_eq!(
            col("x").bucket(2.0).eval_row(&t, 2).unwrap(),
            Value::Int(2),
            "3 buckets to 2"
        );
        assert_eq!(
            col("y").bucket(1.0).eval_row(&t, 2).unwrap(),
            Value::Float(3.0),
            "3.5 buckets to 3.0"
        );
        assert_eq!(col("y").bucket(1.0).eval_row(&t, 1).unwrap(), Value::Null);
        assert!(col("s").bucket(1.0).eval_row(&t, 0).is_err());
        assert!(col("x").bucket(0.0).eval_row(&t, 0).is_err());
        assert!(col("s").bucket(1.0).eval_column(&t).is_err());
        assert!(col("x").bucket(0.0).eval_column(&t).is_err());
        // Negative values floor toward -infinity, like SQL's
        // date_trunc-style bucketing.
        let mut neg = Table::new(vec![("v", DataType::Int)]);
        neg.push_row(vec![Value::Int(-3)]).unwrap();
        assert_eq!(
            col("v").bucket(2.0).eval_row(&neg, 0).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            col("v").bucket(2.0).eval_column(&neg).unwrap().get(0),
            Value::Int(-4)
        );
    }

    #[test]
    fn int_float_mixed_arithmetic() {
        let t = table();
        let e = col("x").add(col("y"));
        assert_eq!(e.eval_row(&t, 0).unwrap(), Value::Float(1.5));
        assert_eq!(e.eval_column(&t).unwrap().get(0), Value::Float(1.5));
    }

    #[test]
    fn columnar_matches_row_reference() {
        // Mixed expression over every column type, checked cell by cell
        // against eval_row.
        let mut t = Table::new(vec![
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
            ("b", DataType::Bool),
        ]);
        let rows = [
            (
                Value::Int(3),
                Value::Float(0.5),
                Value::str("x"),
                Value::Bool(true),
            ),
            (
                Value::Null,
                Value::Float(-0.5),
                Value::str("y"),
                Value::Bool(false),
            ),
            (Value::Int(-2), Value::Null, Value::Null, Value::Null),
            (
                Value::Int(0),
                Value::Float(2.0),
                Value::str("x"),
                Value::Bool(true),
            ),
        ];
        for (a, b, c, d) in rows {
            t.push_row(vec![a, b, c, d]).unwrap();
        }
        let exprs = [
            col("i").add(col("f")).mul(lit(2.0)),
            col("i").sub(lit(1i64)),
            col("f").div(lit(0.0)),
            col("s").ne(lit("x")),
            col("b").or(col("f").lt(lit(0.0))),
            col("i").bucket(2.0),
            col("s").is_null().or(col("b")),
        ];
        for e in exprs {
            let column = e.eval_column(&t).unwrap();
            for row in 0..t.num_rows() {
                let reference = e.eval_row(&t, row).unwrap();
                // Int cells may be carried in a float column when the
                // reference produced all nulls; compare semantically.
                match (column.get(row), reference) {
                    (a, b) if a == b => {}
                    (a, b) => panic!("row {row}: columnar {a:?} vs reference {b:?}"),
                }
            }
        }
    }

    #[test]
    fn mask_parallel_matches_sequential() {
        let mut t = Table::new(vec![("v", DataType::Int)]);
        let rows = crate::parallel::BLOCK_ROWS + 1000;
        for i in 0..rows {
            t.push_row(vec![if i % 17 == 0 {
                Value::Null
            } else {
                Value::Int(i as i64 % 31)
            }])
            .unwrap();
        }
        let pred = col("v").gt(lit(15i64)).and(col("v").ne(lit(20i64)));
        crate::parallel::override_threads(1);
        let seq = pred.eval_mask(&t).unwrap();
        crate::parallel::override_threads(8);
        let par = pred.eval_mask(&t).unwrap();
        crate::parallel::override_threads(0);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), rows);
    }
}
