//! Vectorized hash group-by with aggregates.
//!
//! The implementation is columnar and partitioned:
//!
//! 1. Key columns are encoded once into flat `u64` vectors
//!    ([`crate::keys`]), so the per-row work is filling a fixed-width
//!    `[u64]` buffer and one FxHash lookup — no `Value`s, no `String`
//!    clones, no per-row allocation (a key is boxed only when its group
//!    is first seen).
//! 2. Rows are processed in fixed-size blocks ([`crate::parallel`]),
//!    each block producing a partial aggregation; blocks run on a scoped
//!    thread pool and the partials are merged in block order. Because
//!    block boundaries and merge order are independent of the thread
//!    count, the parallel result is bit-identical to the sequential one.
//!
//! Group order follows first appearance in the input, as before.

use crate::column::{Column, DataType};
use crate::error::QueryError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::keys::{encode_column, EncodedCol};
use crate::parallel;
use crate::table::Table;
use crate::value::Value;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggKind {
    /// Row count (input column ignored for counting, but nulls in the
    /// named column are excluded, SQL-style; use `count_all` for `COUNT(*)`).
    Count,
    /// Count of all rows, including nulls.
    CountAll,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Mean,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Percentile (0–100) of a numeric column.
    Percentile(f64),
    /// Count of distinct non-null values of a column.
    CountDistinct,
    /// Sample variance of a numeric column.
    Variance,
}

/// One aggregate: a kind, an input column, and an output name.
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    /// What to compute.
    pub kind: AggKind,
    /// Input column (ignored by `CountAll`).
    pub input: String,
    /// Name of the output column.
    pub output: String,
}

impl Agg {
    /// `COUNT(input)` excluding nulls.
    pub fn count(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Count,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `COUNT(*)`.
    pub fn count_all(output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::CountAll,
            input: String::new(),
            output: output.into(),
        }
    }

    /// `SUM(input)`.
    pub fn sum(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Sum,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `AVG(input)`.
    pub fn mean(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Mean,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `MIN(input)`.
    pub fn min(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Min,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `MAX(input)`.
    pub fn max(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Max,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `PERCENTILE(input, p)` with `p` in 0–100.
    pub fn percentile(input: impl Into<String>, p: f64, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Percentile(p),
            input: input.into(),
            output: output.into(),
        }
    }

    /// `COUNT(DISTINCT input)` excluding nulls.
    pub fn count_distinct(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::CountDistinct,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `VARIANCE(input)` (sample variance; null with fewer than two
    /// values).
    pub fn variance(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Variance,
            input: input.into(),
            output: output.into(),
        }
    }
}

/// State accumulated per group per aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(f64, bool),
    Mean(f64, u64),
    Min(Option<f64>),
    Max(Option<f64>),
    Percentile(Vec<f64>, f64),
    Distinct(FxHashSet<u64>),
    Variance(f64, f64, u64),
}

impl AggState {
    fn new(kind: AggKind) -> AggState {
        match kind {
            AggKind::Count | AggKind::CountAll => AggState::Count(0),
            AggKind::Sum => AggState::Sum(0.0, false),
            AggKind::Mean => AggState::Mean(0.0, 0),
            AggKind::Min => AggState::Min(None),
            AggKind::Max => AggState::Max(None),
            AggKind::Percentile(p) => AggState::Percentile(Vec::new(), p),
            AggKind::CountDistinct => AggState::Distinct(Default::default()),
            AggKind::Variance => AggState::Variance(0.0, 0.0, 0),
        }
    }

    /// Records one encoded distinct key (`CountDistinct` only).
    #[inline]
    fn insert_distinct(&mut self, key: u64) {
        if let AggState::Distinct(set) = self {
            set.insert(key);
        }
    }

    #[inline]
    fn update(&mut self, value: Option<f64>, count_row: bool) {
        match self {
            AggState::Count(c) => {
                if count_row {
                    *c += 1;
                }
            }
            AggState::Sum(s, seen) => {
                if let Some(v) = value {
                    *s += v;
                    *seen = true;
                }
            }
            AggState::Mean(s, n) => {
                if let Some(v) = value {
                    *s += v;
                    *n += 1;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = value {
                    *m = Some(m.map_or(v, |x: f64| x.min(v)));
                }
            }
            AggState::Max(m) => {
                if let Some(v) = value {
                    *m = Some(m.map_or(v, |x: f64| x.max(v)));
                }
            }
            AggState::Percentile(xs, _) => {
                if let Some(v) = value {
                    xs.push(v);
                }
            }
            AggState::Distinct(_) => {}
            AggState::Variance(sum, sum_sq, n) => {
                if let Some(v) = value {
                    *sum += v;
                    *sum_sq += v * v;
                    *n += 1;
                }
            }
        }
    }

    /// Folds a later block's partial state into this one. Must be called
    /// in block order so float accumulation order is deterministic.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(c), AggState::Count(c2)) => *c += c2,
            (AggState::Sum(s, seen), AggState::Sum(s2, seen2)) => {
                if seen2 {
                    *s += s2;
                    *seen = true;
                }
            }
            (AggState::Mean(s, n), AggState::Mean(s2, n2)) => {
                if n2 > 0 {
                    *s += s2;
                    *n += n2;
                }
            }
            (AggState::Min(m), AggState::Min(m2)) => {
                if let Some(v) = m2 {
                    *m = Some(m.map_or(v, |x: f64| x.min(v)));
                }
            }
            (AggState::Max(m), AggState::Max(m2)) => {
                if let Some(v) = m2 {
                    *m = Some(m.map_or(v, |x: f64| x.max(v)));
                }
            }
            (AggState::Percentile(xs, _), AggState::Percentile(xs2, _)) => xs.extend(xs2),
            (AggState::Distinct(set), AggState::Distinct(set2)) => set.extend(set2),
            (AggState::Variance(sum, sum_sq, n), AggState::Variance(s2, sq2, n2)) => {
                if n2 > 0 {
                    *sum += s2;
                    *sum_sq += sq2;
                    *n += n2;
                }
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    // Percentile rank indices floor/ceil into [0, len-1], so the
    // f64→usize casts cannot truncate a meaningful value.
    #[allow(clippy::cast_possible_truncation)]
    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c as i64),
            AggState::Sum(s, seen) => {
                if seen {
                    Value::Float(s)
                } else {
                    Value::Null
                }
            }
            AggState::Mean(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(s / n as f64)
                }
            }
            AggState::Min(m) => m.map_or(Value::Null, Value::Float),
            AggState::Max(m) => m.map_or(Value::Null, Value::Float),
            AggState::Percentile(mut xs, p) => {
                if xs.is_empty() {
                    Value::Null
                } else {
                    xs.sort_by(|a, b| a.total_cmp(b));
                    let rank = p / 100.0 * (xs.len() - 1) as f64;
                    let lo = rank.floor() as usize;
                    let hi = rank.ceil() as usize;
                    let frac = rank - lo as f64;
                    Value::Float(xs[lo] * (1.0 - frac) + xs[hi] * frac)
                }
            }
            AggState::Distinct(set) => Value::Int(set.len() as i64),
            AggState::Variance(sum, sum_sq, n) => {
                if n < 2 {
                    Value::Null
                } else {
                    let nf = n as f64;
                    let mean = sum / nf;
                    Value::Float((sum_sq - nf * mean * mean) / (nf - 1.0))
                }
            }
        }
    }
}

/// Typed, pre-resolved view of one aggregate's input column.
enum AggInput<'a> {
    /// `COUNT(*)`: no input.
    NoInput,
    /// `COUNT(col)`: only needs per-row null checks.
    NullCheck(EncodedCol),
    /// `COUNT(DISTINCT col)`: needs grouping-equality keys.
    Distinct(EncodedCol),
    /// Numeric aggregate over an int column.
    Int(&'a [Option<i64>]),
    /// Numeric aggregate over a float column.
    Float(&'a [Option<f64>]),
}

/// One block's partial aggregation. Group order is first appearance
/// within the block.
struct Partial {
    lookup: FxHashMap<Box<[u64]>, u32>,
    keys: Vec<Box<[u64]>>,
    first_rows: Vec<usize>,
    states: Vec<Vec<AggState>>,
}

impl Partial {
    fn new() -> Partial {
        Partial {
            lookup: FxHashMap::default(),
            keys: Vec::new(),
            first_rows: Vec::new(),
            states: Vec::new(),
        }
    }

    /// The group index for `key`, creating the group (first seen at
    /// global row `row`) on miss.
    #[inline]
    fn group_index(&mut self, key: &[u64], row: usize, aggs: &[Agg]) -> usize {
        if let Some(&i) = self.lookup.get(key) {
            return i as usize;
        }
        let boxed: Box<[u64]> = key.into();
        let i = self.keys.len();
        self.lookup.insert(boxed.clone(), crate::cast::code32(i));
        self.keys.push(boxed);
        self.first_rows.push(row);
        self.states
            .push(aggs.iter().map(|a| AggState::new(a.kind)).collect());
        i
    }
}

fn aggregate_block(
    rows: std::ops::Range<usize>,
    encoded_keys: &[EncodedCol],
    inputs: &[AggInput<'_>],
    aggs: &[Agg],
) -> Partial {
    let mut partial = Partial::new();
    let mut key_buf = vec![0u64; encoded_keys.len()];
    for row in rows {
        for (slot, e) in key_buf.iter_mut().zip(encoded_keys) {
            *slot = e.keys[row];
        }
        let idx = partial.group_index(&key_buf, row, aggs);
        let states = &mut partial.states[idx];
        for (state, input) in states.iter_mut().zip(inputs) {
            match input {
                AggInput::NoInput => state.update(None, true),
                AggInput::NullCheck(e) => state.update(None, !e.is_null(row)),
                AggInput::Distinct(e) => {
                    if !e.is_null(row) {
                        state.insert_distinct(e.keys[row]);
                    }
                }
                AggInput::Int(v) => state.update(v[row].map(|x| x as f64), false),
                AggInput::Float(v) => state.update(v[row], false),
            }
        }
    }
    partial
}

/// Groups `table` by the named key columns and computes the aggregates.
///
/// The output has one row per distinct key combination, with the key
/// columns first (original types preserved) followed by one column per
/// aggregate. Group order follows first appearance in the input. The
/// result is deterministic and independent of the worker-thread count.
pub fn group_by(table: &Table, keys: &[&str], aggs: &[Agg]) -> Result<Table, QueryError> {
    group_by_cancel(table, keys, aggs, None)
}

/// [`group_by`] with cooperative cancellation: the per-block partial
/// aggregation re-checks `cancel` at every block boundary and the whole
/// call returns [`QueryError::Cancelled`] once the token is set. An
/// unset (or absent) token leaves the computation bit-identical to
/// [`group_by`].
pub fn group_by_cancel(
    table: &Table,
    keys: &[&str],
    aggs: &[Agg],
    cancel: Option<&crate::cancel::CancelToken>,
) -> Result<Table, QueryError> {
    // Resolve and validate columns up front.
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| table.column(k))
        .collect::<Result<_, _>>()?;
    for agg in aggs {
        if agg.kind != AggKind::CountAll {
            let c = table.column(&agg.input)?;
            let numeric_needed = !matches!(
                agg.kind,
                AggKind::Count | AggKind::CountAll | AggKind::CountDistinct
            );
            if numeric_needed && !matches!(c.data_type(), DataType::Int | DataType::Float) {
                return Err(QueryError::NonNumericAggregate(agg.input.clone()));
            }
            if let AggKind::Percentile(p) = agg.kind {
                if !(0.0..=100.0).contains(&p) {
                    return Err(QueryError::InvalidParameter(format!(
                        "percentile {p} outside 0..=100"
                    )));
                }
            }
        }
    }

    let encoded_keys: Vec<EncodedCol> = key_cols.iter().map(|c| encode_column(c)).collect();
    let inputs: Vec<AggInput<'_>> = aggs
        .iter()
        .map(|a| {
            if a.kind == AggKind::CountAll {
                return AggInput::NoInput;
            }
            // lint: library-panic-ok (agg inputs resolved against the table earlier in this fn) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
            let c = table.column(&a.input).expect("validated above");
            match a.kind {
                AggKind::Count => AggInput::NullCheck(encode_column(c)),
                AggKind::CountDistinct => AggInput::Distinct(encode_column(c)),
                _ => match c {
                    Column::Int(v) => AggInput::Int(v),
                    Column::Float(v) => AggInput::Float(v),
                    _ => unreachable!("numeric aggregate validated"),
                },
            }
        })
        .collect();

    // Per-block partial aggregation (parallel), merged in block order so
    // the result is bit-identical to the single-threaded run.
    let partials = parallel::try_map_blocks(
        table.num_rows(),
        parallel::num_threads(),
        cancel,
        |_, rows| aggregate_block(rows, &encoded_keys, &inputs, aggs),
    )?;
    let mut merged = Partial::new();
    for partial in partials {
        for ((key, first_row), states) in partial
            .keys
            .into_iter()
            .zip(partial.first_rows)
            .zip(partial.states)
        {
            match merged.lookup.get(&*key) {
                Some(&g) => {
                    for (acc, state) in merged.states[g as usize].iter_mut().zip(states) {
                        acc.merge(state);
                    }
                }
                None => {
                    let g = merged.keys.len();
                    merged.lookup.insert(key.clone(), crate::cast::code32(g));
                    merged.keys.push(key);
                    merged.first_rows.push(first_row);
                    merged.states.push(states);
                }
            }
        }
    }

    // Assemble the output: key columns gather each group's first row
    // (sharing string dictionaries); aggregate columns are built from the
    // finished states.
    let mut out_cols: Vec<(String, Column)> = keys
        .iter()
        .zip(&key_cols)
        .map(|(k, c)| (k.to_string(), c.take(&merged.first_rows)))
        .collect();
    let n_groups = merged.keys.len();
    let mut finished: Vec<Vec<Value>> = vec![Vec::new(); aggs.len()];
    for states in merged.states {
        for (ai, state) in states.into_iter().enumerate() {
            finished[ai].push(state.finish());
        }
    }
    for (agg, values) in aggs.iter().zip(finished) {
        let col = match agg.kind {
            AggKind::Count | AggKind::CountAll | AggKind::CountDistinct => {
                Column::Int(values.into_iter().map(|v| v.as_i64()).collect())
            }
            _ => Column::Float(values.into_iter().map(|v| v.as_f64()).collect()),
        };
        debug_assert_eq!(col.len(), n_groups);
        out_cols.push((agg.output.clone(), col));
    }
    Table::from_columns(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn table() -> Table {
        let mut t = Table::new(vec![("tier", DataType::Str), ("cpu", DataType::Float)]);
        for (tier, cpu) in [
            ("prod", 1.0),
            ("beb", 2.0),
            ("prod", 3.0),
            ("free", 4.0),
            ("beb", 6.0),
        ] {
            t.push_row(vec![Value::str(tier), Value::Float(cpu)])
                .unwrap();
        }
        t.push_row(vec![Value::str("prod"), Value::Null]).unwrap();
        t
    }

    #[test]
    fn sum_mean_count() {
        let out = group_by(
            &table(),
            &["tier"],
            &[
                Agg::sum("cpu", "total"),
                Agg::mean("cpu", "avg"),
                Agg::count("cpu", "n"),
                Agg::count_all("rows"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        // First-appearance order: prod, beb, free.
        assert_eq!(out.value(0, "tier").unwrap(), Value::str("prod"));
        assert_eq!(out.value(0, "total").unwrap(), Value::Float(4.0));
        assert_eq!(out.value(0, "avg").unwrap(), Value::Float(2.0));
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2)); // null excluded
        assert_eq!(out.value(0, "rows").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "total").unwrap(), Value::Float(8.0));
    }

    #[test]
    fn min_max_percentile() {
        let out = group_by(
            &table(),
            &["tier"],
            &[
                Agg::min("cpu", "lo"),
                Agg::max("cpu", "hi"),
                Agg::percentile("cpu", 50.0, "median"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(1, "lo").unwrap(), Value::Float(2.0));
        assert_eq!(out.value(1, "hi").unwrap(), Value::Float(6.0));
        assert_eq!(out.value(1, "median").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn empty_group_by_keys_makes_single_group() {
        let out = group_by(&table(), &[], &[Agg::count_all("n")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(6));
    }

    #[test]
    fn all_null_aggregates_are_null() {
        let mut t = Table::new(vec![("k", DataType::Str), ("v", DataType::Float)]);
        t.push_row(vec![Value::str("a"), Value::Null]).unwrap();
        let out = group_by(
            &t,
            &["k"],
            &[Agg::sum("v", "s"), Agg::mean("v", "m"), Agg::min("v", "lo")],
        )
        .unwrap();
        assert_eq!(out.value(0, "s").unwrap(), Value::Null);
        assert_eq!(out.value(0, "m").unwrap(), Value::Null);
        assert_eq!(out.value(0, "lo").unwrap(), Value::Null);
    }

    #[test]
    fn errors() {
        let t = table();
        assert!(group_by(&t, &["missing"], &[]).is_err());
        assert!(group_by(&t, &["tier"], &[Agg::sum("tier", "x")]).is_err());
        assert!(group_by(&t, &["tier"], &[Agg::percentile("cpu", 150.0, "x")]).is_err());
    }

    #[test]
    fn multi_key_grouping() {
        let mut t = Table::new(vec![
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("v", DataType::Float),
        ]);
        for (a, b, v) in [(1, "x", 1.0), (1, "y", 2.0), (1, "x", 3.0), (2, "x", 4.0)] {
            t.push_row(vec![Value::Int(a), Value::str(b), Value::Float(v)])
                .unwrap();
        }
        let out = group_by(&t, &["a", "b"], &[Agg::sum("v", "s")]).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "s").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn count_distinct_and_variance() {
        let mut t = Table::new(vec![
            ("k", DataType::Str),
            ("u", DataType::Str),
            ("v", DataType::Float),
        ]);
        for (k, u, v) in [
            ("a", "x", 2.0),
            ("a", "y", 4.0),
            ("a", "x", 6.0),
            ("b", "z", 1.0),
        ] {
            t.push_row(vec![Value::str(k), Value::str(u), Value::Float(v)])
                .unwrap();
        }
        t.push_row(vec![Value::str("a"), Value::Null, Value::Null])
            .unwrap();
        let out = group_by(
            &t,
            &["k"],
            &[Agg::count_distinct("u", "users"), Agg::variance("v", "var")],
        )
        .unwrap();
        assert_eq!(out.value(0, "users").unwrap(), Value::Int(2)); // x, y (null excluded)
                                                                   // Sample variance of [2, 4, 6] = 4.
        assert_eq!(out.value(0, "var").unwrap(), Value::Float(4.0));
        // Group "b": one value → variance null, one distinct user.
        assert_eq!(out.value(1, "users").unwrap(), Value::Int(1));
        assert!(out.value(1, "var").unwrap().is_null());
    }

    #[test]
    fn null_keys_group_together() {
        let mut t = Table::new(vec![("k", DataType::Str), ("v", DataType::Float)]);
        t.push_row(vec![Value::Null, Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Null, Value::Float(2.0)]).unwrap();
        let out = group_by(&t, &["k"], &[Agg::sum("v", "s")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "s").unwrap(), Value::Float(3.0));
    }

    #[test]
    fn int_and_float_zero_keys_group_like_before() {
        // Int 0, Float 0.0 and -0.0 are the same group key; null is not.
        let mut t = Table::new(vec![("k", DataType::Float), ("v", DataType::Float)]);
        for k in [Value::Float(0.0), Value::Float(-0.0), Value::Null] {
            t.push_row(vec![k, Value::Float(1.0)]).unwrap();
        }
        let out = group_by(&t, &["k"], &[Agg::count_all("n")]).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "n").unwrap(), Value::Int(1));
    }

    #[test]
    fn parallel_matches_sequential_across_blocks() {
        // Enough rows for several blocks; result must be identical with
        // 1 thread and many.
        let mut t = Table::new(vec![("k", DataType::Int), ("v", DataType::Float)]);
        let rows = crate::parallel::BLOCK_ROWS * 2 + 123;
        for i in 0..rows {
            t.push_row(vec![
                Value::Int((i % 7) as i64),
                Value::Float((i % 13) as f64 * 0.5),
            ])
            .unwrap();
        }
        crate::parallel::override_threads(1);
        let seq = group_by(&t, &["k"], &[Agg::sum("v", "s"), Agg::count_all("n")]).unwrap();
        crate::parallel::override_threads(8);
        let par = group_by(&t, &["k"], &[Agg::sum("v", "s"), Agg::count_all("n")]).unwrap();
        crate::parallel::override_threads(0);
        assert_eq!(seq, par);
    }
}
