//! Hash group-by with aggregates.

use crate::column::{Column, DataType};
use crate::error::QueryError;
use crate::table::Table;
use crate::value::{GroupKey, Value};
use std::collections::HashMap;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggKind {
    /// Row count (input column ignored for counting, but nulls in the
    /// named column are excluded, SQL-style; use `count_all` for `COUNT(*)`).
    Count,
    /// Count of all rows, including nulls.
    CountAll,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Mean,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Percentile (0–100) of a numeric column.
    Percentile(f64),
    /// Count of distinct non-null values of a column.
    CountDistinct,
    /// Sample variance of a numeric column.
    Variance,
}

/// One aggregate: a kind, an input column, and an output name.
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    /// What to compute.
    pub kind: AggKind,
    /// Input column (ignored by `CountAll`).
    pub input: String,
    /// Name of the output column.
    pub output: String,
}

impl Agg {
    /// `COUNT(input)` excluding nulls.
    pub fn count(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Count,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `COUNT(*)`.
    pub fn count_all(output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::CountAll,
            input: String::new(),
            output: output.into(),
        }
    }

    /// `SUM(input)`.
    pub fn sum(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Sum,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `AVG(input)`.
    pub fn mean(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Mean,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `MIN(input)`.
    pub fn min(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Min,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `MAX(input)`.
    pub fn max(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Max,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `PERCENTILE(input, p)` with `p` in 0–100.
    pub fn percentile(input: impl Into<String>, p: f64, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Percentile(p),
            input: input.into(),
            output: output.into(),
        }
    }

    /// `COUNT(DISTINCT input)` excluding nulls.
    pub fn count_distinct(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::CountDistinct,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `VARIANCE(input)` (sample variance; null with fewer than two
    /// values).
    pub fn variance(input: impl Into<String>, output: impl Into<String>) -> Agg {
        Agg {
            kind: AggKind::Variance,
            input: input.into(),
            output: output.into(),
        }
    }
}

/// State accumulated per group per aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(f64, bool),
    Mean(f64, u64),
    Min(Option<f64>),
    Max(Option<f64>),
    Percentile(Vec<f64>, f64),
    Distinct(std::collections::HashSet<crate::value::GroupKey>),
    Variance(f64, f64, u64),
}

impl AggState {
    fn new(kind: AggKind) -> AggState {
        match kind {
            AggKind::Count | AggKind::CountAll => AggState::Count(0),
            AggKind::Sum => AggState::Sum(0.0, false),
            AggKind::Mean => AggState::Mean(0.0, 0),
            AggKind::Min => AggState::Min(None),
            AggKind::Max => AggState::Max(None),
            AggKind::Percentile(p) => AggState::Percentile(Vec::new(), p),
            AggKind::CountDistinct => AggState::Distinct(Default::default()),
            AggKind::Variance => AggState::Variance(0.0, 0.0, 0),
        }
    }

    fn update_value(&mut self, value: &Value) {
        if let AggState::Distinct(set) = self {
            if !value.is_null() {
                set.insert(value.group_key());
            }
        }
    }

    fn update(&mut self, value: Option<f64>, count_row: bool) {
        match self {
            AggState::Count(c) => {
                if count_row {
                    *c += 1;
                }
            }
            AggState::Sum(s, seen) => {
                if let Some(v) = value {
                    *s += v;
                    *seen = true;
                }
            }
            AggState::Mean(s, n) => {
                if let Some(v) = value {
                    *s += v;
                    *n += 1;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = value {
                    *m = Some(m.map_or(v, |x: f64| x.min(v)));
                }
            }
            AggState::Max(m) => {
                if let Some(v) = value {
                    *m = Some(m.map_or(v, |x: f64| x.max(v)));
                }
            }
            AggState::Percentile(xs, _) => {
                if let Some(v) = value {
                    xs.push(v);
                }
            }
            AggState::Distinct(_) => {}
            AggState::Variance(sum, sum_sq, n) => {
                if let Some(v) = value {
                    *sum += v;
                    *sum_sq += v * v;
                    *n += 1;
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c as i64),
            AggState::Sum(s, seen) => {
                if seen {
                    Value::Float(s)
                } else {
                    Value::Null
                }
            }
            AggState::Mean(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(s / n as f64)
                }
            }
            AggState::Min(m) => m.map_or(Value::Null, Value::Float),
            AggState::Max(m) => m.map_or(Value::Null, Value::Float),
            AggState::Percentile(mut xs, p) => {
                if xs.is_empty() {
                    Value::Null
                } else {
                    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
                    let rank = p / 100.0 * (xs.len() - 1) as f64;
                    let lo = rank.floor() as usize;
                    let hi = rank.ceil() as usize;
                    let frac = rank - lo as f64;
                    Value::Float(xs[lo] * (1.0 - frac) + xs[hi] * frac)
                }
            }
            AggState::Distinct(set) => Value::Int(set.len() as i64),
            AggState::Variance(sum, sum_sq, n) => {
                if n < 2 {
                    Value::Null
                } else {
                    let nf = n as f64;
                    let mean = sum / nf;
                    Value::Float((sum_sq - nf * mean * mean) / (nf - 1.0))
                }
            }
        }
    }
}

/// Groups `table` by the named key columns and computes the aggregates.
///
/// The output has one row per distinct key combination, with the key
/// columns first (original types preserved) followed by one column per
/// aggregate. Group order follows first appearance in the input.
pub fn group_by(table: &Table, keys: &[&str], aggs: &[Agg]) -> Result<Table, QueryError> {
    // Resolve columns up front.
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| table.column(k))
        .collect::<Result<_, _>>()?;
    for agg in aggs {
        if agg.kind != AggKind::CountAll {
            let c = table.column(&agg.input)?;
            let numeric_needed = !matches!(
                agg.kind,
                AggKind::Count | AggKind::CountAll | AggKind::CountDistinct
            );
            if numeric_needed && !matches!(c.data_type(), DataType::Int | DataType::Float) {
                return Err(QueryError::NonNumericAggregate(agg.input.clone()));
            }
            if let AggKind::Percentile(p) = agg.kind {
                if !(0.0..=100.0).contains(&p) {
                    return Err(QueryError::InvalidParameter(format!(
                        "percentile {p} outside 0..=100"
                    )));
                }
            }
        }
    }
    let agg_inputs: Vec<Option<&Column>> = aggs
        .iter()
        .map(|a| {
            if a.kind == AggKind::CountAll {
                None
            } else {
                Some(table.column(&a.input).expect("validated above"))
            }
        })
        .collect();

    let mut group_index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    let mut group_states: Vec<Vec<AggState>> = Vec::new();

    for row in 0..table.num_rows() {
        let key: Vec<GroupKey> = key_cols.iter().map(|c| c.get(row).group_key()).collect();
        let idx = *group_index.entry(key).or_insert_with(|| {
            group_keys.push(key_cols.iter().map(|c| c.get(row)).collect());
            group_states.push(aggs.iter().map(|a| AggState::new(a.kind)).collect());
            group_keys.len() - 1
        });
        for (ai, agg) in aggs.iter().enumerate() {
            let (value, count_row) = match agg.kind {
                AggKind::CountAll => (None, true),
                AggKind::Count => {
                    let v = agg_inputs[ai].expect("count has input").get(row);
                    (None, !v.is_null())
                }
                AggKind::CountDistinct => {
                    let v = agg_inputs[ai].expect("agg has input").get(row);
                    group_states[idx][ai].update_value(&v);
                    (None, false)
                }
                _ => {
                    let v = agg_inputs[ai].expect("agg has input").get(row);
                    (v.as_f64(), false)
                }
            };
            group_states[idx][ai].update(value, count_row);
        }
    }

    // Assemble output.
    let mut schema: Vec<(String, DataType)> = keys
        .iter()
        .zip(&key_cols)
        .map(|(k, c)| (k.to_string(), c.data_type()))
        .collect();
    for agg in aggs {
        let dt = match agg.kind {
            AggKind::Count | AggKind::CountAll | AggKind::CountDistinct => DataType::Int,
            _ => DataType::Float,
        };
        schema.push((agg.output.clone(), dt));
    }
    let mut out = Table::new(schema);
    for (key, states) in group_keys.into_iter().zip(group_states) {
        let mut row = key;
        row.extend(states.into_iter().map(AggState::finish));
        out.push_row(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn table() -> Table {
        let mut t = Table::new(vec![
            ("tier", DataType::Str),
            ("cpu", DataType::Float),
        ]);
        for (tier, cpu) in [
            ("prod", 1.0),
            ("beb", 2.0),
            ("prod", 3.0),
            ("free", 4.0),
            ("beb", 6.0),
        ] {
            t.push_row(vec![Value::str(tier), Value::Float(cpu)]).unwrap();
        }
        t.push_row(vec![Value::str("prod"), Value::Null]).unwrap();
        t
    }

    #[test]
    fn sum_mean_count() {
        let out = group_by(
            &table(),
            &["tier"],
            &[
                Agg::sum("cpu", "total"),
                Agg::mean("cpu", "avg"),
                Agg::count("cpu", "n"),
                Agg::count_all("rows"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        // First-appearance order: prod, beb, free.
        assert_eq!(out.value(0, "tier").unwrap(), Value::str("prod"));
        assert_eq!(out.value(0, "total").unwrap(), Value::Float(4.0));
        assert_eq!(out.value(0, "avg").unwrap(), Value::Float(2.0));
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2)); // null excluded
        assert_eq!(out.value(0, "rows").unwrap(), Value::Int(3));
        assert_eq!(out.value(1, "total").unwrap(), Value::Float(8.0));
    }

    #[test]
    fn min_max_percentile() {
        let out = group_by(
            &table(),
            &["tier"],
            &[
                Agg::min("cpu", "lo"),
                Agg::max("cpu", "hi"),
                Agg::percentile("cpu", 50.0, "median"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(1, "lo").unwrap(), Value::Float(2.0));
        assert_eq!(out.value(1, "hi").unwrap(), Value::Float(6.0));
        assert_eq!(out.value(1, "median").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn empty_group_by_keys_makes_single_group() {
        let out = group_by(&table(), &[], &[Agg::count_all("n")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(6));
    }

    #[test]
    fn all_null_aggregates_are_null() {
        let mut t = Table::new(vec![("k", DataType::Str), ("v", DataType::Float)]);
        t.push_row(vec![Value::str("a"), Value::Null]).unwrap();
        let out = group_by(
            &t,
            &["k"],
            &[Agg::sum("v", "s"), Agg::mean("v", "m"), Agg::min("v", "lo")],
        )
        .unwrap();
        assert_eq!(out.value(0, "s").unwrap(), Value::Null);
        assert_eq!(out.value(0, "m").unwrap(), Value::Null);
        assert_eq!(out.value(0, "lo").unwrap(), Value::Null);
    }

    #[test]
    fn errors() {
        let t = table();
        assert!(group_by(&t, &["missing"], &[]).is_err());
        assert!(group_by(&t, &["tier"], &[Agg::sum("tier", "x")]).is_err());
        assert!(group_by(&t, &["tier"], &[Agg::percentile("cpu", 150.0, "x")]).is_err());
    }

    #[test]
    fn multi_key_grouping() {
        let mut t = Table::new(vec![
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("v", DataType::Float),
        ]);
        for (a, b, v) in [(1, "x", 1.0), (1, "y", 2.0), (1, "x", 3.0), (2, "x", 4.0)] {
            t.push_row(vec![Value::Int(a), Value::str(b), Value::Float(v)])
                .unwrap();
        }
        let out = group_by(&t, &["a", "b"], &[Agg::sum("v", "s")]).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "s").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn count_distinct_and_variance() {
        let mut t = Table::new(vec![
            ("k", DataType::Str),
            ("u", DataType::Str),
            ("v", DataType::Float),
        ]);
        for (k, u, v) in [
            ("a", "x", 2.0),
            ("a", "y", 4.0),
            ("a", "x", 6.0),
            ("b", "z", 1.0),
        ] {
            t.push_row(vec![Value::str(k), Value::str(u), Value::Float(v)])
                .unwrap();
        }
        t.push_row(vec![Value::str("a"), Value::Null, Value::Null])
            .unwrap();
        let out = group_by(
            &t,
            &["k"],
            &[
                Agg::count_distinct("u", "users"),
                Agg::variance("v", "var"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "users").unwrap(), Value::Int(2)); // x, y (null excluded)
        // Sample variance of [2, 4, 6] = 4.
        assert_eq!(out.value(0, "var").unwrap(), Value::Float(4.0));
        // Group "b": one value → variance null, one distinct user.
        assert_eq!(out.value(1, "users").unwrap(), Value::Int(1));
        assert!(out.value(1, "var").unwrap().is_null());
    }

    #[test]
    fn null_keys_group_together() {
        let mut t = Table::new(vec![("k", DataType::Str), ("v", DataType::Float)]);
        t.push_row(vec![Value::Null, Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Null, Value::Float(2.0)]).unwrap();
        let out = group_by(&t, &["k"], &[Agg::sum("v", "s")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "s").unwrap(), Value::Float(3.0));
    }
}
