#![warn(missing_docs)]

//! An in-memory columnar query engine.
//!
//! The analyses in *Borg: the Next Generation* were run on Google BigQuery
//! (§3, §9). This crate is the reproduction's stand-in: a small, typed,
//! columnar engine with filtering, projection, hash group-by aggregation,
//! sorting, and hash joins — enough to express every query the paper runs,
//! over in-memory trace tables.
//!
//! # Examples
//!
//! ```
//! use borg_query::prelude::*;
//!
//! let mut t = Table::new(vec![
//!     ("tier", DataType::Str),
//!     ("cpu_hours", DataType::Float),
//! ]);
//! t.push_row(vec![Value::str("prod"), Value::Float(10.0)]).unwrap();
//! t.push_row(vec![Value::str("beb"), Value::Float(2.0)]).unwrap();
//! t.push_row(vec![Value::str("prod"), Value::Float(5.0)]).unwrap();
//!
//! let result = Query::from(t)
//!     .filter(col("cpu_hours").gt(lit(1.0)))
//!     .group_by(&["tier"], vec![Agg::sum("cpu_hours", "total")])
//!     .sort_by("total", SortOrder::Descending)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.num_rows(), 2);
//! assert_eq!(result.value(0, "total").unwrap(), Value::Float(15.0));
//! ```

pub mod bridge;
pub mod cache;
pub mod cancel;
pub mod cast;
pub mod column;
pub mod dict;
pub mod error;
pub mod expr;
pub mod fxhash;
pub mod groupby;
pub mod join;
mod keys;
pub mod ops;
pub mod parallel;
pub mod query;
pub mod sort;
pub mod table;
pub mod value;

pub use cache::{CacheOutcome, CacheStats, ResultCache};
pub use cancel::CancelToken;
pub use column::{Column, DataType};
pub use dict::StrVec;
pub use error::QueryError;
pub use expr::{col, lit, Expr};
pub use groupby::{Agg, AggKind};
pub use query::Query;
pub use sort::SortOrder;
pub use table::Table;
pub use value::Value;

/// Convenient glob import for query construction.
pub mod prelude {
    pub use crate::column::DataType;
    pub use crate::expr::{col, lit, Expr};
    pub use crate::groupby::Agg;
    pub use crate::query::Query;
    pub use crate::sort::SortOrder;
    pub use crate::table::Table;
    pub use crate::value::Value;
}
