//! Cooperative cancellation for long-running queries.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the caller
//! that owns a query's deadline and the workers executing its scans. The
//! engine checks the token at **block boundaries** (`parallel::
//! try_map_blocks`) and between plan steps, so an overdue query stops
//! within one block's worth of work instead of running to completion —
//! the deadline-propagation primitive borg-serve threads through every
//! admitted query.
//!
//! Cancellation is strictly cooperative and one-way: once set, the flag
//! never clears (a fresh attempt gets a fresh token). Checking is a
//! single relaxed atomic load, so an un-cancelled token adds one branch
//! per 64Ki-row block to the scan hot path — noise. A query that
//! observes the flag abandons its partial work and returns
//! [`crate::QueryError::Cancelled`]; no partial results ever escape, so
//! the parallel==sequential bit-identity contract is unaffected for
//! queries that complete.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Sets the flag. Idempotent; never un-sets.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn observable_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }
}
