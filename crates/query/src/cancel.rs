//! Cooperative cancellation for long-running queries.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the caller
//! that owns a query's deadline and the workers executing its scans. The
//! engine checks the token at **block boundaries** (`parallel::
//! try_map_blocks`) and between plan steps, so an overdue query stops
//! within one block's worth of work instead of running to completion —
//! the deadline-propagation primitive borg-serve threads through every
//! admitted query.
//!
//! Cancellation is strictly cooperative and one-way: once set, the flag
//! never clears (a fresh attempt gets a fresh token). Checking is a
//! single relaxed atomic load, so an un-cancelled token adds one branch
//! per 64Ki-row block to the scan hot path — noise. A query that
//! observes the flag abandons its partial work and returns
//! [`crate::QueryError::Cancelled`]; no partial results ever escape, so
//! the parallel==sequential bit-identity contract is unaffected for
//! queries that complete.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag.
///
/// The token doubles as the per-attempt *progress* channel: workers
/// note each block they claim ([`CancelToken::note_block`]), so the
/// owner can read how far a scan got ([`CancelToken::blocks_scanned`])
/// — the observability hook borg-witness uses to attribute block-scan
/// work to a trace. The counter is purely observational: it never
/// influences scheduling or results.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    blocks: Arc<AtomicU64>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Sets the flag. Idempotent; never un-sets.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Records one claimed scan block against this token's attempt.
    #[inline]
    pub fn note_block(&self) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` blocks at once (virtual-time drivers that model a
    /// whole attempt in one step).
    pub fn add_blocks(&self, n: u64) {
        self.blocks.fetch_add(n, Ordering::Relaxed);
    }

    /// Blocks claimed so far across every clone of this token. Exact
    /// once the attempt's result has been handed back (the pool's
    /// result channel orders the workers' notes before the read).
    pub fn blocks_scanned(&self) -> u64 {
        self.blocks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn block_counter_is_shared_and_additive() {
        let t = CancelToken::new();
        assert_eq!(t.blocks_scanned(), 0);
        let u = t.clone();
        u.note_block();
        u.note_block();
        t.add_blocks(3);
        assert_eq!(t.blocks_scanned(), 5);
        assert_eq!(u.blocks_scanned(), 5);
        // Cancellation does not disturb the progress counter.
        t.cancel();
        assert_eq!(t.blocks_scanned(), 5);
    }

    #[test]
    fn observable_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }
}
