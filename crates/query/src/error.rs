//! Query-engine errors.

use std::fmt;

/// Errors produced by query construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// Two columns with the same name in one table.
    DuplicateColumn(String),
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column involved.
        column: String,
        /// Expected type name.
        expected: &'static str,
        /// Actual value description.
        actual: String,
    },
    /// An expression combined incompatible operand types.
    IncompatibleOperands {
        /// The operation.
        op: &'static str,
        /// Description of the operands.
        detail: String,
    },
    /// A row had the wrong number of fields.
    ArityMismatch {
        /// Expected field count.
        expected: usize,
        /// Provided field count.
        actual: usize,
    },
    /// An aggregate was asked of a non-numeric column.
    NonNumericAggregate(String),
    /// An invalid parameter (e.g. a percentile outside 0–100).
    InvalidParameter(String),
    /// Execution stopped at a block boundary because the query's
    /// [`crate::cancel::CancelToken`] was set (deadline exceeded or the
    /// caller gave up). Partial work is discarded.
    Cancelled,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            QueryError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            QueryError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(f, "column {column:?}: expected {expected}, got {actual}"),
            QueryError::IncompatibleOperands { op, detail } => {
                write!(f, "operator {op}: incompatible operands ({detail})")
            }
            QueryError::ArityMismatch { expected, actual } => {
                write!(f, "row has {actual} fields, table has {expected} columns")
            }
            QueryError::NonNumericAggregate(c) => {
                write!(f, "aggregate over non-numeric column {c:?}")
            }
            QueryError::InvalidParameter(d) => write!(f, "invalid parameter: {d}"),
            QueryError::Cancelled => write!(f, "query cancelled (deadline exceeded)"),
        }
    }
}

impl std::error::Error for QueryError {}
