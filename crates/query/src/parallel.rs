//! Partitioned parallel execution.
//!
//! The engine parallelizes filter and group-by by splitting tables into
//! fixed-size row blocks ([`BLOCK_ROWS`]) and processing blocks on a
//! scoped thread pool. Two properties make results reproducible:
//!
//! * **Fixed partitioning** — block boundaries depend only on the row
//!   count, never on the thread count, so per-block partial results are
//!   the same objects sequentially and in parallel.
//! * **Ordered merge** — partials are always combined in block order.
//!
//! Together these make the parallel path **bit-identical** to the
//! sequential path: the sequential path is simply the same block loop run
//! on one thread.
//!
//! [`try_map_blocks`] adds cooperative cancellation on top: workers
//! re-check a [`CancelToken`] before claiming each block, so a query
//! whose deadline has passed stops within one block of work
//! (`QueryError::Cancelled`) instead of finishing the scan. A token that
//! is never set leaves the schedule and results untouched.

use crate::cancel::CancelToken;
use crate::error::QueryError;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per partition block. Fixed (never derived from the thread count)
/// so that partial-aggregation boundaries — and therefore float
/// accumulation order — are identical however many threads run.
pub const BLOCK_ROWS: usize = 1 << 16;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the engine to use exactly `n` worker threads (`0` restores
/// auto-detection). Intended for tests and tuning; the default uses the
/// machine's available parallelism.
pub fn override_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker-thread count the engine will use.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
}

/// Splits `n_rows` into fixed blocks, applies `f(block_index, rows)` to
/// every block on up to `threads` workers, and returns the results in
/// block order. `f` must be pure; scheduling cannot affect the output.
pub fn map_blocks<T, F>(n_rows: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    // With no token, try_map_blocks never cancels; the default is unreachable.
    try_map_blocks(n_rows, threads, None, f).unwrap_or_default()
}

/// [`map_blocks`] with cooperative cancellation: every worker checks
/// `cancel` before claiming each block, and the whole call returns
/// [`QueryError::Cancelled`] — discarding all partial results — once the
/// token is set. With `cancel: None` (or a token that is never set) the
/// block schedule, accumulation order, and results are exactly those of
/// [`map_blocks`]: cancellation can stop work early but can never change
/// what a completed call returns.
///
/// Each claimed block is also noted on the token
/// ([`CancelToken::note_block`]) so the caller can attribute block-scan
/// progress to the attempt — purely observational, no effect on the
/// schedule or results.
pub fn try_map_blocks<T, F>(
    n_rows: usize,
    threads: usize,
    cancel: Option<&CancelToken>,
    f: F,
) -> Result<Vec<T>, QueryError>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let n_blocks = n_rows.div_ceil(BLOCK_ROWS);
    let block_range = |b: usize| b * BLOCK_ROWS..((b + 1) * BLOCK_ROWS).min(n_rows);
    if threads <= 1 || n_blocks <= 1 {
        let mut out = Vec::with_capacity(n_blocks);
        for b in 0..n_blocks {
            if cancelled() {
                return Err(QueryError::Cancelled);
            }
            if let Some(tok) = cancel {
                tok.note_block();
            }
            out.push(f(b, block_range(b)));
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_blocks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(n_blocks))
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        if cancelled() {
                            break;
                        }
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        if let Some(tok) = cancel {
                            tok.note_block();
                        }
                        done.push((b, f(b, block_range(b))));
                    }
                    done
                })
            })
            .collect();
        for w in workers {
            // lint: library-panic-ok (re-raises a worker panic on the caller thread) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
            for (b, value) in w.join().expect("query worker panicked") {
                slots[b] = Some(value);
            }
        }
    });
    if cancelled() {
        return Err(QueryError::Cancelled);
    }
    Ok(slots
        .into_iter()
        // lint: library-panic-ok (the fetch_add work loop covers 0..n_blocks exactly) unwind-across-pool-ok (serve pool worker contains unwinds via catch_unwind)
        .map(|s| s.expect("every block computed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_all_rows_in_order() {
        let n = BLOCK_ROWS * 2 + 17;
        for threads in [1, 4] {
            let ranges = map_blocks(n, threads, |b, r| (b, r));
            assert_eq!(ranges.len(), 3);
            assert_eq!(ranges[0].1, 0..BLOCK_ROWS);
            assert_eq!(ranges[2].1, BLOCK_ROWS * 2..n);
            for (i, (b, _)) in ranges.iter().enumerate() {
                assert_eq!(i, *b);
            }
        }
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        let out = map_blocks(0, 4, |_, _| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = BLOCK_ROWS * 3 + 5;
        let seq = map_blocks(n, 1, |_, r| r.sum::<usize>());
        let par = map_blocks(n, 8, |_, r| r.sum::<usize>());
        assert_eq!(seq, par);
    }

    #[test]
    fn uncancelled_token_matches_plain_map_blocks() {
        let n = BLOCK_ROWS * 2 + 9;
        let token = CancelToken::new();
        for threads in [1, 4] {
            let plain = map_blocks(n, threads, |b, r| (b, r.sum::<usize>()));
            let tried = try_map_blocks(n, threads, Some(&token), |b, r| (b, r.sum::<usize>()))
                .expect("token never set");
            assert_eq!(plain, tried);
        }
    }

    #[test]
    fn completed_scans_note_every_block_on_the_token() {
        let n = BLOCK_ROWS * 3 + 5;
        for threads in [1, 4] {
            let token = CancelToken::new();
            let out = try_map_blocks(n, threads, Some(&token), |b, _| b).expect("never cancelled");
            assert_eq!(out.len(), 4);
            assert_eq!(token.blocks_scanned(), 4, "threads={threads}");
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_block() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 8] {
            let counted = AtomicUsize::new(0);
            let out = try_map_blocks(BLOCK_ROWS * 4, threads, Some(&token), |b, _| {
                counted.fetch_add(1, Ordering::SeqCst);
                b
            });
            assert_eq!(out, Err(QueryError::Cancelled));
            assert_eq!(counted.load(Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn mid_scan_cancellation_stops_at_a_block_boundary() {
        // Cancel from inside block 1 of a sequential scan: block 2 must
        // never run.
        let token = CancelToken::new();
        let seen = AtomicUsize::new(0);
        let out = try_map_blocks(BLOCK_ROWS * 3, 1, Some(&token), |b, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            if b == 1 {
                token.cancel();
            }
            b
        });
        assert_eq!(out, Err(QueryError::Cancelled));
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn thread_override_round_trips() {
        override_threads(3);
        assert_eq!(num_threads(), 3);
        override_threads(0);
        assert!(num_threads() >= 1);
    }
}
