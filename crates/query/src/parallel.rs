//! Partitioned parallel execution.
//!
//! The engine parallelizes filter and group-by by splitting tables into
//! fixed-size row blocks ([`BLOCK_ROWS`]) and processing blocks on a
//! scoped thread pool. Two properties make results reproducible:
//!
//! * **Fixed partitioning** — block boundaries depend only on the row
//!   count, never on the thread count, so per-block partial results are
//!   the same objects sequentially and in parallel.
//! * **Ordered merge** — partials are always combined in block order.
//!
//! Together these make the parallel path **bit-identical** to the
//! sequential path: the sequential path is simply the same block loop run
//! on one thread.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per partition block. Fixed (never derived from the thread count)
/// so that partial-aggregation boundaries — and therefore float
/// accumulation order — are identical however many threads run.
pub const BLOCK_ROWS: usize = 1 << 16;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the engine to use exactly `n` worker threads (`0` restores
/// auto-detection). Intended for tests and tuning; the default uses the
/// machine's available parallelism.
pub fn override_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker-thread count the engine will use.
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
}

/// Splits `n_rows` into fixed blocks, applies `f(block_index, rows)` to
/// every block on up to `threads` workers, and returns the results in
/// block order. `f` must be pure; scheduling cannot affect the output.
pub fn map_blocks<T, F>(n_rows: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let n_blocks = n_rows.div_ceil(BLOCK_ROWS);
    let block_range = |b: usize| b * BLOCK_ROWS..((b + 1) * BLOCK_ROWS).min(n_rows);
    if threads <= 1 || n_blocks <= 1 {
        return (0..n_blocks).map(|b| f(b, block_range(b))).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_blocks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(n_blocks))
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        done.push((b, f(b, block_range(b))));
                    }
                    done
                })
            })
            .collect();
        for w in workers {
            // lint: library-panic-ok (re-raises a worker panic on the caller thread)
            for (b, value) in w.join().expect("query worker panicked") {
                slots[b] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        // lint: library-panic-ok (the fetch_add work loop covers 0..n_blocks exactly)
        .map(|s| s.expect("every block computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_all_rows_in_order() {
        let n = BLOCK_ROWS * 2 + 17;
        for threads in [1, 4] {
            let ranges = map_blocks(n, threads, |b, r| (b, r));
            assert_eq!(ranges.len(), 3);
            assert_eq!(ranges[0].1, 0..BLOCK_ROWS);
            assert_eq!(ranges[2].1, BLOCK_ROWS * 2..n);
            for (i, (b, _)) in ranges.iter().enumerate() {
                assert_eq!(i, *b);
            }
        }
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        let out = map_blocks(0, 4, |_, _| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = BLOCK_ROWS * 3 + 5;
        let seq = map_blocks(n, 1, |_, r| r.sum::<usize>());
        let par = map_blocks(n, 8, |_, r| r.sum::<usize>());
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_override_round_trips() {
        override_threads(3);
        assert_eq!(num_threads(), 3);
        override_threads(0);
        assert!(num_threads() >= 1);
    }
}
