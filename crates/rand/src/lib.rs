#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) slice of the `rand` API the rest of the
//! workspace uses: the [`Rng`] core trait, the [`RngExt`] extension with
//! `random::<T>()`, [`SeedableRng::seed_from_u64`], and a deterministic
//! [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! solid for simulation workloads and fully deterministic for a given
//! seed. Streams differ from the real `rand::rngs::StdRng`, which is
//! fine: every consumer in this workspace seeds explicitly and asserts
//! distributional (not stream-exact) properties.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of type `T` (for floats: uniform in
    /// `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniformly random value in `[low, high)`.
    fn random_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        range.start + self.random::<f64>() * (range.end - range.start)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro: guarantees a non-zero state for every seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn range_and_bool() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
