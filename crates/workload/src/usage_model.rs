//! Per-task resource-usage processes.
//!
//! Each task's actual usage varies over time below (or, for
//! work-conserving CPU, occasionally near) its limit (§2). The model here
//! is `base × diurnal(t) × noise(window)`: a per-task base rate, a
//! sinusoidal diurnal factor shared by the cell, and deterministic
//! per-window noise derived from a seed — so usage is reproducible and
//! can be evaluated lazily at any time without storing samples.

use borg_trace::resources::Resources;
use borg_trace::time::{Micros, MICROS_PER_HOUR};

/// SplitMix64: a tiny, high-quality hash/PRNG step used to derive
/// deterministic per-window noise.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash of `(seed, index)`.
fn unit_noise(seed: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(index));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic usage process for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageProcess {
    /// Mean usage level (NCU, NMU).
    pub base: Resources,
    /// Relative diurnal swing of CPU usage in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Diurnal phase in hours (the cell's timezone).
    pub phase_hours: f64,
    /// Relative per-window noise in `[0, 1)` (uniform multiplicative).
    pub noise: f64,
    /// Within-window peak-to-average CPU ratio (≥ 1).
    pub peak_factor: f64,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
}

impl UsageProcess {
    /// Creates a process.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn new(
        base: Resources,
        diurnal_amplitude: f64,
        phase_hours: f64,
        noise: f64,
        peak_factor: f64,
        seed: u64,
    ) -> UsageProcess {
        assert!(
            (0.0..1.0).contains(&diurnal_amplitude),
            "amplitude in [0,1)"
        );
        assert!((0.0..1.0).contains(&noise), "noise in [0,1)");
        assert!(peak_factor >= 1.0, "peak factor >= 1");
        assert!(
            base.is_non_negative() && base.is_finite(),
            "base usage must be sane"
        );
        UsageProcess {
            base,
            diurnal_amplitude,
            phase_hours,
            noise,
            peak_factor,
            seed,
        }
    }

    /// Mean of the diurnal factor over `[start, end)`, analytically.
    ///
    /// Depends only on `diurnal_amplitude`, `phase_hours`, and the window
    /// — not on the per-task base or seed — so callers walking many tasks
    /// that share a cell's diurnal shape may evaluate it once and reuse
    /// the result via [`UsageProcess::average_with_diurnal`].
    pub fn diurnal_mean(&self, start: Micros, end: Micros) -> f64 {
        if end <= start || self.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let omega = 2.0 * std::f64::consts::PI / 24.0; // per hour
        let s = start.as_hours_f64() + self.phase_hours;
        let e = end.as_hours_f64() + self.phase_hours;
        1.0 + self.diurnal_amplitude * ((omega * s).cos() - (omega * e).cos()) / (omega * (e - s))
    }

    /// Multiplicative noise for the 5-minute window containing `t`.
    fn window_noise(&self, t: Micros) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        let u = unit_noise(self.seed, t.five_minute_index());
        1.0 - self.noise + 2.0 * self.noise * u
    }

    /// Average usage over `[start, end)` including the window noise of
    /// the window containing `start` (callers sample window-aligned).
    pub fn average_over(&self, start: Micros, end: Micros) -> Resources {
        let d = self.diurnal_mean(start, end);
        self.average_with_diurnal(d, start)
    }

    /// [`UsageProcess::average_over`] with the diurnal mean supplied by
    /// the caller: bit-identical to `average_over(start, end)` when `d`
    /// is `diurnal_mean(start, end)` — the final expression is the same
    /// IEEE operation sequence. This is the usage tick's fast path: the
    /// diurnal mean is shared by every task with the cell's amplitude
    /// and phase, so it is computed once per tick, not once per task.
    pub fn average_with_diurnal(&self, d: f64, start: Micros) -> Resources {
        let n = self.window_noise(start);
        Resources::new(self.base.cpu * d * n, self.base.mem * n.sqrt())
    }

    /// Peak CPU usage within `[start, end)`.
    pub fn peak_cpu_over(&self, start: Micros, end: Micros) -> f64 {
        self.average_over(start, end).cpu * self.peak_factor
    }

    /// The usage integral over a task lifetime `[start, end)`, in
    /// resource-hours, ignoring window noise (mean 1).
    pub fn integral_over(&self, start: Micros, end: Micros) -> Resources {
        if end <= start {
            return Resources::ZERO;
        }
        let hours = (end - start).as_micros() as f64 / MICROS_PER_HOUR as f64;
        let d = self.diurnal_mean(start, end);
        Resources::new(self.base.cpu * d * hours, self.base.mem * hours)
    }

    /// Synthetic fine-grained CPU samples within a window, for building
    /// the 21-element histogram: values spread between a floor and the
    /// window peak, deterministic in the seed.
    pub fn window_cpu_samples(&self, start: Micros, end: Micros, count: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(count);
        self.window_cpu_samples_into(start, end, count, &mut out);
        out
    }

    /// [`UsageProcess::window_cpu_samples`] into a caller-owned buffer
    /// (cleared first), so periodic samplers reuse one allocation.
    pub fn window_cpu_samples_into(
        &self,
        start: Micros,
        end: Micros,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        self.window_cpu_samples_with_avg(self.average_over(start, end).cpu, start, count, out);
    }

    /// [`UsageProcess::window_cpu_samples_into`] with the window-average
    /// CPU supplied by the caller: bit-identical when `avg_cpu` is
    /// `average_over(start, end).cpu`. The usage tick already holds that
    /// value (its pass-1 raw demand), so the sampler skips the two
    /// diurnal cosines and the window-noise re-evaluation per record.
    pub fn window_cpu_samples_with_avg(
        &self,
        avg_cpu: f64,
        start: Micros,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let peak = avg_cpu * self.peak_factor;
        let floor = (2.0 * avg_cpu - peak).max(0.0);
        out.extend((0..count).map(|i| {
            let u = unit_noise(self.seed.wrapping_add(1), start.as_micros() ^ i as u64);
            floor + (peak - floor) * u
        }));
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn process() -> UsageProcess {
        UsageProcess::new(Resources::new(0.2, 0.1), 0.3, 0.0, 0.1, 1.5, 42)
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Unit noise covers [0,1).
        let xs: Vec<f64> = (0..1000).map(|i| unit_noise(7, i)).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn full_day_average_is_base() {
        let p = process();
        let avg = p.average_over(Micros::ZERO, Micros::from_days(1));
        // Over a full diurnal period the sinusoid integrates to zero;
        // only the window noise of window 0 remains (within ±10%).
        assert!((avg.cpu / 0.2 - 1.0).abs() < 0.11, "avg = {}", avg.cpu);
    }

    #[test]
    fn integral_scales_with_duration() {
        let p = process();
        let one = p.integral_over(Micros::ZERO, Micros::from_days(1));
        let two = p.integral_over(Micros::ZERO, Micros::from_days(2));
        assert!((two.cpu / one.cpu - 2.0).abs() < 0.02);
        assert!((one.mem - 0.1 * 24.0).abs() < 1e-9);
        assert_eq!(
            p.integral_over(Micros::from_hours(2), Micros::from_hours(1)),
            Resources::ZERO
        );
    }

    #[test]
    fn peak_exceeds_average() {
        let p = process();
        let s = Micros::from_hours(3);
        let e = s + Micros::from_minutes(5);
        let avg = p.average_over(s, e).cpu;
        assert!((p.peak_cpu_over(s, e) / avg - 1.5).abs() < 1e-9);
    }

    #[test]
    fn windows_vary_but_reproducibly() {
        let p = process();
        let w0 = p.average_over(Micros::ZERO, Micros::from_minutes(5)).cpu;
        let w1 = p
            .average_over(Micros::from_minutes(5), Micros::from_minutes(10))
            .cpu;
        assert_ne!(w0, w1); // noise differs per window
        let p2 = process();
        assert_eq!(
            w0,
            p2.average_over(Micros::ZERO, Micros::from_minutes(5)).cpu
        );
    }

    #[test]
    fn cached_diurnal_average_is_bit_identical() {
        let p = process();
        for w in 0..48u64 {
            let s = Micros::from_minutes(30 * w);
            let e = s + Micros::from_minutes(30);
            let d = p.diurnal_mean(s, e);
            assert_eq!(p.average_with_diurnal(d, s), p.average_over(s, e));
        }
    }

    #[test]
    fn samples_into_matches_allocating_variant() {
        let p = process();
        let s = Micros::from_hours(7);
        let e = s + Micros::from_minutes(5);
        let mut buf = vec![999.0; 3]; // stale contents must be cleared
        p.window_cpu_samples_into(s, e, 24, &mut buf);
        assert_eq!(buf, p.window_cpu_samples(s, e, 24));
    }

    #[test]
    fn histogram_samples_bounded_by_peak() {
        let p = process();
        let s = Micros::from_hours(1);
        let e = s + Micros::from_minutes(5);
        let peak = p.peak_cpu_over(s, e);
        for x in p.window_cpu_samples(s, e, 100) {
            assert!(x >= 0.0 && x <= peak + 1e-12);
        }
    }

    #[test]
    fn diurnal_peak_hour_higher_than_trough() {
        let p = UsageProcess::new(Resources::new(0.2, 0.1), 0.5, 0.0, 0.0, 1.0, 0);
        let peak = p
            .average_over(Micros::from_hours(5), Micros::from_hours(7))
            .cpu;
        let trough = p
            .average_over(Micros::from_hours(17), Micros::from_hours(19))
            .cpu;
        assert!(peak > 1.5 * trough, "peak {peak} trough {trough}");
    }
}
