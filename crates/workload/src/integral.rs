//! Statistical-mode sampler of per-job usage integrals.
//!
//! §7 of the paper characterizes the integral of resource consumption per
//! job (NCU-hours and NMU-hours): a log-normal body of "mice" and a
//! Pareto(α < 1) tail of "hogs" whose top 1% carries ~99% of all load
//! (Table 2, Figure 12). These quantities are invariant to the cell-size
//! scaling the simulator applies, so Table 2 and Figures 12–13 are
//! reproduced from this sampler directly (the "statistical mode" of
//! DESIGN.md) rather than from a bin-packed mini-cell that physically
//! cannot host a 370k NCU-hour job.
//!
//! The preset parameters are solved from the published statistics:
//! medians, 90/99th percentiles, means, variances, tail indices, and
//! maxima of Table 2.

use crate::dist::{BodyTail, BoundedPareto, LogNormal, Sample};
use rand::Rng;

/// One job's lifetime resource consumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobIntegral {
    /// CPU consumption in NCU-hours.
    pub ncu_hours: f64,
    /// Memory consumption in NMU-hours.
    pub nmu_hours: f64,
}

/// A generative model of per-job usage integrals with correlated CPU and
/// memory (§7.2: Pearson ≈ 0.97 between bucketed medians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegralModel {
    /// CPU NCU-hours distribution.
    pub cpu: BodyTail,
    /// Memory-to-CPU ratio distribution (`NMU = NCU × ratio`).
    pub mem_ratio: LogNormal,
}

impl IntegralModel {
    /// The 2019 calibration (Table 2, right columns): median 0.05e-3,
    /// mean ≈ 1.2, C² ≈ 2–4 ×10⁴, Pareto α = 0.69, top-1% share ≈ 99%.
    pub fn model_2019() -> IntegralModel {
        IntegralModel {
            cpu: BodyTail::new(
                LogNormal::with_median(0.05e-3, 3.0),
                BoundedPareto::new(0.69, 1.0, 1.4e5),
                0.012,
            ),
            // Memory mean 0.67 vs CPU 1.19 → ratio ≈ 0.56; the spread is
            // kept small enough that Figure 13's bucketed-median
            // correlation stays ≈ 0.97.
            mem_ratio: LogNormal::with_median(0.53, 0.35),
        }
    }

    /// The 2011 calibration (Table 2, left columns): median 0.15e-3,
    /// mean ≈ 3.0, C² ≈ 10⁴, Pareto α = 0.77, top-1% share ≈ 97%.
    pub fn model_2011() -> IntegralModel {
        IntegralModel {
            cpu: BodyTail::new(
                LogNormal::with_median(0.15e-3, 3.0),
                BoundedPareto::new(0.77, 1.0, 1.5e5),
                0.061,
            ),
            // 2011 memory and CPU integrals had equal means.
            mem_ratio: LogNormal::with_median(0.85, 0.5),
        }
    }

    /// Draws one job's integrals.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> JobIntegral {
        let ncu = self.cpu.sample(rng);
        let ratio = self.mem_ratio.sample(rng);
        JobIntegral {
            ncu_hours: ncu,
            nmu_hours: ncu * ratio,
        }
    }

    /// Draws `n` jobs.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<JobIntegral> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_analysis::moments::Moments;
    use borg_analysis::pareto::{ParetoFit, TailShare};
    use borg_analysis::percentile::percentile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 300_000;

    fn cpu_samples(model: &IntegralModel, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        model
            .sample_many(N, &mut rng)
            .iter()
            .map(|j| j.ncu_hours)
            .collect()
    }

    #[test]
    fn cpu_2019_matches_table2_shape() {
        let xs = cpu_samples(&IntegralModel::model_2019(), 1);
        let median = percentile(&xs, 50.0).unwrap();
        assert!(
            (0.2e-4..2.0e-4).contains(&median),
            "median = {median} (paper: 0.05e-3)"
        );
        let m: Moments = xs.iter().copied().collect();
        assert!(
            (0.5..2.5).contains(&m.mean()),
            "mean = {} (paper: 1.19)",
            m.mean()
        );
        let c2 = m.c_squared();
        assert!(
            (5_000.0..120_000.0).contains(&c2),
            "C² = {c2} (paper: 23312)"
        );
    }

    #[test]
    fn cpu_2019_pareto_tail() {
        let xs = cpu_samples(&IntegralModel::model_2019(), 2);
        let fit = ParetoFit::fit_ccdf_regression(&xs, 1.0, 99.99).unwrap();
        assert!(
            (fit.alpha - 0.69).abs() < 0.1,
            "alpha = {} (paper: 0.69)",
            fit.alpha
        );
        assert!(fit.r_squared > 0.97, "R² = {}", fit.r_squared);
    }

    #[test]
    fn cpu_2019_hogs_carry_the_load() {
        let xs = cpu_samples(&IntegralModel::model_2019(), 3);
        let t = TailShare::compute(&xs).unwrap();
        assert!(
            t.top_1_percent > 0.97,
            "top 1% share = {} (paper: 0.992)",
            t.top_1_percent
        );
        assert!(
            t.top_01_percent > 0.80,
            "top 0.1% share = {} (paper: 0.931)",
            t.top_01_percent
        );
    }

    #[test]
    fn cpu_2011_matches_table2_shape() {
        let xs = cpu_samples(&IntegralModel::model_2011(), 4);
        let m: Moments = xs.iter().copied().collect();
        assert!(
            (1.5..5.0).contains(&m.mean()),
            "mean = {} (paper: 3.0)",
            m.mean()
        );
        let c2 = m.c_squared();
        assert!((3_000.0..30_000.0).contains(&c2), "C² = {c2} (paper: 8375)");
        let fit = ParetoFit::fit_ccdf_regression(&xs, 1.0, 99.99).unwrap();
        assert!((fit.alpha - 0.77).abs() < 0.1, "alpha = {}", fit.alpha);
    }

    #[test]
    fn year_2011_stochastically_dominates_2019() {
        // Footnote 1 of the paper: 2011 had higher mean and variance but
        // lower C² — its CCDF lies above 2019's.
        let xs19 = cpu_samples(&IntegralModel::model_2019(), 5);
        let xs11 = cpu_samples(&IntegralModel::model_2011(), 6);
        let m19: Moments = xs19.iter().copied().collect();
        let m11: Moments = xs11.iter().copied().collect();
        assert!(m11.mean() > m19.mean());
        assert!(m11.c_squared() < m19.c_squared());
    }

    #[test]
    fn memory_correlates_with_cpu() {
        let mut rng = StdRng::seed_from_u64(7);
        let jobs = IntegralModel::model_2019().sample_many(N, &mut rng);
        let pairs: Vec<(f64, f64)> = jobs.iter().map(|j| (j.ncu_hours, j.nmu_hours)).collect();
        let r = borg_analysis::correlation::bucketed_median_correlation(&pairs, 1.0).unwrap();
        assert!(r > 0.9, "bucketed-median correlation = {r} (paper: 0.97)");
    }

    #[test]
    fn memory_mean_below_cpu_in_2019() {
        let mut rng = StdRng::seed_from_u64(8);
        let jobs = IntegralModel::model_2019().sample_many(N, &mut rng);
        let cpu_mean: f64 = jobs.iter().map(|j| j.ncu_hours).sum::<f64>() / N as f64;
        let mem_mean: f64 = jobs.iter().map(|j| j.nmu_hours).sum::<f64>() / N as f64;
        let ratio = mem_mean / cpu_mean;
        assert!(
            (0.4..0.8).contains(&ratio),
            "ratio = {ratio} (paper: 0.67/1.19 = 0.56)"
        );
    }

    #[test]
    fn samples_are_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        for j in IntegralModel::model_2019().sample_many(10_000, &mut rng) {
            assert!(j.ncu_hours > 0.0);
            assert!(j.nmu_hours > 0.0);
            // The bounded tail caps CPU; memory gets ratio noise on top.
            assert!(j.ncu_hours <= 1.4e5 * 1.01);
        }
    }
}
