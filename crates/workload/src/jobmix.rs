//! Per-tier job demographics: priorities and tasks-per-job.
//!
//! §6.3 / Figure 11 of the paper show the tasks-per-job distribution by
//! tier: best-effort batch jobs are much wider than the others (80th
//! percentile 25 tasks, 95th percentile 498), mid-tier reaches 67 at the
//! 95th percentile, free 21, and production jobs are mostly single-task
//! (95th percentile 3). Task counts here follow a
//! `1 + bounded-Pareto` model with a point mass at one task, calibrated
//! to those percentiles.

use crate::dist::{BoundedPareto, Discrete, Sample};
use borg_trace::priority::{Priority, Tier};
use rand::{Rng, RngExt};

/// Tasks-per-job sampler: with probability `p_single` the job has exactly
/// one task, otherwise `1 + floor(BoundedPareto(alpha, 1, max))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCountModel {
    /// Probability of a single-task job.
    pub p_single: f64,
    /// Tail index of the multi-task part.
    pub alpha: f64,
    /// Largest task count.
    pub max_tasks: u32,
}

impl TaskCountModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn new(p_single: f64, alpha: f64, max_tasks: u32) -> TaskCountModel {
        assert!(
            (0.0..=1.0).contains(&p_single),
            "p_single must be a probability"
        );
        assert!(alpha > 0.0 && max_tasks >= 2, "bad task-count parameters");
        TaskCountModel {
            p_single,
            alpha,
            max_tasks,
        }
    }

    /// The Figure 11 calibration for a tier.
    pub fn for_tier(tier: Tier) -> TaskCountModel {
        match tier {
            // 80%ile 25 tasks, 95%ile ~498 tasks.
            Tier::BestEffortBatch => TaskCountModel::new(0.13, 0.42, 10_000),
            // 80%ile 1 task, 95%ile ~67 tasks.
            Tier::Mid => TaskCountModel::new(0.83, 0.24, 20_000),
            // 80%ile 1 task, 95%ile ~21 tasks.
            Tier::Free => TaskCountModel::new(0.83, 0.35, 5_000),
            // 80%ile 1 task, 95%ile ~3 tasks; production jobs are mostly
            // single replicas plus some wide services.
            Tier::Production | Tier::Monitoring => TaskCountModel::new(0.82, 1.60, 2_000),
        }
    }

    /// The model's mean task count, optionally with samples clipped at
    /// `cap` (matching [`TaskCountModel::sample_capped`] semantics).
    pub fn mean(&self, cap: Option<u32>) -> f64 {
        self.capped_moments(cap).0
    }

    /// `(E[N], E[sqrt(N)])` of the capped model, computed by deterministic
    /// quadrature over the sampler's inverse CDF — used by the simulator's
    /// size calibration, where the Jensen gap between `E[sqrt(N)]` and
    /// `sqrt(E[N])` matters for heavy-tailed tiers.
    pub fn capped_moments(&self, cap: Option<u32>) -> (f64, f64) {
        let cap = cap.unwrap_or(self.max_tasks).min(self.max_tasks).max(1);
        let quantiles = 4000;
        let mut sum = 0.0;
        let mut sum_sqrt = 0.0;
        for i in 0..quantiles {
            let u = (i as f64 + 0.5) / quantiles as f64;
            let n = if u < self.p_single {
                1.0
            } else {
                // Inverse CDF of the bounded Pareto at the rescaled
                // quantile, floored and clipped exactly like the sampler.
                let v = (u - self.p_single) / (1.0 - self.p_single);
                let la = 1.0f64;
                let ha = (self.max_tasks as f64).powf(-self.alpha);
                let x = (la - v * (la - ha)).powf(-1.0 / self.alpha);
                (1.0 + x.floor()).min(cap as f64)
            };
            sum += n;
            sum_sqrt += n.sqrt();
        }
        (sum / quantiles as f64, sum_sqrt / quantiles as f64)
    }

    /// Draws a task count (at least 1), optionally capped.
    pub fn sample_capped<R: Rng + ?Sized>(&self, rng: &mut R, cap: Option<u32>) -> u32 {
        let n = self.sample(rng);
        cap.map_or(n, |c| n.min(c.max(1)))
    }

    /// Draws a task count (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if rng.random::<f64>() < self.p_single {
            return 1;
        }
        let tail = BoundedPareto::new(self.alpha, 1.0, self.max_tasks as f64);
        let n = 1 + tail.sample(rng).floor() as u32;
        n.min(self.max_tasks)
    }
}

/// Priority sampler per tier, producing raw 2019-style priorities inside
/// the tier's band (§2).
pub fn priority_sampler(tier: Tier) -> Discrete<u16> {
    match tier {
        Tier::Free => Discrete::new(vec![(0, 2.0), (25, 6.0), (50, 1.0), (99, 1.0)]),
        Tier::BestEffortBatch => Discrete::new(vec![
            (110, 1.0),
            (111, 0.5),
            (112, 3.0),
            (113, 0.5),
            (114, 1.0),
            (115, 2.0),
        ]),
        Tier::Mid => Discrete::new(vec![(116, 2.0), (117, 3.0), (118, 1.0), (119, 2.0)]),
        Tier::Production => Discrete::new(vec![
            (120, 1.0),
            (200, 6.0),
            (210, 1.0),
            (300, 1.0),
            (359, 0.5),
        ]),
        Tier::Monitoring => Discrete::new(vec![(360, 3.0), (450, 1.0)]),
    }
}

/// Draws a raw priority for a tier.
pub fn sample_priority<R: Rng + ?Sized>(tier: Tier, rng: &mut R) -> Priority {
    Priority::new(priority_sampler(tier).sample(rng))
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn percentile_of(model: TaskCountModel, p: f64) -> f64 {
        let mut rng = StdRng::seed_from_u64(99);
        let mut xs: Vec<u32> = (0..60_000).map(|_| model.sample(&mut rng)).collect();
        xs.sort_unstable();
        xs[(p / 100.0 * (xs.len() - 1) as f64) as usize] as f64
    }

    #[test]
    fn beb_matches_figure_11() {
        let m = TaskCountModel::for_tier(Tier::BestEffortBatch);
        let p80 = percentile_of(m, 80.0);
        let p95 = percentile_of(m, 95.0);
        assert!((15.0..40.0).contains(&p80), "beb p80 = {p80}");
        assert!((300.0..800.0).contains(&p95), "beb p95 = {p95}");
    }

    #[test]
    fn mid_matches_figure_11() {
        let m = TaskCountModel::for_tier(Tier::Mid);
        assert_eq!(percentile_of(m, 80.0), 1.0, "mid 80%ile is one task");
        let p95 = percentile_of(m, 95.0);
        assert!((40.0..110.0).contains(&p95), "mid p95 = {p95}");
    }

    #[test]
    fn free_matches_figure_11() {
        let p95 = percentile_of(TaskCountModel::for_tier(Tier::Free), 95.0);
        assert!((12.0..35.0).contains(&p95), "free p95 = {p95}");
    }

    #[test]
    fn prod_matches_figure_11() {
        let m = TaskCountModel::for_tier(Tier::Production);
        let p80 = percentile_of(m, 80.0);
        let p95 = percentile_of(m, 95.0);
        assert_eq!(p80, 1.0, "prod jobs are mostly single-task");
        assert!((2.0..6.0).contains(&p95), "prod p95 = {p95}");
    }

    #[test]
    fn ordering_between_tiers() {
        // Figure 11: beb > mid > free > prod in the tail.
        let p95 = |t| percentile_of(TaskCountModel::for_tier(t), 95.0);
        assert!(p95(Tier::BestEffortBatch) > p95(Tier::Mid));
        assert!(p95(Tier::Mid) > p95(Tier::Free));
        assert!(p95(Tier::Free) > p95(Tier::Production));
    }

    #[test]
    fn task_counts_at_least_one_and_capped() {
        let m = TaskCountModel::new(0.0, 0.3, 100);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5000 {
            let n = m.sample(&mut rng);
            assert!((1..=100).contains(&n));
        }
    }

    #[test]
    fn mean_matches_empirical() {
        let m = TaskCountModel::for_tier(Tier::Free);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| m.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let analytic = m.mean(None);
        assert!(
            (emp - analytic).abs() / analytic < 0.1,
            "empirical {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn capped_sampling_respects_cap() {
        let m = TaskCountModel::for_tier(Tier::BestEffortBatch);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..5000 {
            assert!(m.sample_capped(&mut rng, Some(500)) <= 500);
        }
        assert!(m.mean(Some(500)) < m.mean(None));
    }

    #[test]
    fn priorities_land_in_their_tier() {
        let mut rng = StdRng::seed_from_u64(3);
        for tier in Tier::ALL {
            for _ in 0..500 {
                let p = sample_priority(tier, &mut rng);
                assert_eq!(p.tier(), tier, "priority {p} for {tier}");
            }
        }
    }
}
