//! Machine-shape catalogues.
//!
//! Table 1 of the paper: the 2011 trace had 10 machine shapes across 3
//! hardware platforms; the 2019 trace has 21 shapes across 7 platforms,
//! with a greater variety of CPU-to-memory ratios (Figure 1). Capacities
//! are normalized so the largest machine is 1.0 in each dimension. The
//! exact shapes are anonymized in the traces; these catalogues reproduce
//! the published counts and the qualitative spread of Figure 1.

use crate::dist::Discrete;
use borg_trace::machine::{MachineShape, Platform};
use borg_trace::resources::Resources;
use rand::Rng;

/// A weighted catalogue of machine shapes for one era.
#[derive(Debug, Clone)]
pub struct MachineCatalog {
    shapes: Vec<(MachineShape, f64)>,
    sampler: Discrete<usize>,
}

impl MachineCatalog {
    /// Builds a catalogue from `(platform, cpu, mem, weight)` rows.
    ///
    /// # Panics
    ///
    /// Panics on an empty list (via the discrete-distribution invariants).
    pub fn new(rows: Vec<(u8, f64, f64, f64)>) -> MachineCatalog {
        let shapes: Vec<(MachineShape, f64)> = rows
            .into_iter()
            .map(|(p, cpu, mem, w)| {
                (
                    MachineShape {
                        platform: Platform(p),
                        capacity: Resources::new(cpu, mem),
                    },
                    w,
                )
            })
            .collect();
        let sampler = Discrete::new(
            shapes
                .iter()
                .enumerate()
                .map(|(i, (_, w))| (i, *w))
                .collect(),
        );
        MachineCatalog { shapes, sampler }
    }

    /// Draws one machine shape.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MachineShape {
        self.shapes[self.sampler.sample(rng)].0
    }

    /// All shapes with their weights.
    pub fn shapes(&self) -> &[(MachineShape, f64)] {
        &self.shapes
    }

    /// Number of distinct shapes.
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Number of distinct platforms.
    pub fn platform_count(&self) -> usize {
        let mut ps: Vec<u8> = self.shapes.iter().map(|(s, _)| s.platform.0).collect();
        ps.sort_unstable();
        ps.dedup();
        ps.len()
    }

    /// Weighted mean capacity of a machine drawn from the catalogue.
    pub fn mean_capacity(&self) -> Resources {
        let total: f64 = self.shapes.iter().map(|(_, w)| w).sum();
        self.shapes
            .iter()
            .map(|(s, w)| s.capacity * (*w / total))
            .sum()
    }
}

/// The 2011-era catalogue: 10 shapes, 3 platforms (Table 1). The dominant
/// shape is the mid-size (0.50, 0.50) machine, as in the published 2011
/// trace where over half the machines shared one configuration.
pub fn catalog_2011() -> MachineCatalog {
    MachineCatalog::new(vec![
        // (platform, cpu, mem, weight)
        (0, 0.50, 0.50, 53.0),
        (0, 0.50, 0.25, 31.0),
        (0, 0.50, 0.75, 8.0),
        (1, 0.25, 0.25, 1.0),
        (1, 0.50, 0.12, 0.5),
        (1, 0.50, 0.03, 0.5),
        (1, 0.50, 0.97, 0.3),
        (2, 1.00, 1.00, 5.0),
        (2, 1.00, 0.50, 0.5),
        (2, 0.25, 0.50, 0.2),
    ])
}

/// The 2019-era catalogue: 21 shapes, 7 platforms (Table 1), with the
/// broader CPU-to-memory spread of Figure 1.
pub fn catalog_2019() -> MachineCatalog {
    MachineCatalog::new(vec![
        (0, 0.25, 0.12, 4.0),
        (0, 0.25, 0.25, 6.0),
        (0, 0.38, 0.25, 5.0),
        (1, 0.50, 0.25, 14.0),
        (1, 0.50, 0.50, 18.0),
        (1, 0.50, 0.75, 4.0),
        (2, 0.60, 0.25, 3.0),
        (2, 0.60, 0.50, 8.0),
        (2, 0.60, 1.00, 1.5),
        (3, 0.70, 0.34, 6.0),
        (3, 0.70, 0.68, 7.0),
        (3, 0.70, 0.17, 1.0),
        (4, 0.85, 0.50, 5.0),
        (4, 0.85, 1.00, 3.0),
        (4, 0.85, 0.25, 1.0),
        (5, 1.00, 0.50, 5.0),
        (5, 1.00, 1.00, 4.0),
        (5, 1.00, 0.75, 2.0),
        (6, 0.30, 0.50, 1.0),
        (6, 0.30, 0.75, 0.6),
        (6, 0.15, 0.25, 0.9),
    ])
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_shape_and_platform_counts() {
        assert_eq!(catalog_2011().shape_count(), 10);
        assert_eq!(catalog_2011().platform_count(), 3);
        assert_eq!(catalog_2019().shape_count(), 21);
        assert_eq!(catalog_2019().platform_count(), 7);
    }

    #[test]
    fn capacities_normalized() {
        for cat in [catalog_2011(), catalog_2019()] {
            let mut has_full = false;
            for (s, _) in cat.shapes() {
                assert!(s.capacity.cpu > 0.0 && s.capacity.cpu <= 1.0);
                assert!(s.capacity.mem > 0.0 && s.capacity.mem <= 1.0);
                if s.capacity.cpu == 1.0 {
                    has_full = true;
                }
            }
            // Normalization means some machine hits 1.0 NCU.
            assert!(has_full);
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let cat = catalog_2011();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let dominant = (0..n)
            .filter(|_| {
                let s = cat.sample(&mut rng);
                s.capacity == Resources::new(0.50, 0.50) && s.platform == Platform(0)
            })
            .count();
        let frac = dominant as f64 / n as f64;
        assert!((frac - 0.53).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn mean_capacity_reasonable() {
        let m = catalog_2019().mean_capacity();
        assert!(m.cpu > 0.3 && m.cpu < 0.9, "mean cpu = {}", m.cpu);
        assert!(m.mem > 0.2 && m.mem < 0.8, "mean mem = {}", m.mem);
    }

    #[test]
    fn cpu_memory_ratio_spread_wider_in_2019() {
        let spread = |cat: &MachineCatalog| {
            let ratios: Vec<f64> = cat
                .shapes()
                .iter()
                .map(|(s, _)| s.capacity.cpu / s.capacity.mem)
                .collect();
            let max = ratios.iter().copied().fold(f64::MIN, f64::max);
            let min = ratios.iter().copied().fold(f64::MAX, f64::min);
            max / min
        };
        // 2019 covers a wider range of CPU:memory ratios than 2011 in the
        // bulk of its fleet (Figure 1's qualitative message).
        assert!(spread(&catalog_2019()) > 3.0);
    }
}
