//! Full-workload generation for one cell.
//!
//! [`JobGenerator`] turns a [`crate::cells::CellProfile`]
//! plus a scaled capacity into the complete month of work: resident
//! service jobs present at trace start, a diurnal arrival stream of new
//! jobs, alloc sets (§5.1), parent-child dependencies (§5.2), per-tier
//! sizes calibrated so the realized utilization matches the profile's
//! Figure 3 targets, and per-job termination intents matching the §5.2
//! kill/fail demographics.

use crate::arrival::DiurnalRate;
use crate::cells::{CellProfile, Era, TierProfile};
use crate::dist::{Discrete, LogNormal, Sample, Uniform};
use crate::jobmix::{sample_priority, TaskCountModel};
use crate::usage_model::{splitmix64, UsageProcess};
use borg_trace::collection::{SchedulerKind, VerticalScalingMode};
use borg_trace::priority::{Priority, Tier};
use borg_trace::resources::Resources;
use borg_trace::time::{Micros, MICROS_PER_HOUR};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// How a job is destined to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TerminationIntent {
    /// Runs to completion after its full duration.
    Finish,
    /// Canceled at the given fraction of its duration (§5.2: the dominant
    /// outcome, especially for jobs with parents).
    Kill {
        /// Fraction of the intended duration at which the kill lands.
        at_fraction: f64,
    },
    /// Fails of its own problem at the given fraction of its duration.
    Fail {
        /// Fraction of the intended duration at which the failure lands.
        at_fraction: f64,
    },
}

/// One task of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Replica index.
    pub index: u32,
    /// Requested resources (the limit).
    pub request: Resources,
    /// The task's usage process.
    pub usage: UsageProcess,
}

/// One generated job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable id within the workload (also the trace collection id).
    pub id: u64,
    /// Tier.
    pub tier: Tier,
    /// Raw priority.
    pub priority: Priority,
    /// Which scheduler admits the job.
    pub scheduler: SchedulerKind,
    /// Autopilot mode.
    pub vertical_scaling: VerticalScalingMode,
    /// Submission time.
    pub submit_time: Micros,
    /// Intended per-task run duration.
    pub duration: Micros,
    /// How the job is destined to end.
    pub termination: TerminationIntent,
    /// Parent job id, if any.
    pub parent: Option<u64>,
    /// Alloc set the job's tasks should run inside, if any.
    pub alloc_set: Option<u64>,
    /// The job's tasks.
    pub tasks: Vec<TaskSpec>,
    /// Anonymized submitting user.
    pub user_id: u32,
}

impl JobSpec {
    /// The job's total requested resources.
    pub fn total_request(&self) -> Resources {
        self.tasks.iter().map(|t| t.request).sum()
    }

    /// The job's intended usage integral in resource-hours (full duration,
    /// ignoring early termination).
    pub fn intended_integral(&self) -> Resources {
        self.tasks
            .iter()
            .map(|t| {
                t.usage
                    .integral_over(self.submit_time, self.submit_time + self.duration)
            })
            .sum()
    }

    /// The realized run duration after the termination intent.
    pub fn realized_duration(&self) -> Micros {
        match self.termination {
            TerminationIntent::Finish => self.duration,
            TerminationIntent::Kill { at_fraction } | TerminationIntent::Fail { at_fraction } => {
                Micros((self.duration.as_micros() as f64 * at_fraction) as u64)
            }
        }
    }
}

/// One generated alloc set (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocSetSpec {
    /// Stable id within the workload (shares the id space with jobs).
    pub id: u64,
    /// Submission time.
    pub submit_time: Micros,
    /// Lifetime of the reservation.
    pub duration: Micros,
    /// Number of alloc instances.
    pub instance_count: u32,
    /// Per-instance reserved resources.
    pub instance_size: Resources,
    /// Priority (alloc sets back production workloads).
    pub priority: Priority,
    /// Submitting user.
    pub user_id: u32,
}

/// A complete generated workload for one cell.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Alloc sets, sorted by submit time.
    pub alloc_sets: Vec<AllocSetSpec>,
    /// Jobs, sorted by submit time.
    pub jobs: Vec<JobSpec>,
}

impl Workload {
    /// Total number of collections (jobs + alloc sets).
    pub fn collection_count(&self) -> usize {
        self.jobs.len() + self.alloc_sets.len()
    }

    /// Total number of task replicas across all jobs.
    pub fn task_count(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }
}

/// Scaled generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Scaled cell capacity (the sum of the sampled machines).
    pub capacity: Resources,
    /// Scaled mean job arrivals per hour.
    pub job_rate_per_hour: f64,
    /// Observation window.
    pub horizon: Micros,
    /// Cap on tasks per job (simulation mode uses a cap so a mini-cell is
    /// not asked to host thousand-task jobs; statistical analyses of
    /// tasks-per-job use `None`).
    pub task_cap: Option<u32>,
    /// RNG seed.
    pub seed: u64,
}

/// Fraction of each tier's usage provided by "resident" jobs already
/// running at trace start (production is dominated by long-lived
/// services).
fn resident_fraction(tier: Tier) -> f64 {
    match tier {
        Tier::Production | Tier::Monitoring => 0.85,
        Tier::Mid => 0.50,
        Tier::BestEffortBatch => 0.10,
        Tier::Free => 0.05,
    }
}

/// Within-window CPU peak-to-average ratio used for generated tasks.
const PEAK_FACTOR: f64 = 1.35;
/// Log-space spread of per-task CPU rates.
const RATE_SIGMA: f64 = 0.8;
/// Log-space spread of job durations.
const DURATION_SIGMA: f64 = 1.0;
/// Largest per-task CPU request, as a machine fraction.
const MAX_TASK_CPU: f64 = 0.35;
/// Smallest per-task CPU rate.
const MIN_TASK_CPU: f64 = 1e-4;

/// The workload generator.
pub struct JobGenerator<'a> {
    profile: &'a CellProfile,
    params: GenParams,
}

impl<'a> JobGenerator<'a> {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive capacity, rate, or horizon.
    pub fn new(profile: &'a CellProfile, params: GenParams) -> JobGenerator<'a> {
        assert!(
            params.capacity.cpu > 0.0 && params.capacity.mem > 0.0,
            "capacity must be positive"
        );
        assert!(params.job_rate_per_hour > 0.0, "job rate must be positive");
        assert!(params.horizon > Micros::ZERO, "horizon must be positive");
        JobGenerator { profile, params }
    }

    /// Generates the complete workload.
    pub fn generate(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut next_id: u64 = 1;
        let mut jobs: Vec<JobSpec> = Vec::new();

        // Resident jobs per tier, then the arrival stream.
        for tier_profile in &self.profile.tiers {
            self.generate_residents(tier_profile, &mut next_id, &mut jobs, &mut rng);
        }
        self.generate_stream(&mut next_id, &mut jobs, &mut rng);
        jobs.sort_by_key(|j| j.submit_time);

        // Alloc sets: §5.1 says 2% of collections are alloc sets, so
        // n_alloc = f/(1-f) × n_jobs.
        let f = self.profile.alloc_set_fraction;
        let n_alloc = if f > 0.0 {
            ((f / (1.0 - f)) * jobs.len() as f64).round().max(1.0) as usize
        } else {
            0
        };
        let alloc_sets = self.generate_alloc_sets(n_alloc, &mut next_id, &mut rng);

        // Wire jobs into alloc sets and parents.
        self.assign_allocs_and_parents(&mut jobs, &alloc_sets, &mut rng);

        Workload { alloc_sets, jobs }
    }

    /// `(E[min(d, H)], E[sqrt(min(d, H))])` of the `LogNormal(mean)`
    /// duration truncated at the horizon, by deterministic quadrature.
    fn truncated_duration_moments(&self, mean_hours: f64) -> (f64, f64) {
        let horizon_hours = self.params.horizon.as_hours_f64();
        let ln = duration_dist(mean_hours);
        let n = 400;
        let mut total = 0.0;
        let mut total_sqrt = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let z = inverse_normal_cdf(u);
            let d = (ln.mu + ln.sigma * z).exp().min(horizon_hours);
            total += d;
            total_sqrt += d.sqrt();
        }
        (total / n as f64, total_sqrt / n as f64)
    }

    /// `(E[factor], E[sqrt(factor)])` of the early-termination duration
    /// factor: killed/failed jobs run only a fraction of their duration.
    fn early_termination_factors(&self) -> (f64, f64) {
        let pf = self.profile.parent_fraction;
        let p_kill = pf * self.profile.kill_prob_with_parent
            + (1.0 - pf) * self.profile.kill_prob_without_parent;
        let p_early = (p_kill + self.profile.fail_prob).min(1.0);
        // Early terminations land uniformly in [0.05, 1.0] of the
        // duration: E[frac] ≈ 0.525, E[sqrt(frac)] ≈ 0.694.
        (1.0 - p_early * (1.0 - 0.525), 1.0 - p_early * (1.0 - 0.694))
    }

    fn generate_residents(
        &self,
        tp: &TierProfile,
        next_id: &mut u64,
        jobs: &mut Vec<JobSpec>,
        rng: &mut StdRng,
    ) {
        let res_util = tp.target_cpu_util * resident_fraction(tp.tier);
        if res_util <= 0.0 {
            return;
        }
        let task_model = TaskCountModel::for_tier(tp.tier);
        let mean_tasks = task_model.mean(self.params.task_cap);
        let target_cpu = res_util * self.params.capacity.cpu;
        // Aim for a per-task rate around 1.5% of a machine, then round to
        // an integral job count.
        let r_target = 0.015;
        let n_jobs = ((target_cpu / (mean_tasks * r_target)).round() as usize).max(1);
        let mem_ratio = tp.target_mem_util / tp.target_cpu_util.max(1e-9);

        // Sample every slot's task count first, then set the per-task
        // rate from the *realized* total so the tier hits its target
        // exactly even when one slot draws a heavy-tailed task count.
        let slot_tasks: Vec<u32> = (0..n_jobs)
            .map(|_| task_model.sample_capped(rng, self.params.task_cap))
            .collect();
        let total_tasks: u32 = slot_tasks.iter().sum();
        let r_cpu = (target_cpu / f64::from(total_tasks.max(1))).clamp(MIN_TASK_CPU, MAX_TASK_CPU);

        // Each resident "slot" is a chain of service jobs covering the
        // whole window: when one incarnation is killed or fails (the §5.2
        // demographics apply to services too), a successor is submitted
        // immediately — modeling service restarts, which also contributes
        // to the §6.2 rescheduling churn.
        const MAX_CHAIN: usize = 8;
        for n_tasks in slot_tasks {
            let mut start = Micros((rng.random::<f64>() * 60.0 * 1e6) as u64); // first minute
            for link in 0..MAX_CHAIN {
                let remaining = self.params.horizon.saturating_sub(start);
                if remaining == Micros::ZERO {
                    break;
                }
                let termination = if link == MAX_CHAIN - 1 {
                    TerminationIntent::Finish
                } else {
                    self.sample_termination(rng, false)
                };
                let id = *next_id;
                *next_id += 1;
                let job = self.make_job(
                    id,
                    tp,
                    start,
                    remaining,
                    n_tasks,
                    r_cpu,
                    mem_ratio,
                    termination,
                    rng,
                );
                let realized = job.realized_duration();
                let finished = matches!(job.termination, TerminationIntent::Finish);
                jobs.push(job);
                if finished {
                    break;
                }
                start = start + realized + Micros::from_secs(30);
            }
        }
    }

    fn generate_stream(&self, next_id: &mut u64, jobs: &mut Vec<JobSpec>, rng: &mut StdRng) {
        let arrivals = DiurnalRate::new(
            self.params.job_rate_per_hour,
            self.profile.diurnal_amplitude,
            self.profile.timezone_phase_hours,
        )
        .sample_times(self.params.horizon, rng);

        let tier_sampler = Discrete::new(
            self.profile
                .tiers
                .iter()
                .map(|t| (t.tier, t.job_share))
                .collect(),
        );

        // Pre-compute per-tier calibration. The per-task rate damps as
        // footprint^(-1/2), so the realized per-job integral is
        // `base_median × e^(σ²/2) × sqrt(n·d) × sqrt(E[n]·E[d])`; solving
        // its expectation for the tier target needs E[sqrt(n)] and
        // E[sqrt(d)] explicitly (Jensen's gap is a factor ~2 for the
        // heavy-tailed tiers).
        struct TierCal {
            base_median: f64,
            mean_tasks: f64,
            mean_realized_hours: f64,
            mem_ratio: f64,
        }
        let (early_mean, early_sqrt) = self.early_termination_factors();
        let cals: Vec<(Tier, TierCal)> = self
            .profile
            .tiers
            .iter()
            .map(|tp| {
                let stream_util = tp.target_cpu_util * (1.0 - resident_fraction(tp.tier));
                let rate_tier = self.params.job_rate_per_hour * tp.job_share;
                let mean_ncu_hours = stream_util * self.params.capacity.cpu / rate_tier.max(1e-9);
                let (mean_tasks, sqrt_tasks) =
                    TaskCountModel::for_tier(tp.tier).capped_moments(self.params.task_cap);
                let (dur_mean, dur_sqrt) = self.truncated_duration_moments(tp.mean_duration_hours);
                let mean_realized_hours = dur_mean * early_mean;
                let sqrt_realized_hours = dur_sqrt * early_sqrt;
                let base_median = mean_ncu_hours
                    / ((RATE_SIGMA * RATE_SIGMA / 2.0).exp()
                        * sqrt_tasks
                        * sqrt_realized_hours
                        * (mean_tasks * mean_realized_hours).sqrt());
                (
                    tp.tier,
                    TierCal {
                        base_median,
                        mean_tasks,
                        mean_realized_hours,
                        mem_ratio: tp.target_mem_util / tp.target_cpu_util.max(1e-9),
                    },
                )
            })
            .collect();

        for submit in arrivals {
            let tier = tier_sampler.sample(rng);
            // lint: library-panic-ok (tier_sampler only emits tiers present in the profile) unwind-across-pool-ok (profile-closed tier set, so no worker unwind)
            let tp = self.profile.tier(tier).expect("tier from profile");
            // lint: library-panic-ok (cals was built from the same tier list above) unwind-across-pool-ok (same closed tier set, so no worker unwind)
            let cal = &cals.iter().find(|(t, _)| *t == tier).expect("calibrated").1;

            let n_tasks = TaskCountModel::for_tier(tier).sample_capped(rng, self.params.task_cap);
            let dur_dist = duration_dist(tp.mean_duration_hours);
            let dur_hours = dur_dist
                .sample(rng)
                .min(self.params.horizon.as_hours_f64() * 1.5);
            let duration = Micros((dur_hours * MICROS_PER_HOUR as f64).max(60.0 * 1e6) as u64);
            let termination = self.sample_termination(rng, /* has_parent: */ false);

            // The per-task rate is anchored so that a job with the mean
            // footprint (tasks × realized hours) hits the tier's mean
            // NCU-hours, and the rate is damped as footprint^(-1/2):
            // bigger jobs still consume more in total (the integral grows
            // like the square root of the footprint times a log-normal
            // factor, keeping a qualitative hog tail in simulated traces)
            // while tier utilization stays stable at mini-cell scale. The
            // *quantitative* Table 2 tail is reproduced by the unscaled
            // statistical sampler in `integral`.
            let realized_hours = match termination {
                TerminationIntent::Finish => dur_hours,
                TerminationIntent::Kill { at_fraction }
                | TerminationIntent::Fail { at_fraction } => dur_hours * at_fraction,
            };
            let footprint = (n_tasks as f64 * realized_hours.max(1.0 / 60.0))
                / (cal.mean_tasks * cal.mean_realized_hours);
            let rate_median =
                (cal.base_median * footprint.powf(-0.5)).clamp(MIN_TASK_CPU, MAX_TASK_CPU);
            let r_cpu = LogNormal::with_median(rate_median, RATE_SIGMA)
                .sample(rng)
                .clamp(MIN_TASK_CPU, MAX_TASK_CPU);

            let id = *next_id;
            *next_id += 1;
            jobs.push(self.make_job(
                id,
                tp,
                submit,
                duration,
                n_tasks,
                r_cpu,
                cal.mem_ratio,
                termination,
                rng,
            ));
        }
    }

    fn sample_termination(&self, rng: &mut StdRng, has_parent: bool) -> TerminationIntent {
        let p_kill = if has_parent {
            self.profile.kill_prob_with_parent
        } else {
            self.profile.kill_prob_without_parent
        };
        let u = rng.random::<f64>();
        let frac = Uniform::new(0.05, 1.0).sample(rng);
        if u < p_kill {
            TerminationIntent::Kill { at_fraction: frac }
        } else if u < p_kill + self.profile.fail_prob {
            TerminationIntent::Fail { at_fraction: frac }
        } else {
            TerminationIntent::Finish
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_job(
        &self,
        id: u64,
        tp: &TierProfile,
        submit: Micros,
        duration: Micros,
        n_tasks: u32,
        r_cpu: f64,
        mem_ratio: f64,
        termination: TerminationIntent,
        rng: &mut StdRng,
    ) -> JobSpec {
        let tier = tp.tier;
        // A small slice of production work runs at monitoring priorities
        // (≥ 360); the paper folds it back into production when reporting.
        let priority = if tier == Tier::Production && rng.random::<f64>() < 0.02 {
            sample_priority(Tier::Monitoring, rng)
        } else {
            sample_priority(tier, rng)
        };
        let scheduler = if tier == Tier::BestEffortBatch && self.profile.batch_queue_for_beb {
            SchedulerKind::Batch
        } else {
            SchedulerKind::Default
        };
        let vs_mode = if self.profile.era == Era::Y2019 {
            Discrete::new(self.profile.autopilot_mix.to_vec()).sample(rng)
        } else {
            VerticalScalingMode::Off
        };
        let r_mem = (r_cpu * mem_ratio).clamp(MIN_TASK_CPU, MAX_TASK_CPU);
        // Manually provisioned jobs over-request: asking for too little is
        // catastrophic, so users pad their limits (§8). Autoscaled jobs
        // start at the tier-typical limit and are tightened by Autopilot.
        // Manually provisioned non-production jobs over-request (CPU more
        // than memory: short CPU means throttling, short memory means an
        // OOM kill, and §4 shows memory over-allocation staying below
        // CPU's). Production limits already carry enormous slack via
        // their ~30% fill, so no extra padding is applied there.
        let inflate = vs_mode == VerticalScalingMode::Off
            && !matches!(tier, Tier::Production | Tier::Monitoring);
        let (inflate_cpu, inflate_mem) = if inflate {
            (1.0 / 0.75, 1.0 / 0.87)
        } else {
            (1.0, 1.0)
        };
        let mut r_cpu = r_cpu;
        let mut r_mem = r_mem;
        let mut n_tasks = n_tasks;
        let mut request = Resources::new(
            r_cpu / tp.cpu_fill * inflate_cpu,
            r_mem / tp.mem_fill * inflate_mem,
        );
        // A request above ~30% of the largest machine is unplaceable in
        // practice (most machines are 0.5 NCU): heavy jobs shard into more
        // replicas instead, preserving the job's total footprint.
        let dominant = request.cpu.max(request.mem);
        if dominant > 0.30 {
            let k = (dominant / 0.30).ceil().max(1.0);
            n_tasks = ((n_tasks as f64 * k) as u32).max(n_tasks + 1);
            r_cpu /= k;
            r_mem /= k;
            request = request * (1.0 / k);
        }
        let tasks = (0..n_tasks)
            .map(|index| TaskSpec {
                index,
                request,
                usage: UsageProcess::new(
                    Resources::new(r_cpu, r_mem),
                    self.profile.diurnal_amplitude * 0.5,
                    self.profile.timezone_phase_hours,
                    0.15,
                    PEAK_FACTOR,
                    splitmix64(self.params.seed ^ (id << 20) ^ index as u64),
                ),
            })
            .collect();
        // Heavier users submit more jobs: a skewed user id.
        let user_id = (rng.random::<f64>().powi(3) * 200.0) as u32;
        JobSpec {
            id,
            tier,
            priority,
            scheduler,
            vertical_scaling: vs_mode,
            submit_time: submit,
            duration,
            termination,
            parent: None,
            alloc_set: None,
            tasks,
            user_id,
        }
    }

    fn generate_alloc_sets(
        &self,
        count: usize,
        next_id: &mut u64,
        rng: &mut StdRng,
    ) -> Vec<AllocSetSpec> {
        // Instance size: a couple of typical production tasks. Production
        // stream tasks run ~1.5% of a machine, requested at 1/cpu_fill.
        let prod = self
            .profile
            .tier(Tier::Production)
            // lint: library-panic-ok (every CellProfile constructor includes production) unwind-across-pool-ok (profiles are fixed before dispatch, so no worker unwind)
            .expect("profiles always include production");
        let inst_cpu = (0.015 / prod.cpu_fill) * 2.5;
        let inst_mem =
            (0.015 * (prod.target_mem_util / prod.target_cpu_util.max(1e-9)) / prod.mem_fill) * 2.5;
        let count_dist = Discrete::new(vec![(2u32, 4.0), (5, 4.0), (10, 1.0)]);
        let life_dist = duration_dist(40.0);
        (0..count)
            .map(|_| {
                let id = *next_id;
                *next_id += 1;
                let submit = Micros(
                    (rng.random::<f64>() * 0.5 * self.params.horizon.as_micros() as f64) as u64,
                );
                let life_hours = life_dist
                    .sample(rng)
                    .min(self.params.horizon.as_hours_f64());
                AllocSetSpec {
                    id,
                    submit_time: submit,
                    duration: Micros((life_hours * MICROS_PER_HOUR as f64) as u64),
                    instance_count: count_dist.sample(rng),
                    instance_size: Resources::new(inst_cpu.min(0.5), inst_mem.min(0.5)),
                    priority: Priority::new(200),
                    user_id: (rng.random::<f64>() * 50.0) as u32,
                }
            })
            .collect()
    }

    fn assign_allocs_and_parents(
        &self,
        jobs: &mut [JobSpec],
        alloc_sets: &[AllocSetSpec],
        rng: &mut StdRng,
    ) {
        let n = jobs.len();
        // Alloc membership targets (§5.1): 15% of jobs run inside an
        // alloc set and 95% of those are production. Solve the per-class
        // assignment probabilities from the realized tier counts.
        let n_prod = jobs
            .iter()
            .filter(|j| matches!(j.tier, Tier::Production | Tier::Monitoring))
            .count();
        let n_other = n - n_prod;
        let assigned_total = self.profile.jobs_in_alloc_fraction * n as f64;
        let p_for_prod = if n_prod > 0 {
            (assigned_total * self.profile.alloc_jobs_prod_fraction / n_prod as f64).min(1.0)
        } else {
            0.0
        };
        let p_for_other = if n_other > 0 {
            (assigned_total * (1.0 - self.profile.alloc_jobs_prod_fraction) / n_other as f64)
                .min(1.0)
        } else {
            0.0
        };
        for i in 0..n {
            let is_prod = matches!(jobs[i].tier, Tier::Production | Tier::Monitoring);
            let p_assign = if is_prod { p_for_prod } else { p_for_other };
            if !alloc_sets.is_empty() && rng.random::<f64>() < p_assign {
                // Pick an alloc set alive at the job's submit time when
                // possible.
                let submit = jobs[i].submit_time;
                let alive: Vec<&AllocSetSpec> = alloc_sets
                    .iter()
                    .filter(|a| a.submit_time <= submit && submit < a.submit_time + a.duration)
                    .collect();
                if let Some(a) = pick(&alive, rng) {
                    jobs[i].alloc_set = Some(a.id);
                    // §5.1: jobs inside allocs use their memory harder
                    // (73% average utilization vs 41%): their requests
                    // are tighter than the tier norm.
                    let boost = 1.12;
                    for t in &mut jobs[i].tasks {
                        t.request.mem = (t.request.mem / boost).max(MIN_TASK_CPU);
                    }
                }
            }
            // Parent dependencies: a parent submitted before the child.
            if i > 0 && rng.random::<f64>() < self.profile.parent_fraction {
                let lo = i.saturating_sub(200);
                let j = lo + (rng.random::<f64>() * (i - lo) as f64) as usize;
                if j < i {
                    jobs[i].parent = Some(jobs[j].id);
                    // Re-sample the termination with the with-parent kill
                    // probability (§5.2: 87% of jobs with parents are
                    // killed).
                    jobs[i].termination = self.sample_termination(rng, true);
                }
            }
        }
    }
}

/// Log-normal duration distribution with the given mean (hours).
fn duration_dist(mean_hours: f64) -> LogNormal {
    // mean = exp(mu + sigma²/2) → mu = ln(mean) − sigma²/2.
    LogNormal::new(
        mean_hours.ln() - DURATION_SIGMA * DURATION_SIGMA / 2.0,
        DURATION_SIGMA,
    )
}

/// Picks a random element of a slice.
fn pick<'x, T, R: Rng + ?Sized>(xs: &'x [T], rng: &mut R) -> Option<&'x T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[(rng.random::<f64>() * xs.len() as f64) as usize % xs.len()])
    }
}

/// Acklam's rational approximation of the standard-normal inverse CDF,
/// accurate to ~1e-9 — used for deterministic quadrature.
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e1,
        2.209460984245205e2,
        -2.759285104469687e2,
        1.38357751867269e2,
        -3.066479806614716e1,
        2.506628277459239,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e1,
        1.615858368580409e2,
        -1.556989798598866e2,
        6.680131188771972e1,
        -1.328068155288572e1,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-3,
        -3.223964580411365e-1,
        -2.400758277161838,
        -2.549732539343734,
        4.374664141464968,
        2.938163982698783,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-3,
        3.224671290700398e-1,
        2.445134137142996,
        3.754408661907416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellProfile;

    fn params(seed: u64) -> GenParams {
        GenParams {
            capacity: Resources::new(60.0, 40.0),
            job_rate_per_hour: 30.0,
            horizon: Micros::from_days(4),
            task_cap: Some(500),
            seed,
        }
    }

    fn workload(seed: u64) -> (CellProfile, Workload) {
        let profile = CellProfile::cell_2019('a');
        let w = JobGenerator::new(&profile, params(seed)).generate();
        (profile, w)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, w1) = workload(9);
        let (_, w2) = workload(9);
        assert_eq!(w1.jobs.len(), w2.jobs.len());
        assert_eq!(w1.jobs[10], w2.jobs[10]);
        let (_, w3) = workload(10);
        assert_ne!(w1.jobs.len(), w3.jobs.len());
    }

    #[test]
    fn jobs_sorted_and_in_horizon() {
        let (_, w) = workload(1);
        assert!(w
            .jobs
            .windows(2)
            .all(|p| p[0].submit_time <= p[1].submit_time));
        assert!(w.jobs.iter().all(|j| j.submit_time < Micros::from_days(4)));
        assert!(!w.jobs.is_empty());
    }

    #[test]
    fn alloc_sets_are_two_percent_of_collections() {
        let (_, w) = workload(2);
        let frac = w.alloc_sets.len() as f64 / w.collection_count() as f64;
        assert!((0.01..0.03).contains(&frac), "alloc fraction = {frac}");
    }

    #[test]
    fn in_alloc_jobs_are_mostly_production() {
        let (_, w) = workload(3);
        let in_alloc: Vec<&JobSpec> = w.jobs.iter().filter(|j| j.alloc_set.is_some()).collect();
        assert!(!in_alloc.is_empty());
        let prod = in_alloc
            .iter()
            .filter(|j| j.tier == Tier::Production)
            .count();
        let frac = prod as f64 / in_alloc.len() as f64;
        assert!(frac > 0.85, "prod fraction of in-alloc jobs = {frac}");
    }

    #[test]
    fn parent_kill_rates_match_section_5_2() {
        let (_, w) = workload(4);
        let (mut kp, mut np, mut ko, mut no) = (0u32, 0u32, 0u32, 0u32);
        for j in &w.jobs {
            let killed = matches!(j.termination, TerminationIntent::Kill { .. });
            if j.parent.is_some() {
                np += 1;
                kp += killed as u32;
            } else {
                no += 1;
                ko += killed as u32;
            }
        }
        let with_parent = kp as f64 / np as f64;
        let without = ko as f64 / no as f64;
        assert!(
            (0.80..0.94).contains(&with_parent),
            "with parent: {with_parent}"
        );
        assert!((0.33..0.50).contains(&without), "without parent: {without}");
    }

    #[test]
    fn parents_submitted_before_children() {
        let (_, w) = workload(5);
        let submit: std::collections::BTreeMap<u64, Micros> =
            w.jobs.iter().map(|j| (j.id, j.submit_time)).collect();
        for j in &w.jobs {
            if let Some(p) = j.parent {
                assert!(submit[&p] <= j.submit_time, "job {} parent {}", j.id, p);
            }
        }
    }

    #[test]
    fn requests_dominate_usage() {
        let (_, w) = workload(6);
        for j in w.jobs.iter().take(500) {
            for t in &j.tasks {
                assert!(
                    t.request.cpu >= t.usage.base.cpu * 0.99,
                    "limit below usage"
                );
                assert!(t.request.cpu <= 0.9 && t.request.mem <= 0.9);
            }
        }
    }

    #[test]
    fn utilization_calibration_close_to_target() {
        let (profile, w) = workload(7);
        // Realized NCU-hours per tier (respecting early termination and
        // horizon truncation) vs the Figure 3 targets.
        let horizon = Micros::from_days(4);
        let mut by_tier: std::collections::BTreeMap<Tier, f64> = Default::default();
        for j in &w.jobs {
            let end = (j.submit_time + j.realized_duration()).min(horizon);
            let total: f64 = j
                .tasks
                .iter()
                .map(|t| t.usage.integral_over(j.submit_time, end).cpu)
                .sum();
            *by_tier.entry(j.tier).or_default() += total;
        }
        let cell_cpu_hours = 60.0 * horizon.as_hours_f64();
        let mut realized_total = 0.0;
        let mut target_total = 0.0;
        for tp in &profile.tiers {
            let util = by_tier.get(&tp.tier).copied().unwrap_or(0.0) / cell_cpu_hours;
            let target = tp.target_cpu_util;
            realized_total += util;
            target_total += target;
            // Per-tier means of a heavy-tailed product (tasks × duration ×
            // rate) swing widely at this tiny scale; the bound is loose.
            assert!(
                util > target * 0.3 && util < target * 3.0,
                "tier {}: realized {util:.4} vs target {target:.4}",
                tp.tier
            );
        }
        assert!(
            realized_total > target_total * 0.55 && realized_total < target_total * 1.9,
            "total realized {realized_total:.4} vs target {target_total:.4}"
        );
    }

    #[test]
    fn beb_goes_through_batch_queue() {
        let (_, w) = workload(8);
        for j in &w.jobs {
            if j.tier == Tier::BestEffortBatch {
                assert_eq!(j.scheduler, SchedulerKind::Batch);
            } else {
                assert_eq!(j.scheduler, SchedulerKind::Default);
            }
        }
    }

    #[test]
    fn no_2019_features_in_2011() {
        let profile = CellProfile::cell_2011();
        let w = JobGenerator::new(&profile, params(11)).generate();
        assert!(w.alloc_sets.is_empty());
        assert!(w.jobs.iter().all(|j| j.alloc_set.is_none()));
        assert!(w
            .jobs
            .iter()
            .all(|j| j.vertical_scaling == VerticalScalingMode::Off));
        assert!(w.jobs.iter().all(|j| j.scheduler == SchedulerKind::Default));
    }

    #[test]
    fn inverse_normal_cdf_sane() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.9599).abs() < 1e-3);
        assert!((inverse_normal_cdf(0.025) + 1.9599).abs() < 1e-3);
    }

    #[test]
    fn realized_duration_respects_intent() {
        let (_, w) = workload(12);
        for j in &w.jobs {
            match j.termination {
                TerminationIntent::Finish => assert_eq!(j.realized_duration(), j.duration),
                _ => assert!(j.realized_duration() <= j.duration),
            }
        }
    }
}
