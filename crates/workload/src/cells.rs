//! Cell profiles: every knob that differs between the 2011 cell and the
//! eight 2019 cells.
//!
//! §4 of the paper stresses the *inter-cell variation*: cell b has the
//! largest best-effort-batch share, cell a the largest production share,
//! cell h the largest mid-tier share, cell c over-allocates ~140% of its
//! memory to best-effort batch alone, and cell g lives in Singapore so
//! its diurnal cycle is phase-shifted. These profiles encode that
//! variation together with the §5 demographics (alloc sets, parents,
//! terminations) and the §8 Autopilot mode mix.

use crate::machines::{catalog_2011, catalog_2019, MachineCatalog};
use borg_trace::collection::VerticalScalingMode;
use borg_trace::priority::Tier;

/// Which trace era the profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Era {
    /// The May 2011 trace (one cell).
    Y2011,
    /// The May 2019 trace (cells a–h).
    Y2019,
}

/// Per-tier workload characteristics of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierProfile {
    /// Tier.
    pub tier: Tier,
    /// Fraction of job arrivals belonging to the tier.
    pub job_share: f64,
    /// Target average CPU usage as a fraction of cell capacity (Fig 3).
    pub target_cpu_util: f64,
    /// Target average memory usage as a fraction of cell capacity.
    pub target_mem_util: f64,
    /// Average CPU usage ÷ CPU limit — controls over-commitment (Fig 5);
    /// e.g. production CPU runs at ~30% of its allocation (§4).
    pub cpu_fill: f64,
    /// Average memory usage ÷ memory limit (~65% for production).
    pub mem_fill: f64,
    /// Mean job duration in hours (production jobs are long-running
    /// services; free jobs are short).
    pub mean_duration_hours: f64,
}

/// Everything needed to synthesize one cell's workload.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Cell name: "2011" or "a" … "h".
    pub name: String,
    /// Era.
    pub era: Era,
    /// Full-scale machine count (Table 1: ~12k machines per cell).
    pub machine_count: usize,
    /// Machine-shape catalogue.
    pub catalog: MachineCatalog,
    /// Full-scale mean job arrivals per hour (Fig 8: 964 in 2011,
    /// 3360 per 2019 cell).
    pub job_rate_per_hour: f64,
    /// Diurnal swing of arrivals and usage.
    pub diurnal_amplitude: f64,
    /// Diurnal phase in hours (cell g ≈ +15 for Singapore).
    pub timezone_phase_hours: f64,
    /// Per-tier characteristics.
    pub tiers: Vec<TierProfile>,
    /// Fraction of collections that are alloc sets (§5.1: 2%).
    pub alloc_set_fraction: f64,
    /// Fraction of jobs that run inside an alloc set (§5.1: 15%).
    pub jobs_in_alloc_fraction: f64,
    /// Fraction of in-alloc jobs that are production tier (§5.1: 95%).
    pub alloc_jobs_prod_fraction: f64,
    /// Fraction of jobs with a parent dependency.
    pub parent_fraction: f64,
    /// Probability a job with a parent ends in a kill (§5.2: 87%).
    pub kill_prob_with_parent: f64,
    /// Probability a parent-less job ends in a kill (§5.2: 41%).
    pub kill_prob_without_parent: f64,
    /// Probability a job ends in a failure of its own.
    pub fail_prob: f64,
    /// Autopilot mode mix (weights) — all `Off` in 2011 (§8).
    pub autopilot_mix: [(VerticalScalingMode, f64); 3],
    /// Whether best-effort batch jobs go through the batch queue (§3).
    pub batch_queue_for_beb: bool,
    /// Fraction of non-production jobs whose tasks fail and retry
    /// repeatedly — the §6.2 rescheduling churn (2019's reschedule:new
    /// ratio is 2.26 vs 0.66 in 2011).
    pub flaky_job_fraction: f64,
    /// Mean interruptions per task-hour for flaky jobs.
    pub flaky_interrupts_per_hour: f64,
    /// Whole-machine failure model for the fault injector.
    pub failure_model: FailureModel,
}

/// Machine-failure parameters of a cell — how often machines drop out
/// of the cell (beyond the planned §5.2 maintenance sweeps), how long
/// repairs take, and how correlated the failures are. Consumed by the
/// simulator's fault injector (`borg_sim::faults`).
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    /// Mean unplanned machine failures per machine per 30-day month.
    /// §5.2 pegs *planned* removals (OS upgrades) at roughly monthly;
    /// unplanned hardware/kernel failures are rarer.
    pub failures_per_machine_month: f64,
    /// Mean time to repair and re-add a failed machine, in hours.
    pub mean_repair_hours: f64,
    /// Machines per failure domain (rack / power bus); a correlated
    /// failure takes out the whole domain at once.
    pub domain_size: usize,
    /// Probability a failure is correlated (domain-wide) rather than a
    /// single machine.
    pub correlated_fraction: f64,
    /// Fraction of tasks on a failed machine whose termination is never
    /// observed — they go `Lost` instead of `Evict` (the §9 monitoring
    /// artifact).
    pub lost_fraction: f64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            failures_per_machine_month: 0.3,
            mean_repair_hours: 4.0,
            domain_size: 8,
            correlated_fraction: 0.1,
            lost_fraction: 0.05,
        }
    }
}

impl CellProfile {
    /// The single 2011 cell: more free-tier work, lower arrival rate,
    /// CPU over-committed but memory not, no 2019 features.
    pub fn cell_2011() -> CellProfile {
        CellProfile {
            name: "2011".to_string(),
            era: Era::Y2011,
            machine_count: 12_600,
            catalog: catalog_2011(),
            job_rate_per_hour: 964.0,
            diurnal_amplitude: 0.25,
            timezone_phase_hours: 0.0,
            tiers: vec![
                TierProfile {
                    tier: Tier::Free,
                    job_share: 0.45,
                    target_cpu_util: 0.12,
                    target_mem_util: 0.10,
                    cpu_fill: 0.40,
                    mem_fill: 0.80,
                    mean_duration_hours: 3.0,
                },
                TierProfile {
                    tier: Tier::BestEffortBatch,
                    job_share: 0.45,
                    target_cpu_util: 0.10,
                    target_mem_util: 0.08,
                    cpu_fill: 0.50,
                    mem_fill: 0.70,
                    mean_duration_hours: 3.0,
                },
                TierProfile {
                    tier: Tier::Production,
                    job_share: 0.10,
                    target_cpu_util: 0.25,
                    target_mem_util: 0.28,
                    cpu_fill: 0.30,
                    mem_fill: 0.60,
                    mean_duration_hours: 250.0,
                },
            ],
            alloc_set_fraction: 0.0,
            jobs_in_alloc_fraction: 0.0,
            alloc_jobs_prod_fraction: 0.0,
            parent_fraction: 0.20,
            kill_prob_with_parent: 0.80,
            kill_prob_without_parent: 0.45,
            fail_prob: 0.08,
            autopilot_mix: [
                (VerticalScalingMode::Off, 1.0),
                (VerticalScalingMode::Constrained, 0.0),
                (VerticalScalingMode::Full, 0.0),
            ],
            batch_queue_for_beb: false,
            flaky_job_fraction: 0.45,
            flaky_interrupts_per_hour: 1.05,
            // Older fleet hardware, longer manual repair turnaround.
            failure_model: FailureModel {
                failures_per_machine_month: 0.4,
                mean_repair_hours: 6.0,
                domain_size: 4,
                correlated_fraction: 0.08,
                lost_fraction: 0.08,
            },
        }
    }

    /// One of the eight 2019 cells, `'a'..='h'`, with the per-cell
    /// workload-mix variation of Figures 3 and 5.
    ///
    /// # Panics
    ///
    /// Panics for a cell letter outside `a..=h`.
    pub fn cell_2019(cell: char) -> CellProfile {
        assert!(('a'..='h').contains(&cell), "2019 cells are a..=h");
        // (free, beb, mid, prod) CPU utilization targets per cell; memory
        // follows with per-cell skews below.
        let (free_u, beb_u, mid_u, prod_u) = match cell {
            'a' => (0.04, 0.10, 0.03, 0.40), // largest prod share
            'b' => (0.05, 0.30, 0.03, 0.22), // largest beb share
            'c' => (0.04, 0.22, 0.04, 0.28),
            'd' => (0.05, 0.18, 0.05, 0.30),
            'e' => (0.03, 0.20, 0.06, 0.28),
            'f' => (0.06, 0.16, 0.04, 0.32),
            'g' => (0.04, 0.21, 0.05, 0.29),
            'h' => (0.04, 0.15, 0.15, 0.28), // largest mid share
            _ => unreachable!("validated range"),
        };
        // Memory:CPU usage skew per cell (cells a and h show large
        // CPU-vs-memory divergence in Fig 3).
        let mem_skew: f64 = match cell {
            'a' => 1.15,
            'h' => 0.75,
            'c' => 1.10,
            _ => 1.00,
        };
        // Cell c massively over-allocates beb memory (§4: ~140% of
        // capacity for the beb tier alone).
        let beb_mem_fill = if cell == 'c' { 0.17 } else { 0.50 };
        let phase = if cell == 'g' { 15.0 } else { 0.0 };

        CellProfile {
            name: cell.to_string(),
            era: Era::Y2019,
            machine_count: 12_000,
            catalog: catalog_2019(),
            job_rate_per_hour: 3_360.0,
            diurnal_amplitude: 0.30,
            timezone_phase_hours: phase,
            tiers: vec![
                TierProfile {
                    tier: Tier::Free,
                    job_share: 0.25,
                    target_cpu_util: free_u,
                    target_mem_util: free_u * 0.8 * mem_skew,
                    cpu_fill: 0.50,
                    mem_fill: 0.50,
                    mean_duration_hours: 2.0,
                },
                TierProfile {
                    tier: Tier::BestEffortBatch,
                    job_share: 0.50,
                    target_cpu_util: beb_u,
                    target_mem_util: beb_u * mem_skew,
                    cpu_fill: 0.60,
                    mem_fill: beb_mem_fill,
                    mean_duration_hours: 4.0,
                },
                TierProfile {
                    tier: Tier::Mid,
                    job_share: 0.08,
                    target_cpu_util: mid_u,
                    target_mem_util: mid_u * 1.2 * mem_skew,
                    cpu_fill: 0.85,
                    mem_fill: 0.85,
                    mean_duration_hours: 20.0,
                },
                TierProfile {
                    tier: Tier::Production,
                    job_share: 0.17,
                    target_cpu_util: prod_u,
                    target_mem_util: prod_u * 1.1 * mem_skew,
                    cpu_fill: 0.30,
                    mem_fill: 0.65,
                    mean_duration_hours: 250.0,
                },
            ],
            alloc_set_fraction: 0.02,
            jobs_in_alloc_fraction: 0.15,
            alloc_jobs_prod_fraction: 0.95,
            parent_fraction: 0.30,
            kill_prob_with_parent: 0.87,
            kill_prob_without_parent: 0.41,
            fail_prob: 0.06,
            autopilot_mix: [
                (VerticalScalingMode::Off, 0.55),
                (VerticalScalingMode::Constrained, 0.20),
                (VerticalScalingMode::Full, 0.25),
            ],
            batch_queue_for_beb: true,
            flaky_job_fraction: 0.42,
            flaky_interrupts_per_hour: 1.50,
            failure_model: FailureModel::default(),
        }
    }

    /// All eight 2019 cells.
    pub fn all_2019() -> Vec<CellProfile> {
        ('a'..='h').map(CellProfile::cell_2019).collect()
    }

    /// The profile's tier entry for `tier`, if present.
    pub fn tier(&self, tier: Tier) -> Option<&TierProfile> {
        self.tiers.iter().find(|t| t.tier == tier)
    }

    /// Total target CPU utilization across tiers.
    pub fn total_target_cpu_util(&self) -> f64 {
        self.tiers.iter().map(|t| t.target_cpu_util).sum()
    }

    /// Total target CPU *allocation* (usage ÷ fill) across tiers — the
    /// over-commitment level of Figures 4/5.
    pub fn total_target_cpu_alloc(&self) -> f64 {
        self.tiers
            .iter()
            .map(|t| t.target_cpu_util / t.cpu_fill)
            .sum()
    }

    /// Total target memory allocation across tiers.
    pub fn total_target_mem_alloc(&self) -> f64 {
        self.tiers
            .iter()
            .map(|t| t.target_mem_util / t.mem_fill)
            .sum()
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn job_shares_sum_to_one() {
        for p in CellProfile::all_2019()
            .iter()
            .chain([&CellProfile::cell_2011()])
        {
            let total: f64 = p.tiers.iter().map(|t| t.job_share).sum();
            assert!((total - 1.0).abs() < 1e-9, "cell {}: {total}", p.name);
        }
    }

    #[test]
    fn mid_tier_absent_in_2011() {
        let p = CellProfile::cell_2011();
        assert!(p.tier(Tier::Mid).is_none());
        assert!(p.tier(Tier::Production).is_some());
    }

    #[test]
    fn cell_extremes_match_paper() {
        let prod = |c: char| {
            CellProfile::cell_2019(c)
                .tier(Tier::Production)
                .unwrap()
                .target_cpu_util
        };
        let beb = |c: char| {
            CellProfile::cell_2019(c)
                .tier(Tier::BestEffortBatch)
                .unwrap()
                .target_cpu_util
        };
        let mid = |c: char| {
            CellProfile::cell_2019(c)
                .tier(Tier::Mid)
                .unwrap()
                .target_cpu_util
        };
        for c in 'b'..='h' {
            assert!(prod('a') >= prod(c), "cell a has the largest prod share");
        }
        for c in ['a', 'c', 'd', 'e', 'f', 'g', 'h'] {
            assert!(beb('b') >= beb(c), "cell b has the largest beb share");
        }
        for c in 'a'..='g' {
            assert!(mid('h') >= mid(c), "cell h has the largest mid share");
        }
    }

    #[test]
    fn arrival_rates_match_figure8() {
        let r2011 = CellProfile::cell_2011().job_rate_per_hour;
        let r2019 = CellProfile::cell_2019('a').job_rate_per_hour;
        assert!((r2019 / r2011 - 3.49).abs() < 0.1, "rate growth ≈ 3.5×");
    }

    #[test]
    fn overcommitment_directions() {
        // 2019: both dimensions allocated above 100% of capacity.
        let p = CellProfile::cell_2019('d');
        assert!(p.total_target_cpu_alloc() > 1.0);
        assert!(p.total_target_mem_alloc() > 1.0);
        // 2011: CPU over-committed, memory not (§4).
        let q = CellProfile::cell_2011();
        assert!(q.total_target_cpu_alloc() > 1.0);
        assert!(q.total_target_mem_alloc() < 1.0);
    }

    #[test]
    fn cell_c_overallocates_beb_memory() {
        let p = CellProfile::cell_2019('c');
        let beb = p.tier(Tier::BestEffortBatch).unwrap();
        let beb_mem_alloc = beb.target_mem_util / beb.mem_fill;
        assert!(
            (1.2..1.6).contains(&beb_mem_alloc),
            "beb mem alloc = {beb_mem_alloc}"
        );
    }

    #[test]
    fn cell_g_is_in_singapore() {
        assert_eq!(CellProfile::cell_2019('g').timezone_phase_hours, 15.0);
        assert_eq!(CellProfile::cell_2019('a').timezone_phase_hours, 0.0);
    }

    #[test]
    #[should_panic(expected = "2019 cells")]
    fn invalid_cell_panics() {
        CellProfile::cell_2019('z');
    }

    #[test]
    fn autopilot_only_in_2019() {
        let p2011 = CellProfile::cell_2011();
        assert_eq!(p2011.autopilot_mix[0], (VerticalScalingMode::Off, 1.0));
        let p2019 = CellProfile::cell_2019('a');
        let scaled: f64 = p2019.autopilot_mix[1..].iter().map(|(_, w)| w).sum();
        assert!(scaled > 0.0);
    }
}
