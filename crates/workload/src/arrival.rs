//! Job arrival processes.
//!
//! §6.1 of the paper measures job submission rates (median 3309 jobs/hour
//! per 2019 cell vs 885 in 2011) with visible diurnal cycles (§4.1 notes
//! cell g in Singapore peaks at a different wall-clock hour). Arrivals are
//! modeled as a Poisson process, optionally with a sinusoidal diurnal rate
//! sampled by thinning.

use crate::dist::Sample;
use borg_trace::time::{Micros, MICROS_PER_HOUR};
use rand::{Rng, RngExt};

/// A homogeneous Poisson process with a fixed hourly rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    /// Mean events per hour.
    pub rate_per_hour: f64,
}

impl PoissonProcess {
    /// Creates a process.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate.
    pub fn new(rate_per_hour: f64) -> PoissonProcess {
        assert!(rate_per_hour > 0.0, "rate must be positive");
        PoissonProcess { rate_per_hour }
    }

    /// Draws the next event time strictly after `now`.
    pub fn next_after<R: Rng + ?Sized>(&self, now: Micros, rng: &mut R) -> Micros {
        let gap_hours = crate::dist::Exponential::new(self.rate_per_hour).sample(rng);
        Micros(now.as_micros() + (gap_hours * MICROS_PER_HOUR as f64).ceil() as u64 + 1)
    }

    /// All event times in `[0, horizon)`.
    pub fn sample_times<R: Rng + ?Sized>(&self, horizon: Micros, rng: &mut R) -> Vec<Micros> {
        let mut out = Vec::new();
        let mut t = Micros::ZERO;
        loop {
            t = self.next_after(t, rng);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

/// A sinusoidal diurnal rate profile:
/// `rate(t) = base × (1 + amplitude × sin(2π (t_hours + phase) / 24))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalRate {
    /// Mean rate (events per hour).
    pub base_per_hour: f64,
    /// Relative swing in `[0, 1)`.
    pub amplitude: f64,
    /// Phase offset in hours — the timezone knob: cell g (Singapore) uses
    /// a phase ~15 hours ahead of the US cells.
    pub phase_hours: f64,
}

impl DiurnalRate {
    /// Creates a diurnal profile.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0` and `0 <= amplitude < 1`.
    pub fn new(base_per_hour: f64, amplitude: f64, phase_hours: f64) -> DiurnalRate {
        assert!(base_per_hour > 0.0, "base rate must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        DiurnalRate {
            base_per_hour,
            amplitude,
            phase_hours,
        }
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: Micros) -> f64 {
        let hours = t.as_hours_f64() + self.phase_hours;
        self.base_per_hour
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * hours / 24.0).sin())
    }

    /// The peak instantaneous rate (used as the thinning envelope).
    pub fn max_rate(&self) -> f64 {
        self.base_per_hour * (1.0 + self.amplitude)
    }

    /// Samples all event times in `[0, horizon)` by Lewis–Shedler
    /// thinning against the peak-rate envelope.
    pub fn sample_times<R: Rng + ?Sized>(&self, horizon: Micros, rng: &mut R) -> Vec<Micros> {
        let envelope = PoissonProcess::new(self.max_rate());
        let mut out = Vec::new();
        let mut t = Micros::ZERO;
        loop {
            t = envelope.next_after(t, rng);
            if t >= horizon {
                return out;
            }
            if rng.random::<f64>() < self.rate_at(t) / self.max_rate() {
                out.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn poisson_rate_recovered() {
        let p = PoissonProcess::new(100.0);
        let times = p.sample_times(Micros::from_hours(200), &mut rng());
        let rate = times.len() as f64 / 200.0;
        assert!((rate - 100.0).abs() < 5.0, "rate = {rate}");
    }

    #[test]
    fn poisson_times_strictly_increasing() {
        let p = PoissonProcess::new(1000.0);
        let times = p.sample_times(Micros::from_hours(5), &mut rng());
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|&t| t < Micros::from_hours(5)));
    }

    #[test]
    fn diurnal_mean_rate_preserved() {
        let d = DiurnalRate::new(50.0, 0.4, 0.0);
        let times = d.sample_times(Micros::from_days(20), &mut rng());
        let rate = times.len() as f64 / (20.0 * 24.0);
        assert!((rate - 50.0).abs() < 3.0, "rate = {rate}");
    }

    #[test]
    fn diurnal_peak_and_trough_hours_differ() {
        let d = DiurnalRate::new(100.0, 0.5, 0.0);
        let times = d.sample_times(Micros::from_days(30), &mut rng());
        // Count events near the sinusoid peak (hour-of-day 6) and trough
        // (hour 18).
        let mut peak = 0;
        let mut trough = 0;
        for t in times {
            let hod = t.as_hours_f64() % 24.0;
            if (5.0..7.0).contains(&hod) {
                peak += 1;
            } else if (17.0..19.0).contains(&hod) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 1.8 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn phase_shifts_the_peak() {
        let base = DiurnalRate::new(100.0, 0.5, 0.0);
        let shifted = DiurnalRate::new(100.0, 0.5, 12.0);
        // At the base peak hour, the shifted profile is at its trough.
        let t = Micros::from_hours(6);
        assert!(base.rate_at(t) > 1.4 * shifted.rate_at(t));
    }

    #[test]
    fn rate_at_bounds() {
        let d = DiurnalRate::new(10.0, 0.3, 2.0);
        for h in 0..48 {
            let r = d.rate_at(Micros::from_hours(h));
            assert!(r >= 10.0 * 0.7 - 1e-9 && r <= d.max_rate() + 1e-9);
        }
    }
}
