#![warn(missing_docs)]

//! Workload synthesis for Borg cells.
//!
//! The public 2019 trace is 2.8 TiB of proprietary BigQuery data; this
//! crate is the reproduction's substitute. It synthesizes workloads whose
//! statistics match everything *Borg: the Next Generation* publishes about
//! the real traces: heavy-tailed per-job usage integrals (Table 2), the
//! per-tier workload mixes of each cell (Figures 3/5), tasks-per-job
//! distributions (Figure 11), job arrival rates and diurnal cycles
//! (Figures 2/8), machine-shape catalogues (Figure 1, Table 1), alloc-set
//! and dependency demographics (§5), and Autopilot mode mixes (§8).
//!
//! Everything is seeded and deterministic: the same profile and seed
//! always produce the same workload.

pub mod arrival;
pub mod cells;
pub mod dist;
pub mod integral;
pub mod jobgen;
pub mod jobmix;
pub mod machines;
pub mod usage_model;

pub use arrival::{DiurnalRate, PoissonProcess};
pub use cells::{CellProfile, Era, FailureModel, TierProfile};
pub use dist::{BodyTail, BoundedPareto, Discrete, Exponential, LogNormal, Pareto, Uniform};
pub use integral::{IntegralModel, JobIntegral};
pub use jobgen::{JobGenerator, JobSpec, TaskSpec, TerminationIntent};
pub use machines::{catalog_2011, catalog_2019, MachineCatalog};
pub use usage_model::UsageProcess;
