//! Probability distributions.
//!
//! Hand-rolled samplers built only on uniform randomness from `rand`, so
//! every draw is reproducible from a seed and the math is visible in one
//! place. The key distribution is the [`Pareto`] family: §7 of the paper
//! shows per-job resource consumption is Pareto with tail index α < 1.

use rand::{Rng, RngExt};

/// A continuous distribution that can be sampled.
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Uniform {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds"
        );
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }
}

/// Exponential with the given rate (mean `1 / rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter λ.
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not strictly positive.
    pub fn new(rate: f64) -> Exponential {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential rate must be positive"
        );
        Exponential { rate }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - u avoids ln(0).
        -(1.0 - rng.random::<f64>()).ln() / self.rate
    }
}

/// Unbounded Pareto: `P(X > x) = (x_min / x)^alpha` for `x >= x_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Tail index α.
    pub alpha: f64,
    /// Scale (minimum value).
    pub x_min: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `alpha` or `x_min`.
    pub fn new(alpha: f64, x_min: f64) -> Pareto {
        assert!(
            alpha > 0.0 && x_min > 0.0,
            "pareto parameters must be positive"
        );
        Pareto { alpha, x_min }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.random::<f64>(); // in (0, 1]
        self.x_min * u.powf(-1.0 / self.alpha)
    }
}

/// Pareto truncated to `[lo, hi]` by inverse-CDF of the bounded law.
///
/// Heavy-tailed workload models must be bounded in practice: the largest
/// job in the 2019 trace used 370k NCU-hours, not infinity, and α < 1
/// makes the unbounded mean diverge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail index α.
    pub alpha: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> BoundedPareto {
        assert!(
            alpha > 0.0 && lo > 0.0 && lo < hi,
            "bad bounded-pareto parameters"
        );
        BoundedPareto { alpha, lo, hi }
    }

    /// Analytic second moment `E[X²]` of the bounded Pareto.
    pub fn second_moment(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        let norm = 1.0 - (l / h).powf(a);
        if (a - 2.0).abs() < 1e-12 {
            l.powf(a) * a * (h.ln() - l.ln()) / norm
        } else {
            (l.powf(a) * a / (a - 2.0)) * (l.powf(2.0 - a) - h.powf(2.0 - a)) / norm
        }
    }

    /// Analytic mean of the bounded Pareto.
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            let la = l.powf(a);
            la / (1.0 - (l / h).powf(a)) * a * (h.ln() - l.ln())
        } else {
            (l.powf(a) * a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
                / (1.0 - (l / h).powf(a))
        }
    }
}

impl Sample for BoundedPareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.random::<f64>();
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        // Inverse CDF: x = (la - u (la - ha))^(-1/alpha).
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }
}

/// Log-normal: `exp(mu + sigma * Z)` with `Z` standard normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Location of the underlying normal.
    pub mu: f64,
    /// Scale of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics on negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Log-normal parameterized by its median and the multiplicative
    /// spread `sigma` (in log space).
    pub fn with_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "lognormal median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Analytic mean: `exp(mu + sigma² / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Analytic second moment: `exp(2mu + 2sigma²)`.
    pub fn second_moment(&self) -> f64 {
        (2.0 * self.mu + 2.0 * self.sigma * self.sigma).exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A body-plus-tail mixture: with probability `tail_prob` draw from the
/// heavy tail, otherwise from the body. This is the §7 usage-integral
/// shape: a log-normal body of "mice" with a bounded-Pareto tail of
/// "hogs".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyTail {
    /// Body distribution (the mice).
    pub body: LogNormal,
    /// Tail distribution (the hogs).
    pub tail: BoundedPareto,
    /// Probability of drawing from the tail.
    pub tail_prob: f64,
}

impl BodyTail {
    /// Creates a body-tail mixture.
    ///
    /// # Panics
    ///
    /// Panics when `tail_prob` is outside `[0, 1]`.
    pub fn new(body: LogNormal, tail: BoundedPareto, tail_prob: f64) -> BodyTail {
        assert!(
            (0.0..=1.0).contains(&tail_prob),
            "tail_prob must be a probability"
        );
        BodyTail {
            body,
            tail,
            tail_prob,
        }
    }
}

impl BodyTail {
    /// Analytic mean of the mixture.
    pub fn mean(&self) -> f64 {
        (1.0 - self.tail_prob) * self.body.mean() + self.tail_prob * self.tail.mean()
    }

    /// Analytic second moment of the mixture.
    pub fn second_moment(&self) -> f64 {
        (1.0 - self.tail_prob) * self.body.second_moment()
            + self.tail_prob * self.tail.second_moment()
    }

    /// Analytic variance of the mixture.
    pub fn variance(&self) -> f64 {
        self.second_moment() - self.mean() * self.mean()
    }

    /// Analytic squared coefficient of variation.
    pub fn c_squared(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }
}

impl Sample for BodyTail {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.random::<f64>() < self.tail_prob {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        }
    }
}

/// A discrete distribution over arbitrary items with relative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete<T> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> Discrete<T> {
    /// Creates a discrete distribution from `(item, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on an empty list, a negative weight, or an all-zero total.
    pub fn new(weighted: Vec<(T, f64)>) -> Discrete<T> {
        assert!(!weighted.is_empty(), "discrete distribution needs items");
        let mut items = Vec::with_capacity(weighted.len());
        let mut cumulative = Vec::with_capacity(weighted.len());
        let mut total = 0.0;
        for (item, w) in weighted {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            total += w;
            items.push(item);
            cumulative.push(total);
        }
        assert!(total > 0.0, "total weight must be positive");
        Discrete { items, cumulative }
    }

    /// Draws one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        // lint: library-panic-ok (constructor asserts a non-empty, positive-weight table) unwind-across-pool-ok (construction precedes dispatch, so the invariant holds on workers)
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.random::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        self.items[idx.min(self.items.len() - 1)].clone()
    }

    /// The items.
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB0_4C)
    }

    fn empirical_mean<D: Sample>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_range_and_mean() {
        let d = Uniform::new(2.0, 4.0);
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((empirical_mean(&d, 20_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(5.0);
        assert!((empirical_mean(&d, 100_000) - 5.0).abs() < 0.1);
    }

    #[test]
    fn pareto_support_and_tail() {
        let d = Pareto::new(2.0, 1.0);
        let mut r = rng();
        let n = 50_000;
        let mut above_10 = 0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!(x >= 1.0);
            if x > 10.0 {
                above_10 += 1;
            }
        }
        // P(X > 10) = 10^-2 = 1%.
        let frac = above_10 as f64 / n as f64;
        assert!((frac - 0.01).abs() < 0.003, "frac = {frac}");
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_mean() {
        let d = BoundedPareto::new(0.7, 1.0, 10_000.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=10_000.0).contains(&x));
        }
        let analytic = d.mean();
        let empirical = empirical_mean(&d, 400_000);
        assert!(
            (empirical - analytic).abs() / analytic < 0.15,
            "analytic {analytic}, empirical {empirical}"
        );
    }

    #[test]
    fn bounded_pareto_alpha_one() {
        let d = BoundedPareto::new(1.0, 1.0, 100.0);
        let analytic = d.mean();
        // For α = 1: mean = ln(hi/lo) / (1 - lo/hi) ≈ 4.605 / 0.99.
        assert!((analytic - 100.0f64.ln() / 0.99).abs() < 1e-9);
        let empirical = empirical_mean(&d, 200_000);
        assert!((empirical - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::with_median(2.0, 0.5);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 2.0).abs() < 0.05, "median = {median}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.03);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn body_tail_mixture_fraction() {
        let d = BodyTail::new(
            LogNormal::with_median(0.001, 1.0),
            BoundedPareto::new(0.7, 1.0, 1e6),
            0.01,
        );
        let mut r = rng();
        let n = 100_000;
        let in_tail = (0..n).filter(|_| d.sample(&mut r) >= 1.0).count();
        let frac = in_tail as f64 / n as f64;
        // Tail draws are all >= 1; a tiny body fraction also exceeds 1.
        assert!(frac > 0.008 && frac < 0.03, "frac = {frac}");
    }

    #[test]
    fn discrete_frequencies() {
        let d = Discrete::new(vec![("a", 1.0), ("b", 3.0)]);
        let mut r = rng();
        let n = 40_000;
        let b = (0..n).filter(|_| d.sample(&mut r) == "b").count();
        let frac = b as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn discrete_zero_weight_items_never_drawn() {
        let d = Discrete::new(vec![("never", 0.0), ("always", 1.0)]);
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut r), "always");
        }
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn discrete_all_zero_panics() {
        Discrete::new(vec![("a", 0.0)]);
    }

    #[test]
    fn bounded_pareto_second_moment_matches_empirical() {
        let d = BoundedPareto::new(1.5, 1.0, 100.0);
        let mut r = rng();
        let n = 400_000;
        let m2: f64 = (0..n)
            .map(|_| {
                let x = d.sample(&mut r);
                x * x
            })
            .sum::<f64>()
            / n as f64;
        let analytic = d.second_moment();
        assert!(
            (m2 - analytic).abs() / analytic < 0.05,
            "emp {m2} vs {analytic}"
        );
    }

    #[test]
    fn body_tail_analytic_moments() {
        let d = BodyTail::new(
            LogNormal::with_median(0.001, 1.0),
            BoundedPareto::new(0.7, 1.0, 1e4),
            0.02,
        );
        assert!(d.mean() > 0.0);
        assert!(d.variance() > 0.0);
        assert!(
            d.c_squared() > 1.0,
            "heavy mixture has C² above exponential"
        );
        // Mixture mean between its components' contributions.
        assert!(d.mean() < d.tail.mean());
    }

    #[test]
    fn determinism_from_seed() {
        let d = Pareto::new(0.69, 1.0);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), d.sample(&mut r2));
        }
    }
}
