//! Property tests over the workload generators.

use borg_trace::resources::Resources;
use borg_trace::time::Micros;
use borg_workload::arrival::DiurnalRate;
use borg_workload::cells::CellProfile;
use borg_workload::jobgen::{GenParams, JobGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn workload_invariants_hold_for_any_seed(seed in 0u64..1_000_000) {
        let profile = CellProfile::cell_2019('e');
        let w = JobGenerator::new(
            &profile,
            GenParams {
                capacity: Resources::new(30.0, 20.0),
                job_rate_per_hour: 12.0,
                horizon: Micros::from_days(2),
                task_cap: Some(100),
                seed,
            },
        )
        .generate();
        // Jobs sorted, in horizon, non-empty.
        prop_assert!(!w.jobs.is_empty());
        prop_assert!(w.jobs.windows(2).all(|p| p[0].submit_time <= p[1].submit_time));
        for j in &w.jobs {
            prop_assert!(j.submit_time < Micros::from_days(2));
            prop_assert!(!j.tasks.is_empty());
            prop_assert!(j.duration > Micros::ZERO);
            for t in &j.tasks {
                // Requests dominate the usage process and are placeable.
                prop_assert!(t.request.cpu >= t.usage.base.cpu * 0.999);
                prop_assert!(t.request.cpu <= 0.9 && t.request.mem <= 0.9);
                prop_assert!(t.request.cpu > 0.0 && t.request.mem > 0.0);
            }
        }
        // Ids unique across jobs and alloc sets.
        let mut ids: Vec<u64> = w.jobs.iter().map(|j| j.id).collect();
        ids.extend(w.alloc_sets.iter().map(|a| a.id));
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "collection ids are unique");
    }

    #[test]
    fn diurnal_rate_never_negative(base in 0.1f64..1000.0, amp in 0.0f64..0.99, phase in -48.0f64..48.0) {
        let d = DiurnalRate::new(base, amp, phase);
        for h in 0..96 {
            let r = d.rate_at(Micros::from_minutes(h * 15));
            prop_assert!(r >= 0.0);
            prop_assert!(r <= d.max_rate() + 1e-9);
        }
    }

    #[test]
    fn integral_model_samples_valid(seed in 0u64..1_000_000) {
        use borg_workload::integral::IntegralModel;
        let mut rng = StdRng::seed_from_u64(seed);
        for model in [IntegralModel::model_2019(), IntegralModel::model_2011()] {
            for j in model.sample_many(200, &mut rng) {
                prop_assert!(j.ncu_hours > 0.0 && j.ncu_hours.is_finite());
                prop_assert!(j.nmu_hours > 0.0 && j.nmu_hours.is_finite());
            }
        }
    }
}
