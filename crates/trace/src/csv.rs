//! Plain-text (CSV) round-trip of trace tables.
//!
//! The 2011 trace shipped as CSV files; this module writes and reads the
//! same style for every table in the model so traces can be persisted,
//! inspected with standard tools, and diffed. Fields never contain commas,
//! so no quoting is needed.

use crate::collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
};
use crate::instance::{InstanceEvent, InstanceId};
use crate::machine::{MachineEvent, MachineEventType, MachineId, Platform};
use crate::priority::Priority;
use crate::resources::Resources;
use crate::state::EventType;
use crate::time::Micros;
use crate::trace::{SchemaVersion, Trace};
use crate::usage::{CpuHistogram, UsageRecord};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors arising while parsing a CSV trace table.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError::Parse {
        line,
        message: message.into(),
    }
}

fn field<'a>(parts: &'a [&'a str], idx: usize, line: usize) -> Result<&'a str, CsvError> {
    parts
        .get(idx)
        .copied()
        .ok_or_else(|| parse_err(line, format!("missing field {idx}")))
}

fn parse_u64(s: &str, line: usize) -> Result<u64, CsvError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad integer {s:?}")))
}

fn parse_f64(s: &str, line: usize) -> Result<f64, CsvError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad float {s:?}")))
}

fn parse_event(s: &str, line: usize) -> Result<EventType, CsvError> {
    EventType::parse(s).ok_or_else(|| parse_err(line, format!("bad event {s:?}")))
}

fn opt_u64(s: &str, line: usize) -> Result<Option<u64>, CsvError> {
    if s.is_empty() {
        Ok(None)
    } else {
        parse_u64(s, line).map(Some)
    }
}

/// Writes the machine-events table.
pub fn write_machine_events(w: &mut impl Write, events: &[MachineEvent]) -> io::Result<()> {
    writeln!(w, "time,machine_id,event_type,cpu,mem,platform")?;
    for e in events {
        let ty = match e.event_type {
            MachineEventType::Add => "add",
            MachineEventType::Remove => "remove",
            MachineEventType::Update => "update",
        };
        writeln!(
            w,
            "{},{},{},{},{},{}",
            e.time.as_micros(),
            e.machine_id.0,
            ty,
            e.capacity.cpu,
            e.capacity.mem,
            e.platform.0
        )?;
    }
    Ok(())
}

/// Reads the machine-events table.
pub fn read_machine_events(r: impl BufRead) -> Result<Vec<MachineEvent>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        let n = i + 1;
        let parts: Vec<&str> = line.split(',').collect();
        let ty = match field(&parts, 2, n)? {
            "add" => MachineEventType::Add,
            "remove" => MachineEventType::Remove,
            "update" => MachineEventType::Update,
            other => return Err(parse_err(n, format!("bad machine event {other:?}"))),
        };
        out.push(MachineEvent {
            time: Micros(parse_u64(field(&parts, 0, n)?, n)?),
            machine_id: MachineId(parse_u64(field(&parts, 1, n)?, n)? as u32),
            event_type: ty,
            capacity: Resources::new(
                parse_f64(field(&parts, 3, n)?, n)?,
                parse_f64(field(&parts, 4, n)?, n)?,
            ),
            platform: Platform(parse_u64(field(&parts, 5, n)?, n)? as u8),
        });
    }
    Ok(out)
}

fn scheduler_name(s: SchedulerKind) -> &'static str {
    match s {
        SchedulerKind::Default => "default",
        SchedulerKind::Batch => "batch",
    }
}

/// Writes the collection-events table.
pub fn write_collection_events(w: &mut impl Write, events: &[CollectionEvent]) -> io::Result<()> {
    writeln!(
        w,
        "time,collection_id,event_type,collection_type,priority,scheduler,vertical_scaling,parent_id,alloc_collection_id,user_id"
    )?;
    for e in events {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            e.time.as_micros(),
            e.collection_id.0,
            e.event_type.name(),
            e.collection_type.name(),
            e.priority.raw(),
            scheduler_name(e.scheduler),
            e.vertical_scaling.name(),
            e.parent_id.map_or(String::new(), |p| p.0.to_string()),
            e.alloc_collection_id
                .map_or(String::new(), |p| p.0.to_string()),
            e.user_id.0,
        )?;
    }
    Ok(())
}

/// Reads the collection-events table.
pub fn read_collection_events(r: impl BufRead) -> Result<Vec<CollectionEvent>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        let n = i + 1;
        let parts: Vec<&str> = line.split(',').collect();
        let ctype = match field(&parts, 3, n)? {
            "job" => CollectionType::Job,
            "alloc_set" => CollectionType::AllocSet,
            other => return Err(parse_err(n, format!("bad collection type {other:?}"))),
        };
        let sched = match field(&parts, 5, n)? {
            "default" => SchedulerKind::Default,
            "batch" => SchedulerKind::Batch,
            other => return Err(parse_err(n, format!("bad scheduler {other:?}"))),
        };
        let vs = match field(&parts, 6, n)? {
            "off" => VerticalScalingMode::Off,
            "constrained" => VerticalScalingMode::Constrained,
            "full" => VerticalScalingMode::Full,
            other => return Err(parse_err(n, format!("bad scaling mode {other:?}"))),
        };
        out.push(CollectionEvent {
            time: Micros(parse_u64(field(&parts, 0, n)?, n)?),
            collection_id: CollectionId(parse_u64(field(&parts, 1, n)?, n)?),
            event_type: parse_event(field(&parts, 2, n)?, n)?,
            collection_type: ctype,
            priority: Priority::new(parse_u64(field(&parts, 4, n)?, n)? as u16),
            scheduler: sched,
            vertical_scaling: vs,
            parent_id: opt_u64(field(&parts, 7, n)?, n)?.map(CollectionId),
            alloc_collection_id: opt_u64(field(&parts, 8, n)?, n)?.map(CollectionId),
            user_id: UserId(parse_u64(field(&parts, 9, n)?, n)? as u32),
        });
    }
    Ok(out)
}

/// Writes the instance-events table.
pub fn write_instance_events(w: &mut impl Write, events: &[InstanceEvent]) -> io::Result<()> {
    writeln!(
        w,
        "time,collection_id,instance_index,event_type,machine_id,cpu_request,mem_request,priority,alloc_collection_id,alloc_instance_index"
    )?;
    for e in events {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            e.time.as_micros(),
            e.instance_id.collection.0,
            e.instance_id.index,
            e.event_type.name(),
            e.machine_id.map_or(String::new(), |m| m.0.to_string()),
            e.request.cpu,
            e.request.mem,
            e.priority.raw(),
            e.alloc_instance
                .map_or(String::new(), |a| a.collection.0.to_string()),
            e.alloc_instance
                .map_or(String::new(), |a| a.index.to_string()),
        )?;
    }
    Ok(())
}

/// Reads the instance-events table.
pub fn read_instance_events(r: impl BufRead) -> Result<Vec<InstanceEvent>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        let n = i + 1;
        let parts: Vec<&str> = line.split(',').collect();
        let alloc_col = opt_u64(field(&parts, 8, n)?, n)?;
        let alloc_idx = opt_u64(field(&parts, 9, n)?, n)?;
        let alloc_instance = match (alloc_col, alloc_idx) {
            (Some(c), Some(x)) => Some(InstanceId::new(CollectionId(c), x as u32)),
            (None, None) => None,
            _ => return Err(parse_err(n, "half-specified alloc instance")),
        };
        out.push(InstanceEvent {
            time: Micros(parse_u64(field(&parts, 0, n)?, n)?),
            instance_id: InstanceId::new(
                CollectionId(parse_u64(field(&parts, 1, n)?, n)?),
                parse_u64(field(&parts, 2, n)?, n)? as u32,
            ),
            event_type: parse_event(field(&parts, 3, n)?, n)?,
            machine_id: opt_u64(field(&parts, 4, n)?, n)?.map(|m| MachineId(m as u32)),
            request: Resources::new(
                parse_f64(field(&parts, 5, n)?, n)?,
                parse_f64(field(&parts, 6, n)?, n)?,
            ),
            priority: Priority::new(parse_u64(field(&parts, 7, n)?, n)? as u16),
            alloc_instance,
        });
    }
    Ok(out)
}

/// Writes the usage table (histogram inlined as 21 extra columns).
pub fn write_usage(w: &mut impl Write, records: &[UsageRecord]) -> io::Result<()> {
    write!(
        w,
        "start,end,collection_id,instance_index,machine_id,avg_cpu,avg_mem,max_cpu,max_mem,limit_cpu,limit_mem"
    )?;
    for p in crate::usage::CPU_HISTOGRAM_PERCENTILES {
        write!(w, ",p{p}")?;
    }
    writeln!(w)?;
    for u in records {
        write!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{}",
            u.start.as_micros(),
            u.end.as_micros(),
            u.instance_id.collection.0,
            u.instance_id.index,
            u.machine_id.0,
            u.avg_usage.cpu,
            u.avg_usage.mem,
            u.max_usage.cpu,
            u.max_usage.mem,
            u.limit.cpu,
            u.limit.mem,
        )?;
        for v in u.cpu_histogram.0 {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads the usage table.
pub fn read_usage(r: impl BufRead) -> Result<Vec<UsageRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        let n = i + 1;
        let parts: Vec<&str> = line.split(',').collect();
        let mut hist = [0.0f32; 21];
        for (k, h) in hist.iter_mut().enumerate() {
            *h = parse_f64(field(&parts, 11 + k, n)?, n)? as f32;
        }
        out.push(UsageRecord {
            start: Micros(parse_u64(field(&parts, 0, n)?, n)?),
            end: Micros(parse_u64(field(&parts, 1, n)?, n)?),
            instance_id: InstanceId::new(
                CollectionId(parse_u64(field(&parts, 2, n)?, n)?),
                parse_u64(field(&parts, 3, n)?, n)? as u32,
            ),
            machine_id: MachineId(parse_u64(field(&parts, 4, n)?, n)? as u32),
            avg_usage: Resources::new(
                parse_f64(field(&parts, 5, n)?, n)?,
                parse_f64(field(&parts, 6, n)?, n)?,
            ),
            max_usage: Resources::new(
                parse_f64(field(&parts, 7, n)?, n)?,
                parse_f64(field(&parts, 8, n)?, n)?,
            ),
            limit: Resources::new(
                parse_f64(field(&parts, 9, n)?, n)?,
                parse_f64(field(&parts, 10, n)?, n)?,
            ),
            cpu_histogram: CpuHistogram(hist),
        });
    }
    Ok(out)
}

/// Writes every table of a trace into a directory, one file per table.
pub fn write_trace_dir(trace: &Trace, dir: &std::path::Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("machine_events.csv"))?);
    write_machine_events(&mut f, &trace.machine_events)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("collection_events.csv"))?);
    write_collection_events(&mut f, &trace.collection_events)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("instance_events.csv"))?);
    write_instance_events(&mut f, &trace.instance_events)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("instance_usage.csv"))?);
    write_usage(&mut f, &trace.usage)?;
    std::fs::write(
        dir.join("metadata.csv"),
        format!(
            "cell_name,schema,horizon\n{},{},{}\n",
            trace.cell_name,
            trace.schema.map_or("unknown", |s| s.name()),
            trace.horizon.as_micros()
        ),
    )?;
    Ok(())
}

/// Reads a trace previously written by [`write_trace_dir`].
pub fn read_trace_dir(dir: &std::path::Path) -> Result<Trace, CsvError> {
    let open = |name: &str| -> Result<std::io::BufReader<std::fs::File>, CsvError> {
        Ok(std::io::BufReader::new(std::fs::File::open(
            dir.join(name),
        )?))
    };
    let meta = std::fs::read_to_string(dir.join("metadata.csv"))?;
    let line = meta
        .lines()
        .nth(1)
        .ok_or_else(|| parse_err(2, "missing metadata row"))?;
    let parts: Vec<&str> = line.split(',').collect();
    let cell_name = field(&parts, 0, 2)?.to_string();
    let schema = match field(&parts, 1, 2)? {
        "v2-2011" => Some(SchemaVersion::V2Trace2011),
        "v3-2019" => Some(SchemaVersion::V3Trace2019),
        _ => None,
    };
    let horizon = Micros(parse_u64(field(&parts, 2, 2)?, 2)?);
    Ok(Trace {
        cell_name,
        schema,
        horizon,
        machine_events: read_machine_events(open("machine_events.csv")?)?,
        collection_events: read_collection_events(open("collection_events.csv")?)?,
        instance_events: read_instance_events(open("instance_events.csv")?)?,
        usage: read_usage(open("instance_usage.csv")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("x", SchemaVersion::V3Trace2019, Micros::from_days(2));
        t.machine_events.push(MachineEvent::add(
            Micros::ZERO,
            MachineId(3),
            Resources::new(0.75, 0.5),
            Platform(2),
        ));
        t.collection_events.push(CollectionEvent {
            time: Micros::from_secs(5),
            collection_id: CollectionId(11),
            event_type: EventType::Submit,
            collection_type: CollectionType::Job,
            priority: Priority::new(117),
            scheduler: SchedulerKind::Batch,
            vertical_scaling: VerticalScalingMode::Constrained,
            parent_id: Some(CollectionId(4)),
            alloc_collection_id: None,
            user_id: UserId(9),
        });
        t.instance_events.push(InstanceEvent {
            time: Micros::from_secs(6),
            instance_id: InstanceId::new(CollectionId(11), 2),
            event_type: EventType::Schedule,
            machine_id: Some(MachineId(3)),
            request: Resources::new(0.25, 0.125),
            priority: Priority::new(117),
            alloc_instance: Some(InstanceId::new(CollectionId(4), 0)),
        });
        t.usage.push(UsageRecord {
            start: Micros::from_minutes(5),
            end: Micros::from_minutes(10),
            instance_id: InstanceId::new(CollectionId(11), 2),
            machine_id: MachineId(3),
            avg_usage: Resources::new(0.1, 0.05),
            max_usage: Resources::new(0.2, 0.06),
            limit: Resources::new(0.25, 0.125),
            cpu_histogram: CpuHistogram::from_samples(&[0.05, 0.1, 0.15, 0.2]),
        });
        t
    }

    fn round_trip<T, W, R>(items: &[T], write: W, read: R) -> Vec<T>
    where
        W: Fn(&mut Vec<u8>, &[T]) -> io::Result<()>,
        R: Fn(&[u8]) -> Result<Vec<T>, CsvError>,
    {
        let mut buf = Vec::new();
        write(&mut buf, items).unwrap();
        read(&buf).unwrap()
    }

    #[test]
    fn machine_events_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.machine_events, write_machine_events, |b| {
            read_machine_events(b)
        });
        assert_eq!(back, t.machine_events);
    }

    #[test]
    fn collection_events_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.collection_events, write_collection_events, |b| {
            read_collection_events(b)
        });
        assert_eq!(back, t.collection_events);
    }

    #[test]
    fn instance_events_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.instance_events, write_instance_events, |b| {
            read_instance_events(b)
        });
        assert_eq!(back, t.instance_events);
    }

    #[test]
    fn usage_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.usage, write_usage, |b| read_usage(b));
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].instance_id, t.usage[0].instance_id);
        assert_eq!(back[0].limit, t.usage[0].limit);
        assert!((back[0].cpu_histogram.max() - t.usage[0].cpu_histogram.max()).abs() < 1e-6);
    }

    #[test]
    fn directory_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("borg_csv_test_{}", std::process::id()));
        write_trace_dir(&t, &dir).unwrap();
        let back = read_trace_dir(&dir).unwrap();
        assert_eq!(back.cell_name, t.cell_name);
        assert_eq!(back.schema, t.schema);
        assert_eq!(back.horizon, t.horizon);
        assert_eq!(back.machine_events, t.machine_events);
        assert_eq!(back.collection_events, t.collection_events);
        assert_eq!(back.instance_events, t.instance_events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_errors_reported_with_line() {
        let bad = b"header\n1,2,notanevent,job,0,default,off,,,0\n";
        let err = read_collection_events(&bad[..]).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn half_specified_alloc_rejected() {
        let bad = b"header\n1,2,submit,,0.1,0.1,200,5,\n";
        assert!(read_instance_events(&bad[..]).is_err());
    }
}
