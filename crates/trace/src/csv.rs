//! Plain-text (CSV) round-trip of trace tables.
//!
//! The 2011 trace shipped as CSV files; this module writes and reads the
//! same style for every table in the model so traces can be persisted,
//! inspected with standard tools, and diffed. Fields never contain commas,
//! so no quoting is needed.

use crate::collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
};
use crate::instance::{InstanceEvent, InstanceId};
use crate::machine::{MachineEvent, MachineEventType, MachineId, Platform};
use crate::priority::Priority;
use crate::resources::Resources;
use crate::state::EventType;
use crate::time::Micros;
use crate::trace::{SchemaVersion, Trace};
use crate::usage::{CpuHistogram, UsageRecord};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors arising while parsing a CSV trace table.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An error attributed to one of the per-table files of a trace
    /// directory, so `line 17: bad integer` says which CSV it came from.
    Table {
        /// File name within the trace directory (e.g. `instance_events.csv`).
        file: String,
        /// The underlying error.
        source: Box<CsvError>,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Table { file, source } => write!(f, "{file}: {source}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError::Parse {
        line,
        message: message.into(),
    }
}

fn in_file(file: &str, e: CsvError) -> CsvError {
    CsvError::Table {
        file: file.to_string(),
        source: Box::new(e),
    }
}

fn field<'a>(parts: &'a [&'a str], idx: usize, line: usize) -> Result<&'a str, CsvError> {
    parts
        .get(idx)
        .copied()
        .ok_or_else(|| parse_err(line, format!("missing field {idx}")))
}

fn parse_u64(s: &str, line: usize) -> Result<u64, CsvError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad integer {s:?}")))
}

fn parse_f64(s: &str, line: usize) -> Result<f64, CsvError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad float {s:?}")))
}

fn parse_event(s: &str, line: usize) -> Result<EventType, CsvError> {
    EventType::parse(s).ok_or_else(|| parse_err(line, format!("bad event {s:?}")))
}

fn opt_u64(s: &str, line: usize) -> Result<Option<u64>, CsvError> {
    if s.is_empty() {
        Ok(None)
    } else {
        parse_u64(s, line).map(Some)
    }
}

/// Writes the machine-events table.
pub fn write_machine_events(w: &mut impl Write, events: &[MachineEvent]) -> io::Result<()> {
    writeln!(w, "time,machine_id,event_type,cpu,mem,platform")?;
    for e in events {
        let ty = match e.event_type {
            MachineEventType::Add => "add",
            MachineEventType::Remove => "remove",
            MachineEventType::Update => "update",
        };
        writeln!(
            w,
            "{},{},{},{},{},{}",
            e.time.as_micros(),
            e.machine_id.0,
            ty,
            e.capacity.cpu,
            e.capacity.mem,
            e.platform.0
        )?;
    }
    Ok(())
}

/// Parses one data row of the machine-events table (`n` is its 1-based
/// line number, used in error messages only).
pub fn parse_machine_line(line: &str, n: usize) -> Result<MachineEvent, CsvError> {
    let parts: Vec<&str> = line.split(',').collect();
    let ty = match field(&parts, 2, n)? {
        "add" => MachineEventType::Add,
        "remove" => MachineEventType::Remove,
        "update" => MachineEventType::Update,
        other => return Err(parse_err(n, format!("bad machine event {other:?}"))),
    };
    Ok(MachineEvent {
        time: Micros(parse_u64(field(&parts, 0, n)?, n)?),
        machine_id: MachineId(parse_u64(field(&parts, 1, n)?, n)? as u32),
        event_type: ty,
        capacity: Resources::new(
            parse_f64(field(&parts, 3, n)?, n)?,
            parse_f64(field(&parts, 4, n)?, n)?,
        ),
        platform: Platform(parse_u64(field(&parts, 5, n)?, n)? as u8),
    })
}

/// Reads the machine-events table.
pub fn read_machine_events(r: impl BufRead) -> Result<Vec<MachineEvent>, CsvError> {
    read_table_strict(r, parse_machine_line)
}

fn scheduler_name(s: SchedulerKind) -> &'static str {
    match s {
        SchedulerKind::Default => "default",
        SchedulerKind::Batch => "batch",
    }
}

/// Writes the collection-events table.
pub fn write_collection_events(w: &mut impl Write, events: &[CollectionEvent]) -> io::Result<()> {
    writeln!(
        w,
        "time,collection_id,event_type,collection_type,priority,scheduler,vertical_scaling,parent_id,alloc_collection_id,user_id"
    )?;
    for e in events {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            e.time.as_micros(),
            e.collection_id.0,
            e.event_type.name(),
            e.collection_type.name(),
            e.priority.raw(),
            scheduler_name(e.scheduler),
            e.vertical_scaling.name(),
            e.parent_id.map_or(String::new(), |p| p.0.to_string()),
            e.alloc_collection_id
                .map_or(String::new(), |p| p.0.to_string()),
            e.user_id.0,
        )?;
    }
    Ok(())
}

/// Parses one data row of the collection-events table.
pub fn parse_collection_line(line: &str, n: usize) -> Result<CollectionEvent, CsvError> {
    let parts: Vec<&str> = line.split(',').collect();
    let ctype = match field(&parts, 3, n)? {
        "job" => CollectionType::Job,
        "alloc_set" => CollectionType::AllocSet,
        other => return Err(parse_err(n, format!("bad collection type {other:?}"))),
    };
    let sched = match field(&parts, 5, n)? {
        "default" => SchedulerKind::Default,
        "batch" => SchedulerKind::Batch,
        other => return Err(parse_err(n, format!("bad scheduler {other:?}"))),
    };
    let vs = match field(&parts, 6, n)? {
        "off" => VerticalScalingMode::Off,
        "constrained" => VerticalScalingMode::Constrained,
        "full" => VerticalScalingMode::Full,
        other => return Err(parse_err(n, format!("bad scaling mode {other:?}"))),
    };
    Ok(CollectionEvent {
        time: Micros(parse_u64(field(&parts, 0, n)?, n)?),
        collection_id: CollectionId(parse_u64(field(&parts, 1, n)?, n)?),
        event_type: parse_event(field(&parts, 2, n)?, n)?,
        collection_type: ctype,
        priority: Priority::new(parse_u64(field(&parts, 4, n)?, n)? as u16),
        scheduler: sched,
        vertical_scaling: vs,
        parent_id: opt_u64(field(&parts, 7, n)?, n)?.map(CollectionId),
        alloc_collection_id: opt_u64(field(&parts, 8, n)?, n)?.map(CollectionId),
        user_id: UserId(parse_u64(field(&parts, 9, n)?, n)? as u32),
    })
}

/// Reads the collection-events table.
pub fn read_collection_events(r: impl BufRead) -> Result<Vec<CollectionEvent>, CsvError> {
    read_table_strict(r, parse_collection_line)
}

/// Writes the instance-events table.
pub fn write_instance_events(w: &mut impl Write, events: &[InstanceEvent]) -> io::Result<()> {
    writeln!(
        w,
        "time,collection_id,instance_index,event_type,machine_id,cpu_request,mem_request,priority,alloc_collection_id,alloc_instance_index"
    )?;
    for e in events {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            e.time.as_micros(),
            e.instance_id.collection.0,
            e.instance_id.index,
            e.event_type.name(),
            e.machine_id.map_or(String::new(), |m| m.0.to_string()),
            e.request.cpu,
            e.request.mem,
            e.priority.raw(),
            e.alloc_instance
                .map_or(String::new(), |a| a.collection.0.to_string()),
            e.alloc_instance
                .map_or(String::new(), |a| a.index.to_string()),
        )?;
    }
    Ok(())
}

/// Parses one data row of the instance-events table.
pub fn parse_instance_line(line: &str, n: usize) -> Result<InstanceEvent, CsvError> {
    let parts: Vec<&str> = line.split(',').collect();
    let alloc_col = opt_u64(field(&parts, 8, n)?, n)?;
    let alloc_idx = opt_u64(field(&parts, 9, n)?, n)?;
    let alloc_instance = match (alloc_col, alloc_idx) {
        (Some(c), Some(x)) => Some(InstanceId::new(CollectionId(c), x as u32)),
        (None, None) => None,
        _ => return Err(parse_err(n, "half-specified alloc instance")),
    };
    Ok(InstanceEvent {
        time: Micros(parse_u64(field(&parts, 0, n)?, n)?),
        instance_id: InstanceId::new(
            CollectionId(parse_u64(field(&parts, 1, n)?, n)?),
            parse_u64(field(&parts, 2, n)?, n)? as u32,
        ),
        event_type: parse_event(field(&parts, 3, n)?, n)?,
        machine_id: opt_u64(field(&parts, 4, n)?, n)?.map(|m| MachineId(m as u32)),
        request: Resources::new(
            parse_f64(field(&parts, 5, n)?, n)?,
            parse_f64(field(&parts, 6, n)?, n)?,
        ),
        priority: Priority::new(parse_u64(field(&parts, 7, n)?, n)? as u16),
        alloc_instance,
    })
}

/// Reads the instance-events table.
pub fn read_instance_events(r: impl BufRead) -> Result<Vec<InstanceEvent>, CsvError> {
    read_table_strict(r, parse_instance_line)
}

/// Writes the usage table (histogram inlined as 21 extra columns).
pub fn write_usage(w: &mut impl Write, records: &[UsageRecord]) -> io::Result<()> {
    write!(
        w,
        "start,end,collection_id,instance_index,machine_id,avg_cpu,avg_mem,max_cpu,max_mem,limit_cpu,limit_mem"
    )?;
    for p in crate::usage::CPU_HISTOGRAM_PERCENTILES {
        write!(w, ",p{p}")?;
    }
    writeln!(w)?;
    for u in records {
        write!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{}",
            u.start.as_micros(),
            u.end.as_micros(),
            u.instance_id.collection.0,
            u.instance_id.index,
            u.machine_id.0,
            u.avg_usage.cpu,
            u.avg_usage.mem,
            u.max_usage.cpu,
            u.max_usage.mem,
            u.limit.cpu,
            u.limit.mem,
        )?;
        for v in u.cpu_histogram.0 {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Parses one data row of the usage table.
pub fn parse_usage_line(line: &str, n: usize) -> Result<UsageRecord, CsvError> {
    let parts: Vec<&str> = line.split(',').collect();
    let mut hist = [0.0f32; 21];
    for (k, h) in hist.iter_mut().enumerate() {
        *h = parse_f64(field(&parts, 11 + k, n)?, n)? as f32;
    }
    Ok(UsageRecord {
        start: Micros(parse_u64(field(&parts, 0, n)?, n)?),
        end: Micros(parse_u64(field(&parts, 1, n)?, n)?),
        instance_id: InstanceId::new(
            CollectionId(parse_u64(field(&parts, 2, n)?, n)?),
            parse_u64(field(&parts, 3, n)?, n)? as u32,
        ),
        machine_id: MachineId(parse_u64(field(&parts, 4, n)?, n)? as u32),
        avg_usage: Resources::new(
            parse_f64(field(&parts, 5, n)?, n)?,
            parse_f64(field(&parts, 6, n)?, n)?,
        ),
        max_usage: Resources::new(
            parse_f64(field(&parts, 7, n)?, n)?,
            parse_f64(field(&parts, 8, n)?, n)?,
        ),
        limit: Resources::new(
            parse_f64(field(&parts, 9, n)?, n)?,
            parse_f64(field(&parts, 10, n)?, n)?,
        ),
        cpu_histogram: CpuHistogram(hist),
    })
}

/// Reads the usage table.
pub fn read_usage(r: impl BufRead) -> Result<Vec<UsageRecord>, CsvError> {
    read_table_strict(r, parse_usage_line)
}

/// Shared strict table loop: header skipped, blank lines skipped, the
/// first malformed line aborts the read.
fn read_table_strict<T>(
    r: impl BufRead,
    parse: impl Fn(&str, usize) -> Result<T, CsvError>,
) -> Result<Vec<T>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue;
        }
        out.push(parse(&line, i + 1)?);
    }
    Ok(out)
}

/// Writes every table of a trace into a directory, one file per table.
pub fn write_trace_dir(trace: &Trace, dir: &std::path::Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("machine_events.csv"))?);
    write_machine_events(&mut f, &trace.machine_events)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("collection_events.csv"))?);
    write_collection_events(&mut f, &trace.collection_events)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("instance_events.csv"))?);
    write_instance_events(&mut f, &trace.instance_events)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("instance_usage.csv"))?);
    write_usage(&mut f, &trace.usage)?;
    std::fs::write(
        dir.join("metadata.csv"),
        format!(
            "cell_name,schema,horizon\n{},{},{}\n",
            trace.cell_name,
            trace.schema.map_or("unknown", |s| s.name()),
            trace.horizon.as_micros()
        ),
    )?;
    Ok(())
}

/// Reads a trace previously written by [`write_trace_dir`]. Errors are
/// wrapped as [`CsvError::Table`] naming the offending file.
pub fn read_trace_dir(dir: &std::path::Path) -> Result<Trace, CsvError> {
    let open = |name: &str| -> Result<std::io::BufReader<std::fs::File>, CsvError> {
        std::fs::File::open(dir.join(name))
            .map(std::io::BufReader::new)
            .map_err(|e| in_file(name, CsvError::Io(e)))
    };
    let (cell_name, schema, horizon) = std::fs::read_to_string(dir.join(FILE_METADATA))
        .map_err(|e| in_file(FILE_METADATA, CsvError::Io(e)))
        .and_then(|meta| parse_metadata(&meta).map_err(|e| in_file(FILE_METADATA, e)))?;
    Ok(Trace {
        cell_name,
        schema,
        horizon,
        machine_events: read_machine_events(open(FILE_MACHINE)?)
            .map_err(|e| in_file(FILE_MACHINE, e))?,
        collection_events: read_collection_events(open(FILE_COLLECTION)?)
            .map_err(|e| in_file(FILE_COLLECTION, e))?,
        instance_events: read_instance_events(open(FILE_INSTANCE)?)
            .map_err(|e| in_file(FILE_INSTANCE, e))?,
        usage: read_usage(open(FILE_USAGE)?).map_err(|e| in_file(FILE_USAGE, e))?,
    })
}

/// The five file names of a trace directory.
pub const FILE_MACHINE: &str = "machine_events.csv";
/// Collection-events table file name.
pub const FILE_COLLECTION: &str = "collection_events.csv";
/// Instance-events table file name.
pub const FILE_INSTANCE: &str = "instance_events.csv";
/// Usage table file name.
pub const FILE_USAGE: &str = "instance_usage.csv";
/// Metadata file name.
pub const FILE_METADATA: &str = "metadata.csv";

type Metadata = (String, Option<SchemaVersion>, Micros);

fn parse_metadata(meta: &str) -> Result<Metadata, CsvError> {
    let line = meta
        .lines()
        .nth(1)
        .ok_or_else(|| parse_err(2, "missing metadata row"))?;
    let parts: Vec<&str> = line.split(',').collect();
    let cell_name = field(&parts, 0, 2)?.to_string();
    let schema = match field(&parts, 1, 2)? {
        "v2-2011" => Some(SchemaVersion::V2Trace2011),
        "v3-2019" => Some(SchemaVersion::V3Trace2019),
        _ => None,
    };
    let horizon = Micros(parse_u64(field(&parts, 2, 2)?, 2)?);
    Ok((cell_name, schema, horizon))
}

/// Cap on per-line diagnostic details retained in a [`Quarantine`];
/// per-table counts keep accumulating past it.
pub const QUARANTINE_DETAIL_CAP: usize = 256;

/// One rejected CSV line, with enough context to find it again.
#[derive(Debug, Clone)]
pub struct QuarantinedLine {
    /// Table file the line came from.
    pub file: &'static str,
    /// 1-based line number within that file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

/// Everything the lenient reader refused to ingest: per-line parse
/// failures (detail capped at [`QUARANTINE_DETAIL_CAP`], counts exact)
/// and whole-table failures (missing or unreadable files).
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    /// Detailed per-line rejections (first [`QUARANTINE_DETAIL_CAP`]).
    pub lines: Vec<QuarantinedLine>,
    /// Exact rejected-line count per table file.
    pub line_counts: BTreeMap<&'static str, u64>,
    /// Whole-table failures: `(file, error)`.
    pub table_errors: Vec<(String, String)>,
}

impl Quarantine {
    /// Total rejected lines across all tables.
    pub fn total_lines(&self) -> u64 {
        self.line_counts.values().sum()
    }

    /// Rejected-line count for one table file.
    pub fn count_for(&self, file: &str) -> u64 {
        self.line_counts.get(file).copied().unwrap_or(0)
    }

    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.line_counts.is_empty() && self.table_errors.is_empty()
    }

    /// One-line human summary, e.g. for report annotations.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean ingest: no lines quarantined".to_string();
        }
        let per_table: Vec<String> = self
            .line_counts
            .iter()
            .map(|(f, c)| format!("{f}: {c}"))
            .collect();
        let mut s = format!(
            "quarantined {} line(s) [{}]",
            self.total_lines(),
            per_table.join(", ")
        );
        if !self.table_errors.is_empty() {
            let files: Vec<&str> = self.table_errors.iter().map(|(f, _)| f.as_str()).collect();
            s.push_str(&format!(
                "; {} table error(s) [{}]",
                self.table_errors.len(),
                files.join(", ")
            ));
        }
        s
    }

    fn reject_line(&mut self, file: &'static str, line: usize, message: String) {
        if self.lines.len() < QUARANTINE_DETAIL_CAP {
            self.lines.push(QuarantinedLine {
                file,
                line,
                message,
            });
        }
        *self.line_counts.entry(file).or_insert(0) += 1;
    }

    fn table_error(&mut self, file: &str, message: String) {
        self.table_errors.push((file.to_string(), message));
    }
}

/// Lenient table loop: malformed lines are quarantined instead of
/// aborting; a mid-file I/O failure records a table error and keeps
/// what was read so far.
fn read_table_lenient<T>(
    r: impl BufRead,
    file: &'static str,
    q: &mut Quarantine,
    parse: impl Fn(&str, usize) -> Result<T, CsvError>,
) -> Vec<T> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                q.table_error(file, format!("io error near line {}: {e}", i + 1));
                break;
            }
        };
        if i == 0 || line.is_empty() {
            continue;
        }
        let n = i + 1;
        match parse(&line, n) {
            Ok(v) => out.push(v),
            Err(e) => q.reject_line(file, n, e.to_string()),
        }
    }
    out
}

/// Reads a trace directory, quarantining damage instead of failing
/// fast: per-line parse errors are collected per table, missing or
/// unreadable files yield empty tables with a table-level error, and a
/// missing horizon is inferred from the data. Always returns a trace;
/// callers inspect the [`Quarantine`] to learn what was lost.
pub fn read_trace_dir_lenient(dir: &std::path::Path) -> (Trace, Quarantine) {
    let mut q = Quarantine::default();
    let (cell_name, schema, horizon) = match std::fs::read_to_string(dir.join(FILE_METADATA)) {
        Ok(meta) => match parse_metadata(&meta) {
            Ok(m) => m,
            Err(e) => {
                q.table_error(FILE_METADATA, e.to_string());
                ("unknown".to_string(), None, Micros::ZERO)
            }
        },
        Err(e) => {
            q.table_error(FILE_METADATA, format!("io error: {e}"));
            ("unknown".to_string(), None, Micros::ZERO)
        }
    };
    fn load<T>(
        dir: &std::path::Path,
        file: &'static str,
        q: &mut Quarantine,
        parse: impl Fn(&str, usize) -> Result<T, CsvError>,
    ) -> Vec<T> {
        match std::fs::File::open(dir.join(file)) {
            Ok(f) => read_table_lenient(std::io::BufReader::new(f), file, q, parse),
            Err(e) => {
                q.table_error(file, format!("io error: {e}"));
                Vec::new()
            }
        }
    }
    let mut trace = Trace {
        cell_name,
        schema,
        horizon,
        machine_events: load(dir, FILE_MACHINE, &mut q, parse_machine_line),
        collection_events: load(dir, FILE_COLLECTION, &mut q, parse_collection_line),
        instance_events: load(dir, FILE_INSTANCE, &mut q, parse_instance_line),
        usage: load(dir, FILE_USAGE, &mut q, parse_usage_line),
    };
    if trace.horizon == Micros::ZERO {
        trace.horizon = observed_horizon(&trace);
    }
    (trace, q)
}

/// Largest timestamp present in any table — the fallback horizon when
/// metadata is missing or damaged.
fn observed_horizon(t: &Trace) -> Micros {
    let mut h = Micros::ZERO;
    for e in &t.machine_events {
        h = h.max(e.time);
    }
    for e in &t.collection_events {
        h = h.max(e.time);
    }
    for e in &t.instance_events {
        h = h.max(e.time);
    }
    for u in &t.usage {
        h = h.max(u.end);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("x", SchemaVersion::V3Trace2019, Micros::from_days(2));
        t.machine_events.push(MachineEvent::add(
            Micros::ZERO,
            MachineId(3),
            Resources::new(0.75, 0.5),
            Platform(2),
        ));
        t.collection_events.push(CollectionEvent {
            time: Micros::from_secs(5),
            collection_id: CollectionId(11),
            event_type: EventType::Submit,
            collection_type: CollectionType::Job,
            priority: Priority::new(117),
            scheduler: SchedulerKind::Batch,
            vertical_scaling: VerticalScalingMode::Constrained,
            parent_id: Some(CollectionId(4)),
            alloc_collection_id: None,
            user_id: UserId(9),
        });
        t.instance_events.push(InstanceEvent {
            time: Micros::from_secs(6),
            instance_id: InstanceId::new(CollectionId(11), 2),
            event_type: EventType::Schedule,
            machine_id: Some(MachineId(3)),
            request: Resources::new(0.25, 0.125),
            priority: Priority::new(117),
            alloc_instance: Some(InstanceId::new(CollectionId(4), 0)),
        });
        t.usage.push(UsageRecord {
            start: Micros::from_minutes(5),
            end: Micros::from_minutes(10),
            instance_id: InstanceId::new(CollectionId(11), 2),
            machine_id: MachineId(3),
            avg_usage: Resources::new(0.1, 0.05),
            max_usage: Resources::new(0.2, 0.06),
            limit: Resources::new(0.25, 0.125),
            cpu_histogram: CpuHistogram::from_samples(&[0.05, 0.1, 0.15, 0.2]),
        });
        t
    }

    fn round_trip<T, W, R>(items: &[T], write: W, read: R) -> Vec<T>
    where
        W: Fn(&mut Vec<u8>, &[T]) -> io::Result<()>,
        R: Fn(&[u8]) -> Result<Vec<T>, CsvError>,
    {
        let mut buf = Vec::new();
        write(&mut buf, items).unwrap();
        read(&buf).unwrap()
    }

    #[test]
    fn machine_events_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.machine_events, write_machine_events, |b| {
            read_machine_events(b)
        });
        assert_eq!(back, t.machine_events);
    }

    #[test]
    fn collection_events_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.collection_events, write_collection_events, |b| {
            read_collection_events(b)
        });
        assert_eq!(back, t.collection_events);
    }

    #[test]
    fn instance_events_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.instance_events, write_instance_events, |b| {
            read_instance_events(b)
        });
        assert_eq!(back, t.instance_events);
    }

    #[test]
    fn usage_round_trip() {
        let t = sample_trace();
        let back = round_trip(&t.usage, write_usage, |b| read_usage(b));
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].instance_id, t.usage[0].instance_id);
        assert_eq!(back[0].limit, t.usage[0].limit);
        assert!((back[0].cpu_histogram.max() - t.usage[0].cpu_histogram.max()).abs() < 1e-6);
    }

    #[test]
    fn directory_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("borg_csv_test_{}", std::process::id()));
        write_trace_dir(&t, &dir).unwrap();
        let back = read_trace_dir(&dir).unwrap();
        assert_eq!(back.cell_name, t.cell_name);
        assert_eq!(back.schema, t.schema);
        assert_eq!(back.horizon, t.horizon);
        assert_eq!(back.machine_events, t.machine_events);
        assert_eq!(back.collection_events, t.collection_events);
        assert_eq!(back.instance_events, t.instance_events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_errors_reported_with_line() {
        let bad = b"header\n1,2,notanevent,job,0,default,off,,,0\n";
        let err = read_collection_events(&bad[..]).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn half_specified_alloc_rejected() {
        let bad = b"header\n1,2,submit,,0.1,0.1,200,5,\n";
        assert!(read_instance_events(&bad[..]).is_err());
    }

    #[test]
    fn directory_errors_name_the_table_file() {
        let dir = std::env::temp_dir().join(format!("borg_csv_tbl_{}", std::process::id()));
        write_trace_dir(&sample_trace(), &dir).unwrap();
        // Damage one line of the instance table.
        let path = dir.join(FILE_INSTANCE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("x,oops\n");
        std::fs::write(&path, text).unwrap();
        let err = read_trace_dir(&dir).unwrap_err();
        match &err {
            CsvError::Table { file, source } => {
                assert_eq!(file, FILE_INSTANCE);
                assert!(matches!(**source, CsvError::Parse { .. }));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains(FILE_INSTANCE));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_read_quarantines_bad_lines() {
        let dir = std::env::temp_dir().join(format!("borg_csv_len_{}", std::process::id()));
        write_trace_dir(&sample_trace(), &dir).unwrap();
        let path = dir.join(FILE_INSTANCE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage line\nx,2,submit,,0.1,0.1,200,5,,\n");
        std::fs::write(&path, text).unwrap();
        let (t, q) = read_trace_dir_lenient(&dir);
        assert_eq!(t.instance_events.len(), 1, "good line survives");
        assert_eq!(q.count_for(FILE_INSTANCE), 2);
        assert_eq!(q.total_lines(), 2);
        assert!(!q.is_clean());
        assert!(q.summary().contains(FILE_INSTANCE));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_read_survives_missing_files() {
        let dir = std::env::temp_dir().join(format!("borg_csv_missing_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Only the instance table exists; no metadata at all.
        let mut buf = Vec::new();
        write_instance_events(&mut buf, &sample_trace().instance_events).unwrap();
        std::fs::write(dir.join(FILE_INSTANCE), &buf).unwrap();
        let (t, q) = read_trace_dir_lenient(&dir);
        assert_eq!(t.cell_name, "unknown");
        assert_eq!(t.instance_events.len(), 1);
        assert!(t.machine_events.is_empty());
        // Horizon inferred from the surviving data.
        assert_eq!(t.horizon, Micros::from_secs(6));
        assert_eq!(q.table_errors.len(), 4, "metadata + three tables");
        std::fs::remove_dir_all(&dir).ok();
    }
}
