#![warn(missing_docs)]

//! Data model for Google cluster traces.
//!
//! This crate models the two public Borg trace formats compared by
//! *Borg: the Next Generation* (EuroSys 2020):
//!
//! * the **2019 "v3" trace**: eight cells, collections (jobs *and* alloc
//!   sets), instance events, 5-minute usage samples with CPU-utilization
//!   histograms, raw priorities 0–450, batch queueing, parent-child job
//!   dependencies, and vertical-scaling annotations;
//! * the **2011 "v2" trace**: one cell, twelve priority bands, jobs and
//!   tasks only (alloc sets elided).
//!
//! The model is deliberately close to the published schemas so analyses
//! written against this crate read like the BigQuery SQL in the paper.
//!
//! # Examples
//!
//! ```
//! use borg_trace::priority::{Priority, Tier};
//!
//! assert_eq!(Priority::new(200).tier(), Tier::Production);
//! assert_eq!(Priority::new(112).tier(), Tier::BestEffortBatch);
//! ```

pub mod collection;
pub mod csv;
pub mod instance;
pub mod machine;
pub mod priority;
pub mod repair;
pub mod resources;
pub mod schema_2011;
pub mod state;
pub mod time;
pub mod trace;
pub mod usage;
pub mod validate;

pub use collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, VerticalScalingMode,
};
pub use csv::{Quarantine, QuarantinedLine};
pub use instance::{InstanceEvent, InstanceId};
pub use machine::{MachineEvent, MachineEventType, MachineId, Platform};
pub use priority::{Priority, PriorityBand2011, Tier};
pub use repair::{repair, RepairReport, TableRepair};
pub use resources::Resources;
pub use state::{EventType, InstanceState, StateMachine, TransitionCounts};
pub use time::{Micros, MICROS_PER_HOUR};
pub use trace::{SchemaVersion, Trace};
pub use usage::{CpuHistogram, UsageRecord, CPU_HISTOGRAM_PERCENTILES};
