//! Normalized resource vectors.
//!
//! Both traces express CPU in Normalized Compute Units (NCUs) and memory in
//! Normalized Memory Units (NMUs): Google Compute Units re-scaled so the
//! largest machine in the trace has capacity 1.0 in each dimension (§3).
//! [`Resources`] is the 2-dimensional vector used for machine capacities,
//! task requests/limits, and usage.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A (CPU, memory) vector in normalized units.
///
/// # Examples
///
/// ```
/// use borg_trace::resources::Resources;
///
/// let machine = Resources::new(1.0, 0.5);
/// let task = Resources::new(0.2, 0.1);
/// assert!(task.fits_in(&machine));
/// assert_eq!(machine - task, Resources::new(0.8, 0.4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// Normalized Compute Units (NCUs).
    pub cpu: f64,
    /// Normalized Memory Units (NMUs).
    pub mem: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { cpu: 0.0, mem: 0.0 };

    /// Creates a resource vector.
    pub const fn new(cpu: f64, mem: f64) -> Resources {
        Resources { cpu, mem }
    }

    /// True when both dimensions fit within `other` (<=).
    pub fn fits_in(&self, other: &Resources) -> bool {
        self.cpu <= other.cpu && self.mem <= other.mem
    }

    /// True when both dimensions are non-negative.
    pub fn is_non_negative(&self) -> bool {
        self.cpu >= 0.0 && self.mem >= 0.0
    }

    /// True when both dimensions are finite.
    pub fn is_finite(&self) -> bool {
        self.cpu.is_finite() && self.mem.is_finite()
    }

    /// Element-wise minimum.
    pub fn min(&self, other: &Resources) -> Resources {
        Resources::new(self.cpu.min(other.cpu), self.mem.min(other.mem))
    }

    /// Element-wise maximum.
    pub fn max(&self, other: &Resources) -> Resources {
        Resources::new(self.cpu.max(other.cpu), self.mem.max(other.mem))
    }

    /// Element-wise clamp to non-negative values.
    pub fn clamp_non_negative(&self) -> Resources {
        Resources::new(self.cpu.max(0.0), self.mem.max(0.0))
    }

    /// Scales both dimensions by a scalar.
    pub fn scale(&self, k: f64) -> Resources {
        Resources::new(self.cpu * k, self.mem * k)
    }

    /// The larger of the two *utilization fractions* relative to a
    /// capacity — the dominant-share used by fit checks under
    /// heterogeneous shapes. Returns `+inf` when a capacity dimension is
    /// zero but the demand is not.
    pub fn dominant_fraction_of(&self, capacity: &Resources) -> f64 {
        let f = |d: f64, c: f64| {
            if d <= 0.0 {
                0.0
            } else if c <= 0.0 {
                f64::INFINITY
            } else {
                d / c
            }
        };
        f(self.cpu, capacity.cpu).max(f(self.mem, capacity.mem))
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources::new(self.cpu + rhs.cpu, self.mem + rhs.mem)
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu += rhs.cpu;
        self.mem += rhs.mem;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources::new(self.cpu - rhs.cpu, self.mem - rhs.mem)
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        self.cpu -= rhs.cpu;
        self.mem -= rhs.mem;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, k: f64) -> Resources {
        self.scale(k)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4} NCU, {:.4} NMU)", self.cpu, self.mem)
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(0.5, 0.25);
        let b = Resources::new(0.25, 0.25);
        assert_eq!(a + b, Resources::new(0.75, 0.5));
        assert_eq!(a - b, Resources::new(0.25, 0.0));
        assert_eq!(a * 2.0, Resources::new(1.0, 0.5));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn fits_requires_both_dimensions() {
        let cap = Resources::new(1.0, 0.5);
        assert!(Resources::new(1.0, 0.5).fits_in(&cap));
        assert!(!Resources::new(1.1, 0.1).fits_in(&cap));
        assert!(!Resources::new(0.1, 0.6).fits_in(&cap));
    }

    #[test]
    fn dominant_fraction() {
        let cap = Resources::new(1.0, 0.5);
        let d = Resources::new(0.2, 0.2);
        assert_eq!(d.dominant_fraction_of(&cap), 0.4);
        assert_eq!(Resources::ZERO.dominant_fraction_of(&cap), 0.0);
        assert_eq!(
            Resources::new(0.1, 0.1).dominant_fraction_of(&Resources::new(0.0, 1.0)),
            f64::INFINITY
        );
    }

    #[test]
    fn min_max_clamp() {
        let a = Resources::new(0.5, -0.1);
        let b = Resources::new(0.2, 0.3);
        assert_eq!(a.min(&b), Resources::new(0.2, -0.1));
        assert_eq!(a.max(&b), Resources::new(0.5, 0.3));
        assert_eq!(a.clamp_non_negative(), Resources::new(0.5, 0.0));
        assert!(!a.is_non_negative());
        assert!(b.is_non_negative());
    }

    #[test]
    fn sum_iterator() {
        let total: Resources = (0..4).map(|_| Resources::new(0.25, 0.1)).sum();
        assert!((total.cpu - 1.0).abs() < 1e-12);
        assert!((total.mem - 0.4).abs() < 1e-12);
    }
}
