//! Downgrading a v3 (2019) trace to the 2011 "v2" view.
//!
//! §3 and §5.1 of the paper describe what the 2011 trace elided relative
//! to 2019: alloc sets were "treated as if they were jobs", raw priorities
//! were mapped onto twelve bands, there was no batch queue, no
//! parent-child dependency data, and no vertical-scaling annotations.
//! [`downgrade`] applies exactly those erasures, which is how the
//! toolkit's longitudinal analyses can run one code path over both eras.

use crate::collection::{CollectionEvent, CollectionType, SchedulerKind, VerticalScalingMode};
use crate::priority::{Priority, PriorityBand2011};
use crate::state::EventType;
use crate::trace::{SchemaVersion, Trace};

/// Projects a v3 trace down to the 2011 schema:
///
/// * alloc sets become plain jobs;
/// * every priority is quantized to its 2011 band's raw value;
/// * batch-queue events (`Queue`, `Enable`) are dropped and every
///   collection is marked as handled by the default scheduler;
/// * parent links and vertical-scaling modes are erased;
/// * usage CPU histograms are zeroed (the 2011 trace had none).
pub fn downgrade(trace: &Trace) -> Trace {
    let mut out = Trace::new(
        trace.cell_name.clone(),
        SchemaVersion::V2Trace2011,
        trace.horizon,
    );
    out.machine_events = trace.machine_events.clone();

    for ev in &trace.collection_events {
        if matches!(ev.event_type, EventType::Queue | EventType::Enable) {
            continue;
        }
        out.collection_events.push(CollectionEvent {
            collection_type: CollectionType::Job,
            priority: quantize_priority(ev.priority),
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            ..*ev
        });
    }

    for ev in &trace.instance_events {
        if matches!(ev.event_type, EventType::Queue | EventType::Enable) {
            continue;
        }
        let mut ev2 = *ev;
        ev2.priority = quantize_priority(ev.priority);
        ev2.alloc_instance = None;
        out.instance_events.push(ev2);
    }

    for u in &trace.usage {
        let mut u2 = *u;
        u2.cpu_histogram = crate::usage::CpuHistogram([0.0; 21]);
        out.usage.push(u2);
    }

    out
}

/// Quantizes a raw 2019 priority to the raw value of its 2011 band.
pub fn quantize_priority(p: Priority) -> Priority {
    PriorityBand2011::from_raw(p).raw_priority()
}

/// The numeric event codes of the published 2011 job/task-events tables
/// (0=SUBMIT, 1=SCHEDULE, 2=EVICT, 3=FAIL, 4=FINISH, 5=KILL, 6=LOST,
/// 7=UPDATE_PENDING, 8=UPDATE_RUNNING). Queue/enable have no v2 code and
/// return `None` — they must be stripped (see [`downgrade`]) first.
pub fn v2_event_code(ev: EventType) -> Option<u8> {
    match ev {
        EventType::Submit => Some(0),
        EventType::Schedule => Some(1),
        EventType::Evict => Some(2),
        EventType::Fail => Some(3),
        EventType::Finish => Some(4),
        EventType::Kill => Some(5),
        EventType::Lost => Some(6),
        EventType::UpdatePending => Some(7),
        EventType::UpdateRunning => Some(8),
        EventType::Queue | EventType::Enable => None,
    }
}

/// Writes a trace's task events in the published 2011 CSV layout:
/// `timestamp,job_id,task_index,machine_id,event_type,priority_band,cpu_request,mem_request`.
///
/// The trace should already be in the v2 schema (see [`downgrade`]);
/// events without a v2 code are skipped.
pub fn write_v2_task_events(w: &mut impl std::io::Write, trace: &Trace) -> std::io::Result<()> {
    for ev in &trace.instance_events {
        let Some(code) = v2_event_code(ev.event_type) else {
            continue;
        };
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            ev.time.as_micros(),
            ev.instance_id.collection.0,
            ev.instance_id.index,
            ev.machine_id.map_or(String::new(), |m| m.0.to_string()),
            code,
            PriorityBand2011::from_raw(ev.priority).0,
            ev.request.cpu,
            ev.request.mem,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::{CollectionId, UserId};
    use crate::instance::{InstanceEvent, InstanceId};
    use crate::machine::MachineId;
    use crate::resources::Resources;
    use crate::state::EventType as E;
    use crate::time::Micros;

    fn v3_trace() -> Trace {
        let mut t = Trace::new("a", SchemaVersion::V3Trace2019, Micros::from_days(1));
        t.collection_events.push(CollectionEvent {
            time: Micros::from_secs(1),
            collection_id: CollectionId(1),
            event_type: EventType::Submit,
            collection_type: CollectionType::AllocSet,
            priority: Priority::new(117),
            scheduler: SchedulerKind::Batch,
            vertical_scaling: VerticalScalingMode::Full,
            parent_id: Some(CollectionId(9)),
            alloc_collection_id: None,
            user_id: UserId(1),
        });
        t.collection_events.push(CollectionEvent {
            time: Micros::from_secs(2),
            collection_id: CollectionId(1),
            event_type: EventType::Queue,
            collection_type: CollectionType::AllocSet,
            priority: Priority::new(117),
            scheduler: SchedulerKind::Batch,
            vertical_scaling: VerticalScalingMode::Full,
            parent_id: Some(CollectionId(9)),
            alloc_collection_id: None,
            user_id: UserId(1),
        });
        t.instance_events.push(InstanceEvent {
            time: Micros::from_secs(3),
            instance_id: InstanceId::new(CollectionId(1), 0),
            event_type: EventType::Enable,
            machine_id: None,
            request: Resources::new(0.1, 0.1),
            priority: Priority::new(117),
            alloc_instance: Some(InstanceId::new(CollectionId(2), 0)),
        });
        t.instance_events.push(InstanceEvent {
            time: Micros::from_secs(4),
            instance_id: InstanceId::new(CollectionId(1), 0),
            event_type: EventType::Schedule,
            machine_id: Some(MachineId(0)),
            request: Resources::new(0.1, 0.1),
            priority: Priority::new(117),
            alloc_instance: Some(InstanceId::new(CollectionId(2), 0)),
        });
        t
    }

    #[test]
    fn alloc_sets_become_jobs() {
        let out = downgrade(&v3_trace());
        assert!(out
            .collection_events
            .iter()
            .all(|e| e.collection_type == CollectionType::Job));
    }

    #[test]
    fn queue_events_dropped() {
        let out = downgrade(&v3_trace());
        assert_eq!(out.collection_events.len(), 1);
        assert_eq!(out.instance_events.len(), 1);
        assert!(out
            .instance_events
            .iter()
            .all(|e| !matches!(e.event_type, EventType::Queue | EventType::Enable)));
    }

    #[test]
    fn new_features_erased() {
        let out = downgrade(&v3_trace());
        let ev = &out.collection_events[0];
        assert_eq!(ev.parent_id, None);
        assert_eq!(ev.vertical_scaling, VerticalScalingMode::Off);
        assert_eq!(ev.scheduler, SchedulerKind::Default);
        assert_eq!(out.instance_events[0].alloc_instance, None);
    }

    #[test]
    fn priorities_quantized_to_band_values() {
        // 117 is between the 2011 raw values 109 and 119, so it lands in
        // band 7 (raw 109).
        assert_eq!(quantize_priority(Priority::new(117)), Priority::new(109));
        // Values that existed in 2011 are unchanged.
        assert_eq!(quantize_priority(Priority::new(200)), Priority::new(200));
        let out = downgrade(&v3_trace());
        assert_eq!(out.collection_events[0].priority, Priority::new(109));
    }

    #[test]
    fn schema_marked_v2() {
        let out = downgrade(&v3_trace());
        assert_eq!(out.schema, Some(SchemaVersion::V2Trace2011));
    }

    #[test]
    fn v2_event_codes_match_published_table() {
        assert_eq!(v2_event_code(E::Submit), Some(0));
        assert_eq!(v2_event_code(E::Schedule), Some(1));
        assert_eq!(v2_event_code(E::Evict), Some(2));
        assert_eq!(v2_event_code(E::Fail), Some(3));
        assert_eq!(v2_event_code(E::Finish), Some(4));
        assert_eq!(v2_event_code(E::Kill), Some(5));
        assert_eq!(v2_event_code(E::Lost), Some(6));
        assert_eq!(v2_event_code(E::Queue), None);
        assert_eq!(v2_event_code(E::Enable), None);
    }

    #[test]
    fn v2_csv_export_writes_band_priorities() {
        let v2 = downgrade(&v3_trace());
        let mut buf = Vec::new();
        write_v2_task_events(&mut buf, &v2).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // One schedule line: code 1, band 7 (priority 117 → raw 109 →
        // band 7), machine 0.
        assert_eq!(text.lines().count(), 1);
        let fields: Vec<&str> = text.lines().next().unwrap().split(',').collect();
        assert_eq!(fields[4], "1", "event code for schedule");
        assert_eq!(fields[5], "7", "priority band");
    }
}
