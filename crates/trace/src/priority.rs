//! Priorities and tiers.
//!
//! The 2019 trace exposes raw priorities in 0–450; the 2011 trace mapped
//! the twelve distinct raw values in use at the time onto "priority bands"
//! 0–11 (§3). §2 of the paper groups priorities into tiers: free,
//! best-effort batch (beb), mid, production, and monitoring (which the
//! paper merges into production for its analyses).

use std::fmt;

/// A raw 2019-style job priority in `0..=450`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u16);

/// Maximum raw priority value that appears in the 2019 trace.
pub const MAX_PRIORITY: u16 = 450;

/// The twelve distinct raw priority values in the 2011 trace, in band
/// order: band `i` in the 2011 trace corresponds to `RAW_2011_PRIORITIES[i]`
/// (§3 of the paper: "the value 3 in the 2011 trace corresponds to a raw
/// priority of 101").
pub const RAW_2011_PRIORITIES: [u16; 12] =
    [0, 25, 100, 101, 103, 104, 107, 109, 119, 200, 360, 450];

impl Priority {
    /// Creates a priority, clamping to the trace maximum.
    pub fn new(raw: u16) -> Priority {
        Priority(raw.min(MAX_PRIORITY))
    }

    /// Raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The tier this priority belongs to under the 2019 mapping (§2).
    pub const fn tier(self) -> Tier {
        match self.0 {
            0..=99 => Tier::Free,
            100..=115 => Tier::BestEffortBatch,
            116..=119 => Tier::Mid,
            120..=359 => Tier::Production,
            _ => Tier::Monitoring,
        }
    }

    /// The tier merged the way the paper reports results: monitoring jobs
    /// are folded into production (§2, last bullet).
    pub const fn reporting_tier(self) -> Tier {
        match self.tier() {
            Tier::Monitoring => Tier::Production,
            t => t,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A 2011-trace priority band in `0..=11`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PriorityBand2011(pub u8);

impl PriorityBand2011 {
    /// Creates a band, clamping to 11.
    pub fn new(band: u8) -> PriorityBand2011 {
        PriorityBand2011(band.min(11))
    }

    /// The raw priority value the band encoded (§3's translation table).
    pub const fn raw_priority(self) -> Priority {
        Priority(RAW_2011_PRIORITIES[self.0 as usize])
    }

    /// The 2011 band of a raw priority: the index of the largest
    /// 2011-known raw value not exceeding it.
    pub fn from_raw(p: Priority) -> PriorityBand2011 {
        let mut band = 0;
        for (i, &raw) in RAW_2011_PRIORITIES.iter().enumerate() {
            if p.0 >= raw {
                band = i as u8;
            }
        }
        PriorityBand2011(band)
    }

    /// The tier this band belongs to under the 2011 mapping (§2): bands
    /// 0–1 free, 2–8 best-effort batch, 9–10 production, 11 monitoring.
    pub const fn tier(self) -> Tier {
        match self.0 {
            0 | 1 => Tier::Free,
            2..=8 => Tier::BestEffortBatch,
            9 | 10 => Tier::Production,
            _ => Tier::Monitoring,
        }
    }
}

/// Workload tiers (§2). Ordered from lowest to highest service level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// No internal charges, no SLOs (2019 priority ≤ 99).
    Free,
    /// Managed by the batch scheduler, low charges, no SLOs (110–115).
    BestEffortBatch,
    /// Weaker SLOs than production (116–119); absent from the 2011 trace.
    Mid,
    /// High availability; evicts lower tiers when needed (120–359).
    Production,
    /// Infrastructure monitoring (≥ 360); merged into production when the
    /// paper reports per-tier results.
    Monitoring,
}

impl Tier {
    /// All tiers, lowest first.
    pub const ALL: [Tier; 5] = [
        Tier::Free,
        Tier::BestEffortBatch,
        Tier::Mid,
        Tier::Production,
        Tier::Monitoring,
    ];

    /// The four tiers the paper plots (monitoring merged into production).
    pub const REPORTING: [Tier; 4] = [
        Tier::Free,
        Tier::BestEffortBatch,
        Tier::Mid,
        Tier::Production,
    ];

    /// A representative raw 2019 priority inside the tier, used by
    /// generators.
    pub const fn representative_priority(self) -> Priority {
        match self {
            Tier::Free => Priority(25),
            Tier::BestEffortBatch => Priority(112),
            Tier::Mid => Priority(117),
            Tier::Production => Priority(200),
            Tier::Monitoring => Priority(400),
        }
    }

    /// Short name used in reports ("free", "beb", "mid", "prod", "mon").
    pub const fn short_name(self) -> &'static str {
        match self {
            Tier::Free => "free",
            Tier::BestEffortBatch => "beb",
            Tier::Mid => "mid",
            Tier::Production => "prod",
            Tier::Monitoring => "mon",
        }
    }

    /// True when the tier exists in the 2011 trace (mid does not).
    pub const fn present_in_2011(self) -> bool {
        !matches!(self, Tier::Mid)
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_boundaries_2019() {
        assert_eq!(Priority::new(0).tier(), Tier::Free);
        assert_eq!(Priority::new(99).tier(), Tier::Free);
        assert_eq!(Priority::new(100).tier(), Tier::BestEffortBatch);
        assert_eq!(Priority::new(115).tier(), Tier::BestEffortBatch);
        assert_eq!(Priority::new(116).tier(), Tier::Mid);
        assert_eq!(Priority::new(119).tier(), Tier::Mid);
        assert_eq!(Priority::new(120).tier(), Tier::Production);
        assert_eq!(Priority::new(359).tier(), Tier::Production);
        assert_eq!(Priority::new(360).tier(), Tier::Monitoring);
        assert_eq!(Priority::new(450).tier(), Tier::Monitoring);
    }

    #[test]
    fn monitoring_reports_as_production() {
        assert_eq!(Priority::new(400).reporting_tier(), Tier::Production);
        assert_eq!(Priority::new(50).reporting_tier(), Tier::Free);
    }

    #[test]
    fn clamping() {
        assert_eq!(Priority::new(9999).raw(), MAX_PRIORITY);
        assert_eq!(PriorityBand2011::new(200).0, 11);
    }

    #[test]
    fn band_translation_table() {
        // §3: band 3 in 2011 corresponds to raw priority 101.
        assert_eq!(PriorityBand2011::new(3).raw_priority(), Priority(101));
        assert_eq!(PriorityBand2011::new(0).raw_priority(), Priority(0));
        assert_eq!(PriorityBand2011::new(11).raw_priority(), Priority(450));
    }

    #[test]
    fn band_from_raw_round_trips() {
        for band in 0..=11u8 {
            let b = PriorityBand2011::new(band);
            assert_eq!(PriorityBand2011::from_raw(b.raw_priority()), b);
        }
        // In-between values map to the band below.
        assert_eq!(PriorityBand2011::from_raw(Priority(102)).0, 3);
        assert_eq!(PriorityBand2011::from_raw(Priority(300)).0, 9);
    }

    #[test]
    fn tier_boundaries_2011() {
        assert_eq!(PriorityBand2011::new(0).tier(), Tier::Free);
        assert_eq!(PriorityBand2011::new(1).tier(), Tier::Free);
        assert_eq!(PriorityBand2011::new(2).tier(), Tier::BestEffortBatch);
        assert_eq!(PriorityBand2011::new(8).tier(), Tier::BestEffortBatch);
        assert_eq!(PriorityBand2011::new(9).tier(), Tier::Production);
        assert_eq!(PriorityBand2011::new(10).tier(), Tier::Production);
        assert_eq!(PriorityBand2011::new(11).tier(), Tier::Monitoring);
    }

    #[test]
    fn representative_priorities_map_back() {
        for tier in Tier::ALL {
            assert_eq!(tier.representative_priority().tier(), tier);
        }
    }

    #[test]
    fn mid_absent_in_2011() {
        assert!(!Tier::Mid.present_in_2011());
        assert!(Tier::Production.present_in_2011());
    }
}
