//! Trace repair: reconstructing a validate-clean trace from damaged input.
//!
//! Real cluster traces ship with holes — §9 of the paper describes the
//! "raft of logical invariants" Google checked precisely because event
//! collection is lossy. [`repair`] is the executable counterpart of that
//! cleaning step: it walks every entity's lifecycle through the
//! [`StateMachine`], synthesizing the minimal legal bridge for events
//! whose predecessors were lost (a dropped `Schedule` before an observed
//! `Finish`, a dropped terminal before a resubmit), dropping events no
//! bridge can legalize, deduplicating exact duplicates, back-filling
//! missing collection submits and machine adds, and inserting `Lost`
//! terminations for instances that vanish along with their machine. The
//! returned [`RepairReport`] counts every action per table so callers
//! (and the chaos round-trip tests) can reconcile repairs against
//! ground-truth fault ledgers.
//!
//! The pass is fully deterministic: ordered containers only, no RNG, and
//! a stable time sort at the end, so `repair` of the same bytes yields
//! the same trace on every run.

use crate::collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
};
use crate::instance::{InstanceEvent, InstanceId};
use crate::machine::{MachineEvent, MachineEventType, MachineId, Platform};
use crate::resources::Resources;
use crate::state::{EventType, InstanceState, StateMachine, TerminationKind};
use crate::time::Micros;
use crate::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// Repair counts for one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableRepair {
    /// Exact duplicate rows removed.
    pub deduped: u64,
    /// Rows synthesized (lifecycle bridges, back-fills, `Lost` inserts).
    pub synthesized: u64,
    /// Rows dropped because no legal bridge exists.
    pub dropped: u64,
}

impl TableRepair {
    /// Total actions taken on the table.
    pub fn total(&self) -> u64 {
        self.deduped + self.synthesized + self.dropped
    }
}

/// Everything [`repair`] did to a trace, per table plus named counters
/// for the cross-table repairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Machine-events table actions.
    pub machine_events: TableRepair,
    /// Collection-events table actions.
    pub collection_events: TableRepair,
    /// Instance-events table actions.
    pub instance_events: TableRepair,
    /// Usage table actions.
    pub usage: TableRepair,
    /// `Lost` terminations inserted for instances still running when
    /// their machine was removed for good (also in
    /// `instance_events.synthesized`).
    pub lost_inserted: u64,
    /// Collection `Submit` rows back-filled for collections referenced
    /// only by instances (also in `collection_events.synthesized`).
    pub submits_backfilled: u64,
    /// Machine `Add` rows back-filled for machines referenced only by
    /// usage (also in `machine_events.synthesized`).
    pub machines_backfilled: u64,
    /// Inverted usage windows whose endpoints were swapped.
    pub windows_swapped: u64,
    /// Non-monotone CPU histograms re-sorted.
    pub histograms_sorted: u64,
}

impl RepairReport {
    /// Total repair actions across all tables.
    pub fn total_actions(&self) -> u64 {
        self.machine_events.total()
            + self.collection_events.total()
            + self.instance_events.total()
            + self.usage.total()
            + self.windows_swapped
            + self.histograms_sorted
    }

    /// True when the trace needed no repair at all.
    pub fn is_noop(&self) -> bool {
        self.total_actions() == 0
    }

    /// One-line human summary for report annotations.
    pub fn summary(&self) -> String {
        if self.is_noop() {
            return "repair: no action needed".to_string();
        }
        let dd = self.machine_events.deduped
            + self.collection_events.deduped
            + self.instance_events.deduped
            + self.usage.deduped;
        let sy = self.machine_events.synthesized
            + self.collection_events.synthesized
            + self.instance_events.synthesized
            + self.usage.synthesized;
        let dr = self.machine_events.dropped
            + self.collection_events.dropped
            + self.instance_events.dropped
            + self.usage.dropped;
        format!(
            "repair: {sy} synthesized ({} lost, {} submits, {} machine adds), \
             {dd} deduped, {dr} dropped, {} windows swapped, {} histograms sorted",
            self.lost_inserted,
            self.submits_backfilled,
            self.machines_backfilled,
            self.windows_swapped,
            self.histograms_sorted
        )
    }
}

/// Repairs a damaged trace in place so that [`crate::validate::validate`]
/// finds no violations, returning a count of every action taken. See the
/// module docs for the repair rules.
pub fn repair(trace: &mut Trace) -> RepairReport {
    let mut report = RepairReport::default();
    repair_machine_events(trace, &mut report);
    repair_collection_events(trace, &mut report);
    let still_running = repair_instance_events(trace, &mut report);
    insert_lost(trace, &still_running, &mut report);
    backfill_collections(trace, &mut report);
    repair_usage(trace, &mut report);
    backfill_machines(trace, &mut report);
    trace.sort();
    report
}

/// Outcome of feeding one event through the repairing walk.
enum Walk {
    /// Legal as observed.
    Legal,
    /// Legal after inserting these bridge events first.
    Bridged(&'static [EventType]),
    /// No legal bridge; the event must be dropped.
    Dropped,
}

/// Advances `sm` over `event`, bridging or dropping when illegal.
fn walk(sm: &mut StateMachine, event: EventType) -> Walk {
    if sm.apply(event).is_ok() {
        return Walk::Legal;
    }
    match bridge(sm.state(), event) {
        Some(b) => {
            for &e in b {
                let ok = sm.apply(e).is_ok();
                debug_assert!(ok, "repair bridge step {e} illegal");
            }
            let ok = sm.apply(event).is_ok();
            debug_assert!(ok, "repair bridge failed to legalize {event}");
            Walk::Bridged(b)
        }
        None => Walk::Dropped,
    }
}

/// The minimal legal event sequence that takes `state` to one where
/// `event` is applicable, or `None` when the event must be dropped.
/// Only consulted after [`StateMachine::apply`] rejected the pair.
///
/// The choices encode trace-doc semantics: a running-only event observed
/// early means the `Schedule` (and possibly `Submit`) was lost; a
/// `Submit` observed while running means the previous lifecycle's
/// terminal was lost, and `Evict` is the only terminal from which the
/// state machine legally accepts a resubmit; events after a final death
/// (`Finish`/`Kill`/`Lost`) are unrecoverable stale records.
fn bridge(state: Option<InstanceState>, event: EventType) -> Option<&'static [EventType]> {
    use EventType as E;
    use InstanceState as S;
    use TerminationKind as T;
    let b: &'static [E] = match (state, event) {
        // Nothing observed yet: conjure the prefix the event requires.
        (None, E::Queue | E::UpdatePending | E::Kill | E::Fail | E::Schedule) => &[E::Submit],
        (None, E::Finish | E::Evict | E::Lost | E::UpdateRunning) => &[E::Submit, E::Schedule],
        (None, E::Enable) => &[E::Submit, E::Queue],
        // A dropped terminal between lifecycles: close the old one with
        // an Evict before the resubmission.
        (Some(S::Running), E::Submit) => &[E::Evict],
        (Some(S::Running), E::Schedule | E::Queue) => &[E::Evict, E::Submit],
        (Some(S::Running), E::Enable) => &[E::Evict, E::Submit, E::Queue],
        // Running-only events observed while pending/queued: the
        // Schedule (and Enable) was lost.
        (Some(S::Pending), E::Finish | E::Evict | E::Lost | E::UpdateRunning) => &[E::Schedule],
        (Some(S::Pending), E::Enable) => &[E::Queue],
        (Some(S::Queued), E::Schedule | E::Fail) => &[E::Enable],
        (Some(S::Queued), E::Finish | E::Evict | E::Lost | E::UpdateRunning) => {
            &[E::Enable, E::Schedule]
        }
        // Resubmittable deaths with a dropped Submit.
        (
            Some(S::Dead(T::Evict | T::Fail)),
            E::Queue | E::UpdatePending | E::Kill | E::Fail | E::Schedule,
        ) => &[E::Submit],
        (Some(S::Dead(T::Evict | T::Fail)), E::Finish | E::Evict | E::Lost | E::UpdateRunning) => {
            &[E::Submit, E::Schedule]
        }
        (Some(S::Dead(T::Evict | T::Fail)), E::Enable) => &[E::Submit, E::Queue],
        // Redundant submits while alive, updates in the wrong phase, and
        // anything after a final death: stale records, dropped.
        _ => return None,
    };
    Some(b)
}

/// Removes later exact duplicates within each equal-time run of an
/// entity's stably time-sorted event list, returning the removed count.
/// Clean generated traces never contain two identical rows for the same
/// entity at the same timestamp, so every removal is a real duplicate.
fn dedupe_sorted<T: PartialEq + Copy>(evs: &mut Vec<T>, time: impl Fn(&T) -> Micros) -> u64 {
    let mut removed = 0;
    let mut out: Vec<T> = Vec::with_capacity(evs.len());
    let mut run_start = 0;
    for &e in evs.iter() {
        if out.last().map(&time) != Some(time(&e)) {
            run_start = out.len();
        }
        if out[run_start..].contains(&e) {
            removed += 1;
        } else {
            out.push(e);
        }
    }
    *evs = out;
    removed
}

fn repair_machine_events(trace: &mut Trace, report: &mut RepairReport) {
    let mut groups: BTreeMap<MachineId, Vec<MachineEvent>> = BTreeMap::new();
    for ev in &trace.machine_events {
        groups.entry(ev.machine_id).or_default().push(*ev);
    }
    let mut out = Vec::with_capacity(trace.machine_events.len());
    for (_, mut evs) in groups {
        evs.sort_by_key(|e| e.time);
        report.machine_events.deduped += dedupe_sorted(&mut evs, |e| e.time);
        out.extend(evs);
    }
    trace.machine_events = out;
}

fn repair_collection_events(trace: &mut Trace, report: &mut RepairReport) {
    let mut groups: BTreeMap<CollectionId, Vec<CollectionEvent>> = BTreeMap::new();
    for ev in &trace.collection_events {
        groups.entry(ev.collection_id).or_default().push(*ev);
    }
    let mut out = Vec::with_capacity(trace.collection_events.len());
    for (_, mut evs) in groups {
        evs.sort_by_key(|e| e.time);
        report.collection_events.deduped += dedupe_sorted(&mut evs, |e| e.time);
        let mut sm = StateMachine::new();
        for ev in evs {
            match walk(&mut sm, ev.event_type) {
                Walk::Legal => out.push(ev),
                Walk::Bridged(steps) => {
                    for &step in steps {
                        let mut synth = ev;
                        synth.event_type = step;
                        out.push(synth);
                        report.collection_events.synthesized += 1;
                    }
                    out.push(ev);
                }
                Walk::Dropped => report.collection_events.dropped += 1,
            }
        }
    }
    trace.collection_events = out;
}

/// An instance left in `Running` state at the end of its event stream:
/// the template for a possible `Lost` insertion.
struct RunningTail {
    last_event: InstanceEvent,
    last_machine: Option<MachineId>,
}

fn synth_instance(ev: &InstanceEvent, ty: EventType) -> InstanceEvent {
    let mut s = *ev;
    s.event_type = ty;
    if matches!(ty, EventType::Submit | EventType::Queue | EventType::Enable) {
        s.machine_id = None;
    }
    s
}

fn repair_instance_events(trace: &mut Trace, report: &mut RepairReport) -> Vec<RunningTail> {
    let mut groups: BTreeMap<InstanceId, Vec<InstanceEvent>> = BTreeMap::new();
    for ev in &trace.instance_events {
        groups.entry(ev.instance_id).or_default().push(*ev);
    }
    let mut out = Vec::with_capacity(trace.instance_events.len());
    let mut running = Vec::new();
    for (_, mut evs) in groups {
        evs.sort_by_key(|e| e.time);
        report.instance_events.deduped += dedupe_sorted(&mut evs, |e| e.time);
        let mut sm = StateMachine::new();
        let mut last_machine = None;
        let mut last_event = None;
        for ev in evs {
            match walk(&mut sm, ev.event_type) {
                Walk::Legal => out.push(ev),
                Walk::Bridged(steps) => {
                    for &step in steps {
                        out.push(synth_instance(&ev, step));
                        report.instance_events.synthesized += 1;
                    }
                    out.push(ev);
                }
                Walk::Dropped => {
                    report.instance_events.dropped += 1;
                    continue;
                }
            }
            last_machine = ev.machine_id.or(last_machine);
            last_event = Some(ev);
        }
        if sm.state() == Some(InstanceState::Running) {
            if let Some(last_event) = last_event {
                running.push(RunningTail {
                    last_event,
                    last_machine,
                });
            }
        }
    }
    trace.instance_events = out;
    running
}

/// Inserts a `Lost` termination for every instance still running at the
/// end of its stream whose machine's final event is a `Remove` at or
/// after the instance's last record — the paper-§9 "vanished instance"
/// artifact: the machine went away and monitoring never saw the end.
fn insert_lost(trace: &mut Trace, running: &[RunningTail], report: &mut RepairReport) {
    let mut fate: BTreeMap<MachineId, (Micros, MachineEventType)> = BTreeMap::new();
    for ev in &trace.machine_events {
        let slot = fate
            .entry(ev.machine_id)
            .or_insert((ev.time, ev.event_type));
        if ev.time >= slot.0 {
            *slot = (ev.time, ev.event_type);
        }
    }
    for tail in running {
        let Some(machine) = tail.last_machine else {
            continue;
        };
        let Some(&(removed_at, MachineEventType::Remove)) = fate.get(&machine) else {
            continue;
        };
        if removed_at < tail.last_event.time {
            continue;
        }
        let mut lost = tail.last_event;
        lost.event_type = EventType::Lost;
        lost.time = removed_at;
        lost.machine_id = Some(machine);
        trace.instance_events.push(lost);
        report.lost_inserted += 1;
        report.instance_events.synthesized += 1;
    }
}

/// Back-fills a `Submit` for every collection referenced by instance
/// events but absent from the collection table, so instances are not
/// orphans and downstream collection maps see their owners.
fn backfill_collections(trace: &mut Trace, report: &mut RepairReport) {
    if trace.instance_events.is_empty() {
        return;
    }
    let known: BTreeSet<CollectionId> = trace
        .collection_events
        .iter()
        .map(|e| e.collection_id)
        .collect();
    let mut first: BTreeMap<CollectionId, InstanceEvent> = BTreeMap::new();
    for ev in &trace.instance_events {
        if known.contains(&ev.instance_id.collection) {
            continue;
        }
        let slot = first.entry(ev.instance_id.collection).or_insert(*ev);
        if ev.time < slot.time {
            *slot = *ev;
        }
    }
    for (id, ev) in first {
        trace.collection_events.push(CollectionEvent {
            time: ev.time,
            collection_id: id,
            event_type: EventType::Submit,
            collection_type: CollectionType::Job,
            priority: ev.priority,
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            user_id: UserId(0),
        });
        report.submits_backfilled += 1;
        report.collection_events.synthesized += 1;
    }
}

fn repair_usage(trace: &mut Trace, report: &mut RepairReport) {
    for rec in &mut trace.usage {
        if rec.end < rec.start {
            std::mem::swap(&mut rec.start, &mut rec.end);
            report.windows_swapped += 1;
        }
        if !rec.cpu_histogram.is_monotone() {
            rec.cpu_histogram.0.sort_by(|a, b| a.total_cmp(b));
            report.histograms_sorted += 1;
        }
    }
    let mut groups: BTreeMap<(InstanceId, MachineId), Vec<crate::usage::UsageRecord>> =
        BTreeMap::new();
    for rec in &trace.usage {
        groups
            .entry((rec.instance_id, rec.machine_id))
            .or_default()
            .push(*rec);
    }
    let mut out = Vec::with_capacity(trace.usage.len());
    for (_, mut recs) in groups {
        recs.sort_by_key(|r| r.start);
        report.usage.deduped += dedupe_sorted(&mut recs, |r| r.start);
        out.extend(recs);
    }
    trace.usage = out;
}

/// Back-fills an `Add` at time zero for machines referenced by usage but
/// never added, sized to the peak summed window usage seen on them so
/// the capacity check cannot flag the reconstruction.
fn backfill_machines(trace: &mut Trace, report: &mut RepairReport) {
    if trace.usage.is_empty() {
        return;
    }
    let known: BTreeSet<MachineId> = trace
        .machine_events
        .iter()
        .filter(|e| {
            matches!(
                e.event_type,
                MachineEventType::Add | MachineEventType::Update
            )
        })
        .map(|e| e.machine_id)
        .collect();
    if known.is_empty() {
        // No capacity map at all: the capacity checks are vacuous and
        // there is nothing trustworthy to size a reconstruction from.
        return;
    }
    let mut windows: BTreeMap<(MachineId, Micros), Resources> = BTreeMap::new();
    for rec in &trace.usage {
        if known.contains(&rec.machine_id) {
            continue;
        }
        *windows
            .entry((rec.machine_id, rec.start))
            .or_insert(Resources::ZERO) += rec.avg_usage;
    }
    let mut caps: BTreeMap<MachineId, Resources> = BTreeMap::new();
    for ((machine, _), used) in windows {
        let cap = caps.entry(machine).or_insert(Resources::ZERO);
        cap.cpu = cap.cpu.max(used.cpu);
        cap.mem = cap.mem.max(used.mem);
    }
    for (machine, cap) in caps {
        trace
            .machine_events
            .push(MachineEvent::add(Micros::ZERO, machine, cap, Platform(0)));
        report.machines_backfilled += 1;
        report.machine_events.synthesized += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Priority;
    use crate::trace::SchemaVersion;
    use crate::usage::{CpuHistogram, UsageRecord};
    use crate::validate::validate;

    fn base() -> Trace {
        let mut t = Trace::new("r", SchemaVersion::V3Trace2019, Micros::from_days(1));
        t.machine_events.push(MachineEvent::add(
            Micros::ZERO,
            MachineId(0),
            Resources::new(1.0, 1.0),
            Platform(0),
        ));
        t
    }

    fn iev(id: u64, idx: u32, time_s: u64, ty: EventType) -> InstanceEvent {
        InstanceEvent {
            time: Micros::from_secs(time_s),
            instance_id: InstanceId::new(CollectionId(id), idx),
            event_type: ty,
            machine_id: Some(MachineId(0)),
            request: Resources::new(0.1, 0.1),
            priority: Priority::new(200),
            alloc_instance: None,
        }
    }

    fn cev(id: u64, time_s: u64, ty: EventType) -> CollectionEvent {
        CollectionEvent {
            time: Micros::from_secs(time_s),
            collection_id: CollectionId(id),
            event_type: ty,
            collection_type: CollectionType::Job,
            priority: Priority::new(200),
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            user_id: UserId(0),
        }
    }

    #[test]
    fn bridge_always_legalizes() {
        // For every (state, event) pair the state machine rejects, the
        // bridge either legalizes the event or drops it.
        let states = [
            None,
            Some(InstanceState::Pending),
            Some(InstanceState::Queued),
            Some(InstanceState::Running),
            Some(InstanceState::Dead(TerminationKind::Finish)),
            Some(InstanceState::Dead(TerminationKind::Evict)),
            Some(InstanceState::Dead(TerminationKind::Kill)),
            Some(InstanceState::Dead(TerminationKind::Fail)),
            Some(InstanceState::Dead(TerminationKind::Lost)),
        ];
        // Reconstruct each state via a legal prefix.
        let prefix = |s: Option<InstanceState>| -> Vec<EventType> {
            use EventType as E;
            match s {
                None => vec![],
                Some(InstanceState::Pending) => vec![E::Submit],
                Some(InstanceState::Queued) => vec![E::Submit, E::Queue],
                Some(InstanceState::Running) => vec![E::Submit, E::Schedule],
                Some(InstanceState::Dead(TerminationKind::Finish)) => {
                    vec![E::Submit, E::Schedule, E::Finish]
                }
                Some(InstanceState::Dead(TerminationKind::Evict)) => {
                    vec![E::Submit, E::Schedule, E::Evict]
                }
                Some(InstanceState::Dead(TerminationKind::Kill)) => vec![E::Submit, E::Kill],
                Some(InstanceState::Dead(TerminationKind::Fail)) => vec![E::Submit, E::Fail],
                Some(InstanceState::Dead(TerminationKind::Lost)) => {
                    vec![E::Submit, E::Schedule, E::Lost]
                }
            }
        };
        for s in states {
            for ev in EventType::ALL {
                let mut sm = StateMachine::new();
                for p in prefix(s) {
                    sm.apply(p).unwrap();
                }
                assert_eq!(sm.state(), s);
                if sm.apply(ev).is_ok() {
                    continue; // legal, bridge never consulted
                }
                if let Some(steps) = bridge(s, ev) {
                    assert!(!steps.is_empty());
                    for &b in steps {
                        sm.apply(b).unwrap_or_else(|e| {
                            panic!("bridge for ({s:?}, {ev}) illegal at {b}: {e}")
                        });
                    }
                    sm.apply(ev)
                        .unwrap_or_else(|e| panic!("bridge for ({s:?}, {ev}) did not work: {e}"));
                }
            }
        }
    }

    #[test]
    fn dropped_schedule_is_bridged() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        // Schedule lost; Finish observed while pending.
        t.instance_events.push(iev(1, 0, 50, EventType::Finish));
        let report = repair(&mut t);
        assert_eq!(report.instance_events.synthesized, 1);
        assert!(validate(&t).is_empty());
        assert!(t
            .instance_events
            .iter()
            .any(|e| e.event_type == EventType::Schedule && e.time == Micros::from_secs(50)));
    }

    #[test]
    fn dropped_terminal_before_resubmit_is_bridged_with_evict() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 10, EventType::Schedule));
        // Evict lost; resubmission observed while running.
        t.instance_events.push(iev(1, 0, 60, EventType::Submit));
        t.instance_events.push(iev(1, 0, 70, EventType::Schedule));
        t.instance_events.push(iev(1, 0, 90, EventType::Finish));
        let report = repair(&mut t);
        assert_eq!(report.instance_events.synthesized, 1);
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn exact_duplicates_deduped() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.collection_events.push(cev(1, 0, EventType::Submit)); // dup
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 10, EventType::Schedule));
        t.instance_events.push(iev(1, 0, 10, EventType::Schedule)); // dup
        let report = repair(&mut t);
        assert_eq!(report.collection_events.deduped, 1);
        assert_eq!(report.instance_events.deduped, 1);
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn interleaved_same_time_duplicate_found_across_run() {
        // Evict and resubmit share a timestamp; a duplicate of the Evict
        // separated from its original by the Submit must still dedupe.
        let mut evs = vec![
            iev(1, 0, 50, EventType::Evict),
            iev(1, 0, 50, EventType::Submit),
            iev(1, 0, 50, EventType::Evict), // dup, not adjacent
        ];
        let removed = dedupe_sorted(&mut evs, |e| e.time);
        assert_eq!(removed, 1);
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn events_after_final_death_dropped() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 10, EventType::Kill));
        // Stale record after a final death: unrecoverable.
        t.instance_events.push(iev(1, 0, 20, EventType::Schedule));
        let report = repair(&mut t);
        assert_eq!(report.instance_events.dropped, 1);
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn vanished_instance_gets_lost_termination() {
        let mut t = base();
        t.machine_events.push(MachineEvent {
            time: Micros::from_secs(100),
            machine_id: MachineId(0),
            event_type: MachineEventType::Remove,
            capacity: Resources::ZERO,
            platform: Platform(0),
        });
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 10, EventType::Schedule));
        // No terminal: the instance vanished with its machine.
        let report = repair(&mut t);
        assert_eq!(report.lost_inserted, 1);
        let lost = t
            .instance_events
            .iter()
            .find(|e| e.event_type == EventType::Lost)
            .expect("lost inserted");
        assert_eq!(lost.time, Micros::from_secs(100));
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn no_lost_for_instance_on_live_machine() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 10, EventType::Schedule));
        let report = repair(&mut t);
        assert_eq!(report.lost_inserted, 0);
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn orphan_collection_backfilled() {
        let mut t = base();
        t.collection_events.push(cev(9, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 5, EventType::Submit));
        let report = repair(&mut t);
        assert_eq!(report.submits_backfilled, 1);
        assert!(validate(&t).is_empty());
        assert!(t
            .collection_events
            .iter()
            .any(|e| e.collection_id == CollectionId(1) && e.event_type == EventType::Submit));
    }

    #[test]
    fn unknown_machine_backfilled_with_peak_capacity() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.usage.push(UsageRecord {
            start: Micros::ZERO,
            end: Micros::from_minutes(5),
            instance_id: InstanceId::new(CollectionId(1), 0),
            machine_id: MachineId(77),
            avg_usage: Resources::new(0.4, 0.2),
            max_usage: Resources::new(0.5, 0.2),
            limit: Resources::new(0.5, 0.2),
            cpu_histogram: CpuHistogram([0.1; 21]),
        });
        let report = repair(&mut t);
        assert_eq!(report.machines_backfilled, 1);
        assert!(validate(&t).is_empty());
        let add = t
            .machine_events
            .iter()
            .find(|e| e.machine_id == MachineId(77))
            .expect("machine backfilled");
        assert!((add.capacity.cpu - 0.4).abs() < 1e-12);
    }

    #[test]
    fn inverted_window_and_histogram_fixed() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        let mut rec = UsageRecord {
            start: Micros::from_minutes(5),
            end: Micros::ZERO, // inverted
            instance_id: InstanceId::new(CollectionId(1), 0),
            machine_id: MachineId(0),
            avg_usage: Resources::new(0.1, 0.1),
            max_usage: Resources::new(0.2, 0.1),
            limit: Resources::new(0.5, 0.2),
            cpu_histogram: CpuHistogram([0.1; 21]),
        };
        rec.cpu_histogram.0[0] = 0.9; // non-monotone
        t.usage.push(rec);
        let report = repair(&mut t);
        assert_eq!(report.windows_swapped, 1);
        assert_eq!(report.histograms_sorted, 1);
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn clean_trace_is_noop() {
        let mut t = base();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.collection_events.push(cev(1, 1, EventType::Schedule));
        t.collection_events.push(cev(1, 100, EventType::Finish));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 1, EventType::Schedule));
        t.instance_events.push(iev(1, 0, 100, EventType::Finish));
        let before = t.clone();
        let report = repair(&mut t);
        assert!(report.is_noop(), "{report:?}");
        assert_eq!(t.instance_events, before.instance_events);
        assert_eq!(t.collection_events, before.collection_events);
        assert!(report.summary().contains("no action"));
    }
}
