//! Machine events and hardware platforms.
//!
//! The machine-events table records every machine joining, leaving, or
//! being updated (capacity change) in the cell. Capacities are normalized
//! so the largest machine in the trace is 1.0 in each dimension; the 2019
//! trace has 21 distinct (platform, capacity) "shapes" across 7 hardware
//! platforms, the 2011 trace 10 shapes across 3 platforms (Table 1).

use crate::resources::Resources;
use crate::time::Micros;
use std::fmt;

/// Identifier of a machine within one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A hardware platform (micro-architecture family), anonymized as in the
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Platform(pub u8);

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform-{}", self.0)
    }
}

/// What happened to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineEventType {
    /// The machine became available to the scheduler.
    Add,
    /// The machine was removed (failure or maintenance such as the
    /// roughly-monthly OS upgrade mentioned in §5.2).
    Remove,
    /// The machine's available capacity changed.
    Update,
}

/// One row of the machine-events table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineEvent {
    /// Event timestamp.
    pub time: Micros,
    /// Which machine.
    pub machine_id: MachineId,
    /// What happened.
    pub event_type: MachineEventType,
    /// Normalized capacity after the event (meaningful for add/update).
    pub capacity: Resources,
    /// Hardware platform.
    pub platform: Platform,
}

impl MachineEvent {
    /// Convenience constructor for the initial `Add` of a machine.
    pub fn add(
        time: Micros,
        machine_id: MachineId,
        capacity: Resources,
        platform: Platform,
    ) -> Self {
        MachineEvent {
            time,
            machine_id,
            event_type: MachineEventType::Add,
            capacity,
            platform,
        }
    }
}

/// A distinct machine shape: platform plus normalized capacity. Figure 1
/// plots the frequency of these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineShape {
    /// Hardware platform.
    pub platform: Platform,
    /// Normalized capacity.
    pub capacity: Resources,
}

impl MachineShape {
    /// Shape equality with a small tolerance on the float capacities, used
    /// when counting distinct shapes in a trace.
    pub fn matches(&self, other: &MachineShape) -> bool {
        self.platform == other.platform
            && (self.capacity.cpu - other.capacity.cpu).abs() < 1e-9
            && (self.capacity.mem - other.capacity.mem).abs() < 1e-9
    }
}

/// Shape statistics plus an exact account of what the census skipped.
///
/// `count_shapes` historically ignored `Remove`/`Update` rows without a
/// trace, so capacity series derived from the shape table silently
/// overstated fleets that shrank or were rebalanced. The census keeps the
/// same `Add`-only shape counting but reports how many rows it ignored.
#[derive(Debug, Clone, Default)]
pub struct ShapeCensus {
    /// Distinct `(shape, add-count)` pairs, most common first.
    pub shapes: Vec<(MachineShape, usize)>,
    /// `Add` rows counted into `shapes`.
    pub adds: usize,
    /// `Remove` rows skipped by the census.
    pub ignored_removes: usize,
    /// `Update` rows skipped by the census.
    pub ignored_updates: usize,
}

impl ShapeCensus {
    /// Total rows the census skipped (`Remove` + `Update`).
    pub fn ignored(&self) -> usize {
        self.ignored_removes + self.ignored_updates
    }
}

/// Full shape census over the machine-events table: `Add` rows are
/// grouped into shapes, non-`Add` rows are counted rather than silently
/// dropped.
pub fn shape_census(events: &[MachineEvent]) -> ShapeCensus {
    let mut census = ShapeCensus::default();
    for ev in events {
        match ev.event_type {
            MachineEventType::Remove => {
                census.ignored_removes += 1;
                continue;
            }
            MachineEventType::Update => {
                census.ignored_updates += 1;
                continue;
            }
            MachineEventType::Add => census.adds += 1,
        }
        let shape = MachineShape {
            platform: ev.platform,
            capacity: ev.capacity,
        };
        if let Some(entry) = census.shapes.iter_mut().find(|(s, _)| s.matches(&shape)) {
            entry.1 += 1;
        } else {
            census.shapes.push((shape, 1));
        }
    }
    census.shapes.sort_by_key(|s| std::cmp::Reverse(s.1));
    census
}

/// Counts distinct machine shapes among `Add` events — the Figure 1 /
/// Table 1 "machine shapes" statistic. See [`shape_census`] for the
/// variant that also reports ignored `Remove`/`Update` rows.
pub fn count_shapes(events: &[MachineEvent]) -> Vec<(MachineShape, usize)> {
    shape_census(events).shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u32, ty: MachineEventType, cpu: f64, plat: u8) -> MachineEvent {
        MachineEvent {
            time: Micros::ZERO,
            machine_id: MachineId(id),
            event_type: ty,
            capacity: Resources::new(cpu, 0.5),
            platform: Platform(plat),
        }
    }

    #[test]
    fn shapes_counted_by_platform_and_capacity() {
        let events = vec![
            ev(0, MachineEventType::Add, 1.0, 0),
            ev(1, MachineEventType::Add, 1.0, 0),
            ev(2, MachineEventType::Add, 1.0, 1), // same capacity, new platform
            ev(3, MachineEventType::Add, 0.5, 0),
            ev(4, MachineEventType::Remove, 1.0, 0), // ignored
        ];
        let shapes = count_shapes(&events);
        assert_eq!(shapes.len(), 3);
        assert_eq!(shapes[0].1, 2); // most common first
    }

    #[test]
    fn census_counts_ignored_rows() {
        let events = vec![
            ev(0, MachineEventType::Add, 1.0, 0),
            ev(0, MachineEventType::Remove, 1.0, 0),
            ev(0, MachineEventType::Update, 0.5, 0),
            ev(1, MachineEventType::Add, 1.0, 0),
            ev(1, MachineEventType::Remove, 1.0, 0),
        ];
        let census = shape_census(&events);
        assert_eq!(census.adds, 2);
        assert_eq!(census.ignored_removes, 2);
        assert_eq!(census.ignored_updates, 1);
        assert_eq!(census.ignored(), 3);
        assert_eq!(census.shapes.len(), 1);
        assert_eq!(census.shapes[0].1, 2);
    }

    #[test]
    fn add_constructor() {
        let e = MachineEvent::add(
            Micros::from_secs(1),
            MachineId(7),
            Resources::new(0.5, 0.5),
            Platform(2),
        );
        assert_eq!(e.event_type, MachineEventType::Add);
        assert_eq!(e.machine_id, MachineId(7));
    }

    #[test]
    fn display_impls() {
        assert_eq!(MachineId(3).to_string(), "m3");
        assert_eq!(Platform(1).to_string(), "platform-1");
    }
}
