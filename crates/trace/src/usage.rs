//! Usage samples.
//!
//! The usage table records, for every instance and every 5-minute window,
//! the average and maximum observed CPU and the average memory, plus — new
//! in the 2019 trace (§3) — a 21-element histogram of CPU utilization
//! within the window, biased towards high percentiles. The paper's §8
//! "peak NCU slack" metric is computed from the per-window maximum CPU and
//! the limit in force.

use crate::instance::InstanceId;
use crate::machine::MachineId;
use crate::resources::Resources;
use crate::time::Micros;

/// The 21 percentile points of the v3 CPU-utilization histogram, biased
/// towards high percentiles as described in §3.
pub const CPU_HISTOGRAM_PERCENTILES: [f64; 21] = [
    0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 85.0, 90.0, 91.0, 92.0, 93.0, 94.0, 95.0,
    96.0, 97.0, 98.0, 99.0, 100.0,
];

/// A 21-element CPU-utilization histogram for one 5-minute window: the CPU
/// usage at each of [`CPU_HISTOGRAM_PERCENTILES`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuHistogram(pub [f32; 21]);

impl CpuHistogram {
    /// Builds the histogram from fine-grained within-window samples.
    ///
    /// Returns an all-zero histogram for empty input.
    pub fn from_samples(samples: &[f64]) -> CpuHistogram {
        CpuHistogram::from_samples_with(samples, &mut Vec::new())
    }

    /// [`CpuHistogram::from_samples`] sorting into a caller-owned
    /// scratch buffer (cleared first), so periodic samplers build one
    /// histogram per window without allocating. Identical output.
    pub fn from_samples_with(samples: &[f64], scratch: &mut Vec<f64>) -> CpuHistogram {
        if samples.is_empty() {
            return CpuHistogram([0.0; 21]);
        }
        scratch.clear();
        scratch.extend(samples.iter().copied().filter(|x| x.is_finite()));
        if scratch.is_empty() {
            return CpuHistogram([0.0; 21]);
        }
        scratch.sort_by(|a, b| a.total_cmp(b));
        let mut out = [0.0f32; 21];
        for (i, &p) in CPU_HISTOGRAM_PERCENTILES.iter().enumerate() {
            let rank = p / 100.0 * (scratch.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            out[i] = (scratch[lo] * (1.0 - frac) + scratch[hi] * frac) as f32;
        }
        CpuHistogram(out)
    }

    /// The p0 value (minimum within the window).
    pub fn min(&self) -> f32 {
        self.0[0]
    }

    /// The p100 value (maximum within the window).
    pub fn max(&self) -> f32 {
        self.0[20]
    }

    /// The median (p50) value.
    pub fn median(&self) -> f32 {
        self.0[5]
    }

    /// True when percentile values are non-decreasing — an invariant every
    /// valid histogram satisfies.
    pub fn is_monotone(&self) -> bool {
        self.0.windows(2).all(|w| w[0] <= w[1])
    }
}

/// One row of the instance-usage table: one instance over one sampling
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageRecord {
    /// Window start.
    pub start: Micros,
    /// Window end (usually `start + 5 minutes`).
    pub end: Micros,
    /// Which instance.
    pub instance_id: InstanceId,
    /// Machine the instance was running on.
    pub machine_id: MachineId,
    /// Average usage over the window.
    pub avg_usage: Resources,
    /// Maximum observed usage within the window.
    pub max_usage: Resources,
    /// The limit in force during the window (post-Autopilot if scaled).
    pub limit: Resources,
    /// CPU-utilization histogram within the window.
    pub cpu_histogram: CpuHistogram,
}

impl UsageRecord {
    /// The §8 *peak NCU slack*:
    /// `max(0, limit − max usage) / limit`, or `None` when the CPU limit
    /// is zero.
    pub fn peak_ncu_slack(&self) -> Option<f64> {
        if self.limit.cpu <= 0.0 {
            return None;
        }
        Some(((self.limit.cpu - self.max_usage.cpu).max(0.0)) / self.limit.cpu)
    }

    /// Window duration.
    pub fn duration(&self) -> Micros {
        self.end.saturating_sub(self.start)
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::collection::CollectionId;

    fn record(limit_cpu: f64, max_cpu: f64) -> UsageRecord {
        UsageRecord {
            start: Micros::ZERO,
            end: Micros::from_minutes(5),
            instance_id: InstanceId::new(CollectionId(1), 0),
            machine_id: MachineId(0),
            avg_usage: Resources::new(max_cpu * 0.8, 0.1),
            max_usage: Resources::new(max_cpu, 0.12),
            limit: Resources::new(limit_cpu, 0.2),
            cpu_histogram: CpuHistogram([0.0; 21]),
        }
    }

    #[test]
    fn histogram_from_samples_monotone() {
        let samples: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 997) as f64 / 997.0)
            .collect();
        let h = CpuHistogram::from_samples(&samples);
        assert!(h.is_monotone());
        assert!(h.min() < 0.02);
        assert!(h.max() > 0.98);
        assert!((h.median() - 0.5).abs() < 0.05);
    }

    #[test]
    fn histogram_empty() {
        let h = CpuHistogram::from_samples(&[]);
        assert_eq!(h.max(), 0.0);
        assert!(h.is_monotone());
    }

    #[test]
    fn histogram_constant() {
        let h = CpuHistogram::from_samples(&[0.3; 50]);
        assert_eq!(h.min(), 0.3);
        assert_eq!(h.max(), 0.3);
    }

    #[test]
    fn peak_slack() {
        assert_eq!(record(1.0, 0.25).peak_ncu_slack(), Some(0.75));
        // Work-conserving CPU can exceed the limit; slack clamps at zero.
        assert_eq!(record(0.5, 0.9).peak_ncu_slack(), Some(0.0));
        assert_eq!(record(0.0, 0.1).peak_ncu_slack(), None);
    }

    #[test]
    fn duration() {
        assert_eq!(record(1.0, 0.1).duration(), Micros::from_minutes(5));
    }

    #[test]
    fn percentile_points_are_21_biased_high() {
        assert_eq!(CPU_HISTOGRAM_PERCENTILES.len(), 21);
        // More than half the points are at or above the 80th percentile.
        let high = CPU_HISTOGRAM_PERCENTILES
            .iter()
            .filter(|&&p| p >= 80.0)
            .count();
        assert!(high > 10);
    }
}
