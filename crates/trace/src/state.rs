//! The collection/instance lifecycle state machine (Figure 7).
//!
//! Collections and instances move through a small set of states driven by
//! scheduler events. §5.2 and Figure 7 of the paper analyze these
//! transitions; the four terminal events are finish (success), evict
//! (infrastructure-initiated), kill (user- or parent-initiated), and fail
//! (the program's own problem).

use std::collections::BTreeMap;
use std::fmt;

/// Event vocabulary of the v3 trace, shared by collections and instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventType {
    /// Submitted to the Borgmaster; becomes pending.
    Submit,
    /// Parked in the batch-scheduler queue.
    Queue,
    /// Released from the queue; pending and ready to be placed.
    Enable,
    /// Placed on a machine; running.
    Schedule,
    /// De-scheduled by the infrastructure (maintenance, preemption, or
    /// over-commit reclamation); almost always followed by resubmission.
    Evict,
    /// Terminated by its own problem (segfault, over-limit memory use).
    Fail,
    /// Completed normally.
    Finish,
    /// Canceled by the user or cascaded from a parent's termination.
    Kill,
    /// Disappeared from monitoring (rare data-collection artifact).
    Lost,
    /// Attributes changed while awaiting placement.
    UpdatePending,
    /// Attributes changed while running (e.g. an Autopilot limit change).
    UpdateRunning,
}

impl EventType {
    /// All event types in a stable order.
    pub const ALL: [EventType; 11] = [
        EventType::Submit,
        EventType::Queue,
        EventType::Enable,
        EventType::Schedule,
        EventType::Evict,
        EventType::Fail,
        EventType::Finish,
        EventType::Kill,
        EventType::Lost,
        EventType::UpdatePending,
        EventType::UpdateRunning,
    ];

    /// True for the four termination events plus `Lost`.
    pub const fn is_terminal(self) -> bool {
        matches!(
            self,
            EventType::Evict
                | EventType::Fail
                | EventType::Finish
                | EventType::Kill
                | EventType::Lost
        )
    }

    /// Short lowercase name as used in the trace tables.
    pub const fn name(self) -> &'static str {
        match self {
            EventType::Submit => "submit",
            EventType::Queue => "queue",
            EventType::Enable => "enable",
            EventType::Schedule => "schedule",
            EventType::Evict => "evict",
            EventType::Fail => "fail",
            EventType::Finish => "finish",
            EventType::Kill => "kill",
            EventType::Lost => "lost",
            EventType::UpdatePending => "update_pending",
            EventType::UpdateRunning => "update_running",
        }
    }

    /// Parses the lowercase name produced by [`EventType::name`].
    pub fn parse(s: &str) -> Option<EventType> {
        EventType::ALL.iter().copied().find(|e| e.name() == s)
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lifecycle states of a collection or instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstanceState {
    /// Submitted, awaiting a placement decision.
    Pending,
    /// Held in the batch-scheduler queue (§3 "batch queueing").
    Queued,
    /// Placed on a machine and running.
    Running,
    /// Terminated; the payload records how.
    Dead(TerminationKind),
}

/// How a collection or instance terminated (§5.2's four events, plus the
/// rare `Lost`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TerminationKind {
    /// Completed normally ("success").
    Finish,
    /// De-scheduled by the infrastructure.
    Evict,
    /// Canceled by the user or a parent-job cascade.
    Kill,
    /// Died of its own problem.
    Fail,
    /// Vanished from monitoring.
    Lost,
}

impl InstanceState {
    /// Short name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            InstanceState::Pending => "pending",
            InstanceState::Queued => "queued",
            InstanceState::Running => "running",
            InstanceState::Dead(TerminationKind::Finish) => "finished",
            InstanceState::Dead(TerminationKind::Evict) => "evicted",
            InstanceState::Dead(TerminationKind::Kill) => "killed",
            InstanceState::Dead(TerminationKind::Fail) => "failed",
            InstanceState::Dead(TerminationKind::Lost) => "lost",
        }
    }

    /// True when terminated.
    pub const fn is_dead(self) -> bool {
        matches!(self, InstanceState::Dead(_))
    }
}

impl fmt::Display for InstanceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic state machine that applies trace events and rejects
/// illegal transitions — the §9 "logical invariants" check in executable
/// form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateMachine {
    state: Option<InstanceState>,
}

/// An illegal transition: the event was not applicable in the current
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State before the offending event (`None` = not yet submitted).
    pub from: Option<InstanceState>,
    /// The offending event.
    pub event: EventType,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(s) => write!(f, "illegal event {} in state {}", self.event, s),
            None => write!(f, "illegal first event {}", self.event),
        }
    }
}

impl std::error::Error for IllegalTransition {}

impl Default for StateMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl StateMachine {
    /// A fresh, not-yet-submitted entity.
    pub const fn new() -> Self {
        StateMachine { state: None }
    }

    /// Current state (`None` before the first submit).
    pub const fn state(&self) -> Option<InstanceState> {
        self.state
    }

    /// Applies an event, returning the new state or an error for an
    /// illegal transition. Evicted entities may be resubmitted (the §5.2
    /// observation that almost all evicted instances are rescheduled).
    pub fn apply(&mut self, event: EventType) -> Result<InstanceState, IllegalTransition> {
        use EventType as E;
        use InstanceState as S;
        let next = match (self.state, event) {
            (None, E::Submit) => S::Pending,
            (Some(S::Pending), E::Queue) => S::Queued,
            (Some(S::Queued), E::Enable) => S::Pending,
            (Some(S::Pending), E::Schedule) => S::Running,
            (Some(S::Pending), E::UpdatePending) => S::Pending,
            (Some(S::Queued), E::UpdatePending) => S::Queued,
            (Some(S::Running), E::UpdateRunning) => S::Running,
            (Some(S::Running), E::Evict) => S::Dead(TerminationKind::Evict),
            (Some(S::Running), E::Finish) => S::Dead(TerminationKind::Finish),
            (Some(S::Running), E::Fail) => S::Dead(TerminationKind::Fail),
            (Some(S::Running), E::Lost) => S::Dead(TerminationKind::Lost),
            (Some(S::Running), E::Kill)
            | (Some(S::Pending), E::Kill)
            | (Some(S::Queued), E::Kill) => S::Dead(TerminationKind::Kill),
            // Pending work can also fail (e.g. an unsatisfiable constraint)
            // or be evicted from the queue in rare cases.
            (Some(S::Pending), E::Fail) => S::Dead(TerminationKind::Fail),
            // Resubmission after eviction (or after a failure, for
            // collections with retries).
            (Some(S::Dead(TerminationKind::Evict)), E::Submit)
            | (Some(S::Dead(TerminationKind::Fail)), E::Submit) => S::Pending,
            (from, event) => return Err(IllegalTransition { from, event }),
        };
        self.state = Some(next);
        Ok(next)
    }
}

/// Counts of `(from-state, event)` transitions across many entities — the
/// data behind Figure 7.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    counts: BTreeMap<(Option<InstanceState>, EventType), u64>,
}

impl TransitionCounts {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transition.
    pub fn record(&mut self, from: Option<InstanceState>, event: EventType) {
        *self.counts.entry((from, event)).or_insert(0) += 1;
    }

    /// Count for a specific transition.
    pub fn get(&self, from: Option<InstanceState>, event: EventType) -> u64 {
        self.counts.get(&(from, event)).copied().unwrap_or(0)
    }

    /// All transitions with counts, most frequent first.
    pub fn sorted(&self) -> Vec<(Option<InstanceState>, EventType, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .map(|(&(from, ev), &c)| (from, ev, c))
            .collect();
        v.sort_by_key(|t| std::cmp::Reverse(t.2));
        v
    }

    /// Total number of recorded transitions.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TransitionCounts) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_finish() {
        let mut sm = StateMachine::new();
        assert_eq!(sm.apply(EventType::Submit).unwrap(), InstanceState::Pending);
        assert_eq!(
            sm.apply(EventType::Schedule).unwrap(),
            InstanceState::Running
        );
        assert_eq!(
            sm.apply(EventType::Finish).unwrap(),
            InstanceState::Dead(TerminationKind::Finish)
        );
    }

    #[test]
    fn batch_queue_path() {
        let mut sm = StateMachine::new();
        sm.apply(EventType::Submit).unwrap();
        assert_eq!(sm.apply(EventType::Queue).unwrap(), InstanceState::Queued);
        assert_eq!(sm.apply(EventType::Enable).unwrap(), InstanceState::Pending);
        sm.apply(EventType::Schedule).unwrap();
    }

    #[test]
    fn evict_then_resubmit() {
        let mut sm = StateMachine::new();
        sm.apply(EventType::Submit).unwrap();
        sm.apply(EventType::Schedule).unwrap();
        sm.apply(EventType::Evict).unwrap();
        assert_eq!(sm.apply(EventType::Submit).unwrap(), InstanceState::Pending);
        sm.apply(EventType::Schedule).unwrap();
        sm.apply(EventType::Finish).unwrap();
    }

    #[test]
    fn kill_from_any_live_state() {
        for setup in [
            vec![EventType::Submit],
            vec![EventType::Submit, EventType::Queue],
            vec![EventType::Submit, EventType::Schedule],
        ] {
            let mut sm = StateMachine::new();
            for e in setup {
                sm.apply(e).unwrap();
            }
            assert_eq!(
                sm.apply(EventType::Kill).unwrap(),
                InstanceState::Dead(TerminationKind::Kill)
            );
        }
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut sm = StateMachine::new();
        assert!(sm.apply(EventType::Schedule).is_err()); // schedule before submit
        sm.apply(EventType::Submit).unwrap();
        assert!(sm.apply(EventType::Enable).is_err()); // enable while pending
        sm.apply(EventType::Schedule).unwrap();
        sm.apply(EventType::Finish).unwrap();
        assert!(sm.apply(EventType::Schedule).is_err()); // schedule after finish
        assert!(sm.apply(EventType::Submit).is_err()); // no resubmit after success
    }

    #[test]
    fn updates_do_not_change_state() {
        let mut sm = StateMachine::new();
        sm.apply(EventType::Submit).unwrap();
        assert_eq!(
            sm.apply(EventType::UpdatePending).unwrap(),
            InstanceState::Pending
        );
        sm.apply(EventType::Schedule).unwrap();
        assert_eq!(
            sm.apply(EventType::UpdateRunning).unwrap(),
            InstanceState::Running
        );
        assert!(sm.apply(EventType::UpdatePending).is_err());
    }

    #[test]
    fn terminal_classification() {
        assert!(EventType::Finish.is_terminal());
        assert!(EventType::Evict.is_terminal());
        assert!(EventType::Kill.is_terminal());
        assert!(EventType::Fail.is_terminal());
        assert!(EventType::Lost.is_terminal());
        assert!(!EventType::Submit.is_terminal());
        assert!(!EventType::UpdateRunning.is_terminal());
    }

    #[test]
    fn event_name_round_trip() {
        for e in EventType::ALL {
            assert_eq!(EventType::parse(e.name()), Some(e));
        }
        assert_eq!(EventType::parse("bogus"), None);
    }

    #[test]
    fn transition_counts() {
        let mut tc = TransitionCounts::new();
        tc.record(None, EventType::Submit);
        tc.record(None, EventType::Submit);
        tc.record(Some(InstanceState::Pending), EventType::Schedule);
        assert_eq!(tc.get(None, EventType::Submit), 2);
        assert_eq!(tc.total(), 3);
        let sorted = tc.sorted();
        assert_eq!(sorted[0].2, 2);

        let mut other = TransitionCounts::new();
        other.record(None, EventType::Submit);
        tc.merge(&other);
        assert_eq!(tc.get(None, EventType::Submit), 3);
    }
}
