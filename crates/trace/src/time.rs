//! Trace timestamps.
//!
//! Both public traces timestamp events in microseconds from the start of
//! the trace window. [`Micros`] is a thin wrapper that keeps that unit
//! explicit and provides the hour/day bucketing the analyses rely on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
pub const MICROS_PER_SECOND: u64 = 1_000_000;
/// Microseconds in one minute.
pub const MICROS_PER_MINUTE: u64 = 60 * MICROS_PER_SECOND;
/// Microseconds in one 5-minute usage-sampling window.
pub const MICROS_PER_FIVE_MINUTES: u64 = 5 * MICROS_PER_MINUTE;
/// Microseconds in one hour (the aggregation bucket of Figures 2 and 4).
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MINUTE;
/// Microseconds in one day.
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

/// A timestamp or duration in microseconds since trace start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero (trace start).
    pub const ZERO: Micros = Micros(0);

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Micros {
        Micros(s * MICROS_PER_SECOND)
    }

    /// Constructs from whole minutes.
    pub const fn from_minutes(m: u64) -> Micros {
        Micros(m * MICROS_PER_MINUTE)
    }

    /// Constructs from whole hours.
    pub const fn from_hours(h: u64) -> Micros {
        Micros(h * MICROS_PER_HOUR)
    }

    /// Constructs from whole days.
    pub const fn from_days(d: u64) -> Micros {
        Micros(d * MICROS_PER_DAY)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SECOND as f64
    }

    /// Value in (fractional) hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Value in (fractional) days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_DAY as f64
    }

    /// Index of the hour-long bucket containing this timestamp.
    pub const fn hour_index(self) -> u64 {
        self.0 / MICROS_PER_HOUR
    }

    /// Index of the day containing this timestamp (day 0 is the first).
    pub const fn day_index(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }

    /// Index of the 5-minute usage window containing this timestamp.
    pub const fn five_minute_index(self) -> u64 {
        self.0 / MICROS_PER_FIVE_MINUTES
    }

    /// Start of the 5-minute window containing this timestamp.
    pub const fn five_minute_floor(self) -> Micros {
        Micros(self.0 / MICROS_PER_FIVE_MINUTES * MICROS_PER_FIVE_MINUTES)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Micros) -> Option<Micros> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Micros(v)),
            None => None,
        }
    }

    /// Smaller of two timestamps.
    pub fn min(self, rhs: Micros) -> Micros {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Larger of two timestamps.
    pub fn max(self, rhs: Micros) -> Micros {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Micros::from_secs(60), Micros::from_minutes(1));
        assert_eq!(Micros::from_minutes(60), Micros::from_hours(1));
        assert_eq!(Micros::from_hours(24), Micros::from_days(1));
    }

    #[test]
    fn bucketing() {
        let t = Micros::from_hours(25) + Micros::from_minutes(7);
        assert_eq!(t.hour_index(), 25);
        assert_eq!(t.day_index(), 1);
        assert_eq!(t.five_minute_index(), 25 * 12 + 1);
        assert_eq!(
            t.five_minute_floor(),
            Micros::from_hours(25) + Micros::from_minutes(5)
        );
    }

    #[test]
    fn float_views() {
        let t = Micros::from_hours(36);
        assert_eq!(t.as_hours_f64(), 36.0);
        assert_eq!(t.as_days_f64(), 1.5);
        assert_eq!(Micros::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let a = Micros::from_secs(10);
        let b = Micros::from_secs(4);
        assert_eq!(a - b, Micros::from_secs(6));
        assert_eq!(a + b, Micros::from_secs(14));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros::from_secs(14));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Micros::from_secs(1);
        let b = Micros::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Micros(u64::MAX).checked_add(Micros(1)), None);
        assert_eq!(Micros(1).checked_add(Micros(2)), Some(Micros(3)));
    }
}
