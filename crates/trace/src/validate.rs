//! Trace validation: the §9 "logical invariants" as an executable check.
//!
//! §9 of the paper describes checking "a raft of logical invariants" such
//! as *the total resource usage of all instances on a machine should be
//! smaller than the machine's capacity* and *a submit event should happen
//! before any termination event*. [`validate`] runs those checks over a
//! trace and returns every violation, so generators can assert their
//! output is internally consistent and analysts can quantify collection
//! noise in external traces.

use crate::machine::{MachineEventType, MachineId};
use crate::resources::Resources;
use crate::state::{EventType, StateMachine};
use crate::time::Micros;
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An instance's event sequence broke the lifecycle state machine.
    IllegalInstanceTransition {
        /// The instance.
        instance: crate::instance::InstanceId,
        /// The event that was illegal.
        event: EventType,
        /// When.
        time: Micros,
    },
    /// A collection's event sequence broke the lifecycle state machine.
    IllegalCollectionTransition {
        /// The collection.
        collection: crate::collection::CollectionId,
        /// The event that was illegal.
        event: EventType,
        /// When.
        time: Micros,
    },
    /// A terminal event preceded the first submit.
    TerminationBeforeSubmit {
        /// The collection.
        collection: crate::collection::CollectionId,
    },
    /// A usage record references a machine never added to the cell.
    UsageOnUnknownMachine {
        /// The machine.
        machine: MachineId,
    },
    /// Summed average usage on a machine exceeded its capacity in some
    /// window by more than the tolerance.
    MachineOverCapacity {
        /// The machine.
        machine: MachineId,
        /// Start of the offending window.
        window: Micros,
        /// Summed CPU usage in the window.
        cpu_used: f64,
        /// The machine's CPU capacity.
        cpu_capacity: f64,
    },
    /// A usage record with a negative or inverted time window.
    BadUsageWindow {
        /// The instance.
        instance: crate::instance::InstanceId,
    },
    /// An instance event references a collection with no events.
    OrphanInstance {
        /// The instance.
        instance: crate::instance::InstanceId,
    },
    /// A usage record's CPU histogram is not monotone.
    NonMonotoneHistogram {
        /// The instance.
        instance: crate::instance::InstanceId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::IllegalInstanceTransition {
                instance,
                event,
                time,
            } => {
                write!(f, "instance {instance}: illegal event {event} at {time}")
            }
            Violation::IllegalCollectionTransition {
                collection,
                event,
                time,
            } => {
                write!(
                    f,
                    "collection {collection}: illegal event {event} at {time}"
                )
            }
            Violation::TerminationBeforeSubmit { collection } => {
                write!(f, "collection {collection}: terminated before submit")
            }
            Violation::UsageOnUnknownMachine { machine } => {
                write!(f, "usage on unknown machine {machine}")
            }
            Violation::MachineOverCapacity {
                machine,
                window,
                cpu_used,
                cpu_capacity,
            } => {
                write!(
                    f,
                    "machine {machine} over capacity at {window}: used {cpu_used:.3} of {cpu_capacity:.3} NCU"
                )
            }
            Violation::BadUsageWindow { instance } => {
                write!(f, "instance {instance}: inverted usage window")
            }
            Violation::OrphanInstance { instance } => {
                write!(f, "instance {instance}: no owning collection events")
            }
            Violation::NonMonotoneHistogram { instance } => {
                write!(f, "instance {instance}: non-monotone CPU histogram")
            }
        }
    }
}

/// Validation configuration.
#[derive(Debug, Clone, Copy)]
pub struct ValidateConfig {
    /// Allowed over-capacity factor before flagging a machine window
    /// (CPU is work-conserving, so small excursions above capacity are
    /// legitimate; default 1.05).
    pub capacity_tolerance: f64,
    /// Upper bound on reported violations (traces are huge; default 10k).
    pub max_violations: usize,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            capacity_tolerance: 1.05,
            max_violations: 10_000,
        }
    }
}

/// Runs all invariant checks and returns the violations found.
pub fn validate(trace: &Trace) -> Vec<Violation> {
    validate_with(trace, &ValidateConfig::default())
}

/// Runs all invariant checks with explicit configuration.
pub fn validate_with(trace: &Trace, cfg: &ValidateConfig) -> Vec<Violation> {
    let mut violations = Vec::new();

    check_collection_lifecycles(trace, &mut violations, cfg);
    check_instance_lifecycles(trace, &mut violations, cfg);
    check_usage(trace, &mut violations, cfg);

    violations.truncate(cfg.max_violations);
    violations
}

fn check_collection_lifecycles(trace: &Trace, out: &mut Vec<Violation>, cfg: &ValidateConfig) {
    let mut events: BTreeMap<crate::collection::CollectionId, Vec<(Micros, EventType)>> =
        BTreeMap::new();
    for ev in &trace.collection_events {
        events
            .entry(ev.collection_id)
            .or_default()
            .push((ev.time, ev.event_type));
    }
    for (id, mut evs) in events {
        evs.sort_by_key(|e| e.0);
        if let Some(first_terminal) = evs.iter().find(|e| e.1.is_terminal()) {
            if let Some(first_submit) = evs.iter().find(|e| e.1 == EventType::Submit) {
                if first_terminal.0 < first_submit.0 {
                    out.push(Violation::TerminationBeforeSubmit { collection: id });
                }
            }
        }
        let mut sm = StateMachine::new();
        for (time, event) in evs {
            if sm.apply(event).is_err() {
                out.push(Violation::IllegalCollectionTransition {
                    collection: id,
                    event,
                    time,
                });
                break;
            }
            if out.len() >= cfg.max_violations {
                return;
            }
        }
    }
}

fn check_instance_lifecycles(trace: &Trace, out: &mut Vec<Violation>, cfg: &ValidateConfig) {
    let known_collections: std::collections::BTreeSet<_> = trace
        .collection_events
        .iter()
        .map(|e| e.collection_id)
        .collect();
    for (id, evs) in trace.instance_event_groups() {
        if !known_collections.is_empty() && !known_collections.contains(&id.collection) {
            out.push(Violation::OrphanInstance { instance: id });
        }
        let mut sm = StateMachine::new();
        for ev in evs {
            if sm.apply(ev.event_type).is_err() {
                out.push(Violation::IllegalInstanceTransition {
                    instance: id,
                    event: ev.event_type,
                    time: ev.time,
                });
                break;
            }
        }
        if out.len() >= cfg.max_violations {
            return;
        }
    }
}

fn check_usage(trace: &Trace, out: &mut Vec<Violation>, cfg: &ValidateConfig) {
    // Machine capacities (latest add/update wins; removal handled
    // approximately — validation is a noise detector, not a re-simulation).
    let mut capacity: BTreeMap<MachineId, Resources> = BTreeMap::new();
    for ev in &trace.machine_events {
        match ev.event_type {
            MachineEventType::Add | MachineEventType::Update => {
                capacity.insert(ev.machine_id, ev.capacity);
            }
            MachineEventType::Remove => {}
        }
    }

    // Per (machine, window-start) summed average usage.
    let mut window_usage: BTreeMap<(MachineId, Micros), Resources> = BTreeMap::new();
    for rec in &trace.usage {
        if rec.end < rec.start {
            out.push(Violation::BadUsageWindow {
                instance: rec.instance_id,
            });
            continue;
        }
        if !rec.cpu_histogram.is_monotone() {
            out.push(Violation::NonMonotoneHistogram {
                instance: rec.instance_id,
            });
        }
        if !capacity.contains_key(&rec.machine_id) && !capacity.is_empty() {
            out.push(Violation::UsageOnUnknownMachine {
                machine: rec.machine_id,
            });
            continue;
        }
        *window_usage
            .entry((rec.machine_id, rec.start))
            .or_insert(Resources::ZERO) += rec.avg_usage;
        if out.len() >= cfg.max_violations {
            return;
        }
    }

    for ((machine, window), used) in window_usage {
        if let Some(cap) = capacity.get(&machine) {
            if used.cpu > cap.cpu * cfg.capacity_tolerance {
                out.push(Violation::MachineOverCapacity {
                    machine,
                    window,
                    cpu_used: used.cpu,
                    cpu_capacity: cap.cpu,
                });
            }
            if out.len() >= cfg.max_violations {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::{
        CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
    };
    use crate::instance::{InstanceEvent, InstanceId};
    use crate::machine::{MachineEvent, Platform};
    use crate::priority::Priority;
    use crate::trace::SchemaVersion;
    use crate::usage::{CpuHistogram, UsageRecord};

    fn base_trace() -> Trace {
        let mut t = Trace::new("t", SchemaVersion::V3Trace2019, Micros::from_days(1));
        t.machine_events.push(MachineEvent::add(
            Micros::ZERO,
            MachineId(0),
            Resources::new(1.0, 1.0),
            Platform(0),
        ));
        t
    }

    fn cev(id: u64, time_s: u64, ty: EventType) -> CollectionEvent {
        CollectionEvent {
            time: Micros::from_secs(time_s),
            collection_id: CollectionId(id),
            event_type: ty,
            collection_type: CollectionType::Job,
            priority: Priority::new(200),
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            user_id: UserId(0),
        }
    }

    fn iev(id: u64, idx: u32, time_s: u64, ty: EventType) -> InstanceEvent {
        InstanceEvent {
            time: Micros::from_secs(time_s),
            instance_id: InstanceId::new(CollectionId(id), idx),
            event_type: ty,
            machine_id: Some(MachineId(0)),
            request: Resources::new(0.1, 0.1),
            priority: Priority::new(200),
            alloc_instance: None,
        }
    }

    fn usage(id: u64, avg_cpu: f64) -> UsageRecord {
        UsageRecord {
            start: Micros::ZERO,
            end: Micros::from_minutes(5),
            instance_id: InstanceId::new(CollectionId(id), 0),
            machine_id: MachineId(0),
            avg_usage: Resources::new(avg_cpu, 0.1),
            max_usage: Resources::new(avg_cpu, 0.1),
            limit: Resources::new(0.5, 0.2),
            cpu_histogram: CpuHistogram([0.1; 21]),
        }
    }

    #[test]
    fn clean_trace_validates() {
        let mut t = base_trace();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.collection_events.push(cev(1, 1, EventType::Schedule));
        t.collection_events.push(cev(1, 100, EventType::Finish));
        t.instance_events.push(iev(1, 0, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 1, EventType::Schedule));
        t.instance_events.push(iev(1, 0, 100, EventType::Finish));
        t.usage.push(usage(1, 0.3));
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn detects_illegal_instance_sequence() {
        let mut t = base_trace();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.instance_events.push(iev(1, 0, 0, EventType::Schedule)); // no submit
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::IllegalInstanceTransition { .. })));
    }

    #[test]
    fn detects_illegal_collection_sequence() {
        let mut t = base_trace();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.collection_events.push(cev(1, 2, EventType::Schedule));
        t.collection_events.push(cev(1, 5, EventType::Finish));
        t.collection_events.push(cev(1, 9, EventType::Schedule)); // after death
        let v = validate(&t);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::IllegalCollectionTransition {
                event: EventType::Schedule,
                ..
            }
        )));
    }

    #[test]
    fn detects_termination_before_submit() {
        let mut t = base_trace();
        // A kill recorded before the submit (clock skew in collection).
        t.collection_events.push(cev(1, 5, EventType::Submit));
        t.collection_events.push(cev(1, 2, EventType::Kill));
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::TerminationBeforeSubmit { .. })));
    }

    #[test]
    fn detects_over_capacity() {
        let mut t = base_trace();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        t.collection_events.push(cev(2, 0, EventType::Submit));
        t.usage.push(usage(1, 0.7));
        t.usage.push(usage(2, 0.7)); // 1.4 NCU used on a 1.0 NCU machine
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MachineOverCapacity { .. })));
    }

    #[test]
    fn detects_unknown_machine_and_orphan() {
        let mut t = base_trace();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        let mut rec = usage(1, 0.1);
        rec.machine_id = MachineId(99);
        t.usage.push(rec);
        t.instance_events.push(iev(42, 0, 0, EventType::Submit));
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UsageOnUnknownMachine { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::OrphanInstance { .. })));
    }

    #[test]
    fn detects_bad_window_and_histogram() {
        let mut t = base_trace();
        t.collection_events.push(cev(1, 0, EventType::Submit));
        let mut rec = usage(1, 0.1);
        rec.end = Micros::ZERO;
        rec.start = Micros::from_minutes(5);
        t.usage.push(rec);
        let mut rec2 = usage(1, 0.1);
        let mut h = [0.1f32; 21];
        h[20] = 0.0; // max below min
        rec2.cpu_histogram = CpuHistogram(h);
        t.usage.push(rec2);
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::BadUsageWindow { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::NonMonotoneHistogram { .. })));
    }

    #[test]
    fn violation_display() {
        let v = Violation::TerminationBeforeSubmit {
            collection: CollectionId(7),
        };
        assert!(v.to_string().contains("c7"));
    }
}
