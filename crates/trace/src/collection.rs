//! Collections: jobs and alloc sets.
//!
//! The 2019 trace introduces *collections* — the union of jobs and alloc
//! sets (§3, §5.1). An alloc set reserves resources on machines (its
//! *alloc instances*) into which other jobs' tasks can later be placed.
//! Collection events also carry the new-in-2019 attributes the paper
//! analyzes: the scheduler kind (batch vs default), the vertical-scaling
//! mode (§8), and the parent job for dependency cascades (§5.2).

use crate::priority::Priority;
use crate::state::EventType;
use crate::time::Micros;
use std::fmt;

/// Identifier of a collection (job or alloc set) within one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollectionId(pub u64);

impl fmt::Display for CollectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of the (anonymized) submitting user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// Job or alloc set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectionType {
    /// A job: a set of tasks running the same binary.
    Job,
    /// An alloc set: a set of reserved-resource alloc instances.
    AllocSet,
}

impl CollectionType {
    /// Lowercase name as used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            CollectionType::Job => "job",
            CollectionType::AllocSet => "alloc_set",
        }
    }
}

/// Which scheduler admits the collection (§3 "batch queueing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The regular Borg scheduler.
    Default,
    /// The batch scheduler, which queues jobs until the cell can handle
    /// them and then hands them to the regular scheduler.
    Batch,
}

/// Autopilot vertical-scaling mode of a collection (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VerticalScalingMode {
    /// Resource limits are user-specified and never adjusted.
    Off,
    /// Autoscaled subject to user-provided constraints.
    Constrained,
    /// Fully autoscaled.
    Full,
}

impl VerticalScalingMode {
    /// All modes in report order.
    pub const ALL: [VerticalScalingMode; 3] = [
        VerticalScalingMode::Off,
        VerticalScalingMode::Constrained,
        VerticalScalingMode::Full,
    ];

    /// Lowercase name as used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            VerticalScalingMode::Off => "off",
            VerticalScalingMode::Constrained => "constrained",
            VerticalScalingMode::Full => "full",
        }
    }
}

/// One row of the collection-events table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionEvent {
    /// Event timestamp.
    pub time: Micros,
    /// Which collection.
    pub collection_id: CollectionId,
    /// What happened.
    pub event_type: EventType,
    /// Job or alloc set.
    pub collection_type: CollectionType,
    /// Raw 2019-style priority.
    pub priority: Priority,
    /// Which scheduler manages this collection.
    pub scheduler: SchedulerKind,
    /// Vertical-scaling mode.
    pub vertical_scaling: VerticalScalingMode,
    /// Parent job, if any: when the parent terminates, this collection is
    /// killed automatically (§3 "job dependencies").
    pub parent_id: Option<CollectionId>,
    /// The alloc set this job's tasks run inside, if any (§5.1).
    pub alloc_collection_id: Option<CollectionId>,
    /// Submitting user.
    pub user_id: UserId,
}

impl CollectionEvent {
    /// True when this row describes a job (not an alloc set).
    pub fn is_job(&self) -> bool {
        self.collection_type == CollectionType::Job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(CollectionType::Job.name(), "job");
        assert_eq!(CollectionType::AllocSet.name(), "alloc_set");
        assert_eq!(VerticalScalingMode::Full.name(), "full");
    }

    #[test]
    fn is_job() {
        let ev = CollectionEvent {
            time: Micros::ZERO,
            collection_id: CollectionId(1),
            event_type: EventType::Submit,
            collection_type: CollectionType::AllocSet,
            priority: Priority::new(200),
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            user_id: UserId(0),
        };
        assert!(!ev.is_job());
    }

    #[test]
    fn display_collection_id() {
        assert_eq!(CollectionId(42).to_string(), "c42");
    }
}
