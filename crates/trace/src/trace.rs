//! The trace bundle: all tables of one cell-month.

use crate::collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, VerticalScalingMode,
};
use crate::instance::{InstanceEvent, InstanceId};
use crate::machine::{MachineEvent, MachineEventType};
use crate::priority::Priority;
use crate::resources::Resources;
use crate::state::EventType;
use crate::time::Micros;
use std::collections::BTreeMap;

/// Which public trace format the bundle follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaVersion {
    /// The 2011 "v2" trace: one cell, priority bands 0–11, no alloc sets,
    /// no batch queueing, no vertical scaling.
    V2Trace2011,
    /// The 2019 "v3" trace: collections, raw priorities, batch queueing,
    /// dependencies, vertical scaling, CPU histograms.
    V3Trace2019,
}

impl SchemaVersion {
    /// Short name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            SchemaVersion::V2Trace2011 => "v2-2011",
            SchemaVersion::V3Trace2019 => "v3-2019",
        }
    }
}

/// A complete trace of one cell over one observation window.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Cell name ("2011", or "a" through "h" for the 2019 cells).
    pub cell_name: String,
    /// Schema the trace follows.
    pub schema: Option<SchemaVersion>,
    /// Length of the observation window.
    pub horizon: Micros,
    /// Machine add/remove/update events.
    pub machine_events: Vec<MachineEvent>,
    /// Collection (job / alloc set) lifecycle events.
    pub collection_events: Vec<CollectionEvent>,
    /// Instance (task / alloc instance) lifecycle events.
    pub instance_events: Vec<InstanceEvent>,
    /// Five-minute usage samples.
    pub usage: Vec<crate::usage::UsageRecord>,
}

/// Summary of one collection, derived from its events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionInfo {
    /// Collection id.
    pub id: CollectionId,
    /// Job or alloc set.
    pub collection_type: CollectionType,
    /// Priority.
    pub priority: Priority,
    /// Scheduler kind.
    pub scheduler: SchedulerKind,
    /// Vertical-scaling mode.
    pub vertical_scaling: VerticalScalingMode,
    /// Parent collection, if any.
    pub parent_id: Option<CollectionId>,
    /// Alloc set hosting this job, if any.
    pub alloc_collection_id: Option<CollectionId>,
    /// First submit time.
    pub submit_time: Micros,
    /// Final terminal event observed, if any.
    pub final_event: Option<EventType>,
    /// Time of the final terminal event.
    pub final_time: Option<Micros>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(cell_name: impl Into<String>, schema: SchemaVersion, horizon: Micros) -> Trace {
        Trace {
            cell_name: cell_name.into(),
            schema: Some(schema),
            horizon,
            machine_events: Vec::new(),
            collection_events: Vec::new(),
            instance_events: Vec::new(),
            usage: Vec::new(),
        }
    }

    /// Sorts every table by time (stable, preserving intra-timestamp
    /// emission order).
    pub fn sort(&mut self) {
        self.machine_events.sort_by_key(|e| e.time);
        self.collection_events.sort_by_key(|e| e.time);
        self.instance_events.sort_by_key(|e| e.time);
        self.usage.sort_by_key(|u| u.start);
    }

    /// Number of distinct machines ever added.
    pub fn machine_count(&self) -> usize {
        let mut ids: Vec<_> = self
            .machine_events
            .iter()
            .filter(|e| e.event_type == MachineEventType::Add)
            .map(|e| e.machine_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Total cell capacity at a given time: the sum of the latest
    /// capacity of every machine present at `t`.
    pub fn capacity_at(&self, t: Micros) -> Resources {
        let mut latest: BTreeMap<crate::machine::MachineId, Option<Resources>> = BTreeMap::new();
        for ev in &self.machine_events {
            if ev.time > t {
                // Machine events are expected to be sorted, but do not
                // rely on it.
                continue;
            }
            match ev.event_type {
                MachineEventType::Add | MachineEventType::Update => {
                    latest.insert(ev.machine_id, Some(ev.capacity));
                }
                MachineEventType::Remove => {
                    latest.insert(ev.machine_id, None);
                }
            }
        }
        latest.values().flatten().copied().sum()
    }

    /// Nominal capacity: capacity at trace start (after the initial adds
    /// at time zero).
    pub fn nominal_capacity(&self) -> Resources {
        self.capacity_at(Micros::ZERO)
    }

    /// Groups collection events into per-collection summaries.
    pub fn collections(&self) -> BTreeMap<CollectionId, CollectionInfo> {
        let mut out: BTreeMap<CollectionId, CollectionInfo> = BTreeMap::new();
        for ev in &self.collection_events {
            let entry = out.entry(ev.collection_id).or_insert(CollectionInfo {
                id: ev.collection_id,
                collection_type: ev.collection_type,
                priority: ev.priority,
                scheduler: ev.scheduler,
                vertical_scaling: ev.vertical_scaling,
                parent_id: ev.parent_id,
                alloc_collection_id: ev.alloc_collection_id,
                submit_time: ev.time,
                final_event: None,
                final_time: None,
            });
            if ev.event_type == EventType::Submit && ev.time < entry.submit_time {
                entry.submit_time = ev.time;
            }
            if ev.event_type.is_terminal() && entry.final_time.is_none_or(|t| ev.time >= t) {
                entry.final_event = Some(ev.event_type);
                entry.final_time = Some(ev.time);
            }
        }
        out
    }

    /// Groups instance events by instance id, each group sorted by time.
    pub fn instance_event_groups(&self) -> BTreeMap<InstanceId, Vec<&InstanceEvent>> {
        let mut out: BTreeMap<InstanceId, Vec<&InstanceEvent>> = BTreeMap::new();
        for ev in &self.instance_events {
            out.entry(ev.instance_id).or_default().push(ev);
        }
        for group in out.values_mut() {
            group.sort_by_key(|e| e.time);
        }
        out
    }

    /// Number of distinct instances with at least one event.
    pub fn instance_count(&self) -> usize {
        let mut ids: Vec<_> = self.instance_events.iter().map(|e| e.instance_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Total number of events across all tables.
    pub fn event_count(&self) -> usize {
        self.machine_events.len()
            + self.collection_events.len()
            + self.instance_events.len()
            + self.usage.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::UserId;
    use crate::machine::{MachineId, Platform};

    fn add_machine(trace: &mut Trace, id: u32, cpu: f64, t: Micros) {
        trace.machine_events.push(MachineEvent::add(
            t,
            MachineId(id),
            Resources::new(cpu, cpu / 2.0),
            Platform(0),
        ));
    }

    fn collection_event(id: u64, t: Micros, ty: EventType, parent: Option<u64>) -> CollectionEvent {
        CollectionEvent {
            time: t,
            collection_id: CollectionId(id),
            event_type: ty,
            collection_type: CollectionType::Job,
            priority: Priority::new(200),
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: parent.map(CollectionId),
            alloc_collection_id: None,
            user_id: UserId(0),
        }
    }

    #[test]
    fn capacity_tracks_machine_lifecycle() {
        let mut trace = Trace::new("t", SchemaVersion::V3Trace2019, Micros::from_days(1));
        add_machine(&mut trace, 0, 1.0, Micros::ZERO);
        add_machine(&mut trace, 1, 0.5, Micros::ZERO);
        trace.machine_events.push(MachineEvent {
            time: Micros::from_hours(2),
            machine_id: MachineId(0),
            event_type: MachineEventType::Remove,
            capacity: Resources::ZERO,
            platform: Platform(0),
        });
        assert_eq!(trace.nominal_capacity(), Resources::new(1.5, 0.75));
        assert_eq!(
            trace.capacity_at(Micros::from_hours(3)),
            Resources::new(0.5, 0.25)
        );
        assert_eq!(trace.machine_count(), 2);
    }

    #[test]
    fn collections_summarize_events() {
        let mut trace = Trace::new("t", SchemaVersion::V3Trace2019, Micros::from_days(1));
        trace.collection_events.push(collection_event(
            1,
            Micros::from_secs(10),
            EventType::Submit,
            None,
        ));
        trace.collection_events.push(collection_event(
            1,
            Micros::from_secs(20),
            EventType::Schedule,
            None,
        ));
        trace.collection_events.push(collection_event(
            1,
            Micros::from_secs(90),
            EventType::Finish,
            None,
        ));
        trace.collection_events.push(collection_event(
            2,
            Micros::from_secs(15),
            EventType::Submit,
            Some(1),
        ));
        let infos = trace.collections();
        assert_eq!(infos.len(), 2);
        let c1 = &infos[&CollectionId(1)];
        assert_eq!(c1.submit_time, Micros::from_secs(10));
        assert_eq!(c1.final_event, Some(EventType::Finish));
        assert_eq!(c1.final_time, Some(Micros::from_secs(90)));
        let c2 = &infos[&CollectionId(2)];
        assert_eq!(c2.parent_id, Some(CollectionId(1)));
        assert_eq!(c2.final_event, None);
    }

    #[test]
    fn sort_orders_all_tables() {
        let mut trace = Trace::new("t", SchemaVersion::V3Trace2019, Micros::from_days(1));
        trace.collection_events.push(collection_event(
            1,
            Micros::from_secs(20),
            EventType::Submit,
            None,
        ));
        trace.collection_events.push(collection_event(
            2,
            Micros::from_secs(10),
            EventType::Submit,
            None,
        ));
        trace.sort();
        assert!(trace.collection_events[0].time <= trace.collection_events[1].time);
    }

    #[test]
    fn counts() {
        let trace = Trace::new("t", SchemaVersion::V2Trace2011, Micros::from_days(1));
        assert_eq!(trace.instance_count(), 0);
        assert_eq!(trace.event_count(), 0);
        assert_eq!(SchemaVersion::V2Trace2011.name(), "v2-2011");
    }
}
