//! Instance events.
//!
//! An *instance* is one replica of a collection: a task of a job, or an
//! alloc instance of an alloc set. Instance events record the lifecycle of
//! each replica, including which machine it was placed on and its resource
//! request (limit).

use crate::collection::CollectionId;
use crate::machine::MachineId;
use crate::priority::Priority;
use crate::resources::Resources;
use crate::state::EventType;
use crate::time::Micros;
use std::fmt;

/// Identifier of an instance: collection plus replica index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// Owning collection.
    pub collection: CollectionId,
    /// Replica index within the collection.
    pub index: u32,
}

impl InstanceId {
    /// Creates an instance id.
    pub const fn new(collection: CollectionId, index: u32) -> InstanceId {
        InstanceId { collection, index }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.collection, self.index)
    }
}

/// One row of the instance-events table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceEvent {
    /// Event timestamp.
    pub time: Micros,
    /// Which instance.
    pub instance_id: InstanceId,
    /// What happened.
    pub event_type: EventType,
    /// Machine the instance is (or was) placed on; `None` before first
    /// placement.
    pub machine_id: Option<MachineId>,
    /// Requested resources — the *limit* the scheduler enforces (§2). For
    /// memory this is a hard bound; CPU may exceed it when the machine is
    /// not overloaded (work-conserving).
    pub request: Resources,
    /// Priority inherited from the owning collection.
    pub priority: Priority,
    /// The alloc instance this task runs inside, if any: the owning alloc
    /// set's collection id and the alloc-instance index.
    pub alloc_instance: Option<InstanceId>,
}

impl InstanceEvent {
    /// True when the event transfers the instance onto a machine.
    pub fn is_placement(&self) -> bool {
        self.event_type == EventType::Schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_id_display() {
        let id = InstanceId::new(CollectionId(5), 3);
        assert_eq!(id.to_string(), "c5/3");
    }

    #[test]
    fn instance_id_ordering_groups_by_collection() {
        let a = InstanceId::new(CollectionId(1), 9);
        let b = InstanceId::new(CollectionId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn placement_detection() {
        let ev = InstanceEvent {
            time: Micros::ZERO,
            instance_id: InstanceId::new(CollectionId(1), 0),
            event_type: EventType::Schedule,
            machine_id: Some(MachineId(4)),
            request: Resources::new(0.1, 0.1),
            priority: Priority::new(200),
            alloc_instance: None,
        };
        assert!(ev.is_placement());
        let ev2 = InstanceEvent {
            event_type: EventType::Submit,
            machine_id: None,
            ..ev
        };
        assert!(!ev2.is_placement());
    }
}
