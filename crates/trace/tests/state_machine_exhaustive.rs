//! Exhaustive enumeration of the lifecycle state machine: every
//! (state, event) pair is classified, and the classification is checked
//! against the documented semantics of the v3 trace.

use borg_trace::state::{EventType, InstanceState, StateMachine, TerminationKind};

/// Drives a fresh machine into the given state (None = fresh).
fn machine_in(state: Option<InstanceState>) -> StateMachine {
    let mut sm = StateMachine::new();
    match state {
        None => {}
        Some(InstanceState::Pending) => {
            sm.apply(EventType::Submit).unwrap();
        }
        Some(InstanceState::Queued) => {
            sm.apply(EventType::Submit).unwrap();
            sm.apply(EventType::Queue).unwrap();
        }
        Some(InstanceState::Running) => {
            sm.apply(EventType::Submit).unwrap();
            sm.apply(EventType::Schedule).unwrap();
        }
        Some(InstanceState::Dead(kind)) => {
            sm.apply(EventType::Submit).unwrap();
            match kind {
                TerminationKind::Kill => {
                    sm.apply(EventType::Kill).unwrap();
                }
                TerminationKind::Fail => {
                    sm.apply(EventType::Fail).unwrap();
                }
                TerminationKind::Finish => {
                    sm.apply(EventType::Schedule).unwrap();
                    sm.apply(EventType::Finish).unwrap();
                }
                TerminationKind::Evict => {
                    sm.apply(EventType::Schedule).unwrap();
                    sm.apply(EventType::Evict).unwrap();
                }
                TerminationKind::Lost => {
                    sm.apply(EventType::Schedule).unwrap();
                    sm.apply(EventType::Lost).unwrap();
                }
            }
        }
    }
    assert_eq!(sm.state(), state, "fixture reached the intended state");
    sm
}

fn all_states() -> Vec<Option<InstanceState>> {
    let mut v = vec![
        None,
        Some(InstanceState::Pending),
        Some(InstanceState::Queued),
        Some(InstanceState::Running),
    ];
    for kind in [
        TerminationKind::Finish,
        TerminationKind::Evict,
        TerminationKind::Kill,
        TerminationKind::Fail,
        TerminationKind::Lost,
    ] {
        v.push(Some(InstanceState::Dead(kind)));
    }
    v
}

#[test]
fn every_pair_classified_correctly() {
    use EventType as E;
    use InstanceState as S;
    for state in all_states() {
        for event in EventType::ALL {
            let mut sm = machine_in(state);
            let result = sm.apply(event);
            let legal = matches!(
                (state, event),
                (None, E::Submit)
                    | (Some(S::Pending), E::Queue)
                    | (Some(S::Pending), E::Schedule)
                    | (Some(S::Pending), E::Kill)
                    | (Some(S::Pending), E::Fail)
                    | (Some(S::Pending), E::UpdatePending)
                    | (Some(S::Queued), E::Enable)
                    | (Some(S::Queued), E::Kill)
                    | (Some(S::Queued), E::UpdatePending)
                    | (Some(S::Running), E::Evict)
                    | (Some(S::Running), E::Fail)
                    | (Some(S::Running), E::Finish)
                    | (Some(S::Running), E::Kill)
                    | (Some(S::Running), E::Lost)
                    | (Some(S::Running), E::UpdateRunning)
                    | (Some(S::Dead(TerminationKind::Evict)), E::Submit)
                    | (Some(S::Dead(TerminationKind::Fail)), E::Submit)
            );
            assert_eq!(
                result.is_ok(),
                legal,
                "state {state:?}, event {event}: got {result:?}"
            );
            if result.is_err() {
                assert_eq!(sm.state(), state, "illegal events leave state unchanged");
            }
        }
    }
}

#[test]
fn terminal_events_always_produce_matching_dead_state() {
    use EventType as E;
    let cases = [
        (E::Finish, TerminationKind::Finish),
        (E::Evict, TerminationKind::Evict),
        (E::Kill, TerminationKind::Kill),
        (E::Fail, TerminationKind::Fail),
        (E::Lost, TerminationKind::Lost),
    ];
    for (event, kind) in cases {
        let mut sm = machine_in(Some(InstanceState::Running));
        let got = sm.apply(event).unwrap();
        assert_eq!(got, InstanceState::Dead(kind));
        assert!(got.is_dead());
    }
}

#[test]
fn success_is_final_but_eviction_is_not() {
    let mut finished = machine_in(Some(InstanceState::Dead(TerminationKind::Finish)));
    assert!(
        finished.apply(EventType::Submit).is_err(),
        "no resubmit after success"
    );
    let mut evicted = machine_in(Some(InstanceState::Dead(TerminationKind::Evict)));
    assert!(
        evicted.apply(EventType::Submit).is_ok(),
        "evicted work is rescheduled (§5.2)"
    );
}
