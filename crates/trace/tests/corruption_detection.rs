//! Satellite coverage: `validate` against deliberately corrupted traces.
//!
//! One fixture per `Violation` variant, each proving (a) the corruption
//! is detected, and (b) `repair` clears it — the detection/repair pair
//! the chaos round-trip relies on, exercised variant by variant.

use borg_trace::collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
};
use borg_trace::instance::{InstanceEvent, InstanceId};
use borg_trace::machine::{MachineEvent, MachineId, Platform};
use borg_trace::priority::Priority;
use borg_trace::repair::repair;
use borg_trace::resources::Resources;
use borg_trace::state::EventType;
use borg_trace::time::Micros;
use borg_trace::trace::{SchemaVersion, Trace};
use borg_trace::usage::{CpuHistogram, UsageRecord};
use borg_trace::validate::{validate, Violation};

fn base() -> Trace {
    let mut t = Trace::new("fixture", SchemaVersion::V3Trace2019, Micros::from_days(1));
    t.machine_events.push(MachineEvent::add(
        Micros::ZERO,
        MachineId(0),
        Resources::new(1.0, 1.0),
        Platform(0),
    ));
    t
}

fn cev(id: u64, time_s: u64, ty: EventType) -> CollectionEvent {
    CollectionEvent {
        time: Micros::from_secs(time_s),
        collection_id: CollectionId(id),
        event_type: ty,
        collection_type: CollectionType::Job,
        priority: Priority::new(200),
        scheduler: SchedulerKind::Default,
        vertical_scaling: VerticalScalingMode::Off,
        parent_id: None,
        alloc_collection_id: None,
        user_id: UserId(0),
    }
}

fn iev(id: u64, idx: u32, time_s: u64, ty: EventType) -> InstanceEvent {
    InstanceEvent {
        time: Micros::from_secs(time_s),
        instance_id: InstanceId::new(CollectionId(id), idx),
        event_type: ty,
        machine_id: Some(MachineId(0)),
        request: Resources::new(0.1, 0.1),
        priority: Priority::new(200),
        alloc_instance: None,
    }
}

fn usage_rec(id: u64, machine: u32, avg_cpu: f64) -> UsageRecord {
    UsageRecord {
        start: Micros::ZERO,
        end: Micros::from_minutes(5),
        instance_id: InstanceId::new(CollectionId(id), 0),
        machine_id: MachineId(machine),
        avg_usage: Resources::new(avg_cpu, 0.1),
        max_usage: Resources::new(avg_cpu, 0.1),
        limit: Resources::new(0.5, 0.2),
        cpu_histogram: CpuHistogram([0.1; 21]),
    }
}

/// Asserts the corruption is detected as `variant`, then that `repair`
/// clears every violation from the trace.
fn detect_then_repair(mut t: Trace, matches_variant: impl Fn(&Violation) -> bool, label: &str) {
    let before = validate(&t);
    assert!(
        before.iter().any(&matches_variant),
        "{label}: expected violation not detected; got {before:?}"
    );
    let report = repair(&mut t);
    assert!(!report.is_noop(), "{label}: repair took no action");
    let after = validate(&t);
    assert!(
        after.is_empty(),
        "{label}: {} violation(s) survive repair: {after:?}",
        after.len()
    );
}

#[test]
fn illegal_instance_transition_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(1, 0, EventType::Submit));
    // Schedule with no submit: the classic dropped-prefix hole.
    t.instance_events.push(iev(1, 0, 10, EventType::Schedule));
    t.instance_events.push(iev(1, 0, 90, EventType::Finish));
    detect_then_repair(
        t,
        |v| matches!(v, Violation::IllegalInstanceTransition { .. }),
        "illegal instance transition",
    );
}

#[test]
fn illegal_collection_transition_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(1, 0, EventType::Submit));
    t.collection_events.push(cev(1, 2, EventType::Schedule));
    t.collection_events.push(cev(1, 50, EventType::Finish));
    // A stale resubmit after a successful finish: unrecoverable, dropped.
    t.collection_events.push(cev(1, 60, EventType::Submit));
    detect_then_repair(
        t,
        |v| matches!(v, Violation::IllegalCollectionTransition { .. }),
        "illegal collection transition",
    );
}

#[test]
fn termination_before_submit_detected_and_repaired() {
    let mut t = base();
    // Clock skew put the kill before the submit it terminates.
    t.collection_events.push(cev(1, 5, EventType::Submit));
    t.collection_events.push(cev(1, 2, EventType::Kill));
    detect_then_repair(
        t,
        |v| matches!(v, Violation::TerminationBeforeSubmit { .. }),
        "termination before submit",
    );
}

#[test]
fn usage_on_unknown_machine_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(1, 0, EventType::Submit));
    t.usage.push(usage_rec(1, 99, 0.3)); // machine 99 never added
    detect_then_repair(
        t,
        |v| matches!(v, Violation::UsageOnUnknownMachine { .. }),
        "usage on unknown machine",
    );
}

#[test]
fn over_capacity_from_duplicated_usage_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(1, 0, EventType::Submit));
    // One legitimate record duplicated by a lossy writer: the window sum
    // doubles and blows past capacity * tolerance.
    let rec = usage_rec(1, 0, 0.8);
    t.usage.push(rec);
    t.usage.push(rec);
    detect_then_repair(
        t,
        |v| matches!(v, Violation::MachineOverCapacity { .. }),
        "over capacity via duplicate usage",
    );
}

#[test]
fn bad_usage_window_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(1, 0, EventType::Submit));
    let mut rec = usage_rec(1, 0, 0.1);
    std::mem::swap(&mut rec.start, &mut rec.end); // inverted window
    t.usage.push(rec);
    detect_then_repair(
        t,
        |v| matches!(v, Violation::BadUsageWindow { .. }),
        "bad usage window",
    );
}

#[test]
fn orphan_instance_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(9, 0, EventType::Submit));
    // Collection 1's events were all lost; its instance survives.
    t.instance_events.push(iev(1, 0, 5, EventType::Submit));
    t.instance_events.push(iev(1, 0, 6, EventType::Schedule));
    t.instance_events.push(iev(1, 0, 90, EventType::Finish));
    detect_then_repair(
        t,
        |v| matches!(v, Violation::OrphanInstance { .. }),
        "orphan instance",
    );
}

#[test]
fn non_monotone_histogram_detected_and_repaired() {
    let mut t = base();
    t.collection_events.push(cev(1, 0, EventType::Submit));
    let mut rec = usage_rec(1, 0, 0.1);
    rec.cpu_histogram.0[20] = 0.0; // max below the lower percentiles
    t.usage.push(rec);
    detect_then_repair(
        t,
        |v| matches!(v, Violation::NonMonotoneHistogram { .. }),
        "non-monotone histogram",
    );
}
