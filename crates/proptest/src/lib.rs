#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate implements the subset of proptest the test suites use: the
//! [`proptest!`] macro over `name(arg in strategy, ...)` test functions,
//! range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the offending inputs printed via the assertion message, and every run
//! is deterministic (the RNG is seeded from the test name and case
//! index), so failures reproduce exactly under `cargo test`.

use std::ops::Range;

/// Deterministic test-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator keyed by test name and case index, so each test gets
    /// an independent, reproducible stream.
    pub fn deterministic(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with random length and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Property assertion (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body is
/// run for every random case, with arguments drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::TestRng::deterministic(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5i64..7, y in 0.5f64..2.5, n in 0u8..4) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_strategy_length(xs in prop::collection::vec(0i64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn tuple_of_ranges(t in (0u32..3, -1.0f64..1.0)) {
            prop_assert!(t.0 < 3);
            prop_assert!((-1.0..1.0).contains(&t.1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x", 0);
        let mut b = crate::TestRng::deterministic("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("x", 1);
        assert_ne!(
            crate::TestRng::deterministic("x", 0).next_u64(),
            c.next_u64()
        );
    }
}
