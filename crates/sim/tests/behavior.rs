//! Emergent-behavior tests: simulate a small cell-week and check that the
//! outcomes the paper measures actually emerge.

use borg_sim::{CellSim, SimConfig};
use borg_trace::priority::Tier;
use borg_trace::state::EventType;
use borg_trace::time::Micros;
use borg_trace::validate::{validate_with, ValidateConfig};
use borg_workload::cells::CellProfile;

/// One shared week-long simulation: the statistical assertions below all
/// read the same outcome, so the suite pays for a single run.
fn week_outcome(_seed: u64) -> &'static borg_sim::CellOutcome {
    static OUTCOME: std::sync::OnceLock<borg_sim::CellOutcome> = std::sync::OnceLock::new();
    OUTCOME.get_or_init(|| {
        let profile = CellProfile::cell_2019('d');
        let mut cfg = SimConfig::tiny_for_tests(11);
        cfg.scale = 0.004;
        cfg.horizon = Micros::from_days(7);
        cfg.snapshot_at = Micros::from_days(3);
        CellSim::run_cell(&profile, &cfg)
    })
}

#[test]
fn trace_satisfies_section9_invariants() {
    let outcome = week_outcome(11);
    let violations = validate_with(
        &outcome.trace,
        &ValidateConfig {
            capacity_tolerance: 1.05,
            max_violations: 50,
        },
    );
    assert!(
        violations.is_empty(),
        "violations: {:?}",
        &violations[..violations.len().min(5)]
    );
}

#[test]
fn utilization_emerges_near_profile_targets() {
    let outcome = week_outcome(12);
    let profile = CellProfile::cell_2019('d');
    let util = outcome.metrics.average_cpu_util_by_tier();
    let total: f64 = util.values().sum();
    let target: f64 = profile.tiers.iter().map(|t| t.target_cpu_util).sum();
    assert!(
        total > target * 0.5 && total < target * 1.6,
        "total util {total:.3} vs target {target:.3}"
    );
    // Production is the largest CPU consumer in cell d.
    assert!(util[&Tier::Production] > util[&Tier::Free]);
}

#[test]
fn allocation_exceeds_usage_overcommit() {
    let outcome = week_outcome(13);
    let util: f64 = outcome.metrics.average_cpu_util_by_tier().values().sum();
    let alloc: f64 = outcome.metrics.average_cpu_alloc_by_tier().values().sum();
    assert!(
        alloc > util * 1.5,
        "allocation {alloc:.3} should far exceed usage {util:.3}"
    );
}

#[test]
fn scheduling_delays_are_seconds_not_hours() {
    let outcome = week_outcome(14);
    assert!(outcome.metrics.delays.len() > 100);
    let mut delays: Vec<f64> = outcome
        .metrics
        .delays
        .iter()
        .map(|d| d.delay_secs)
        .collect();
    delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = delays[delays.len() / 2];
    assert!(
        (0.01..60.0).contains(&median),
        "median delay = {median}s (Figure 10 is in seconds)"
    );
}

#[test]
fn batch_jobs_queue_and_enable() {
    let outcome = week_outcome(15);
    let queues = outcome
        .trace
        .collection_events
        .iter()
        .filter(|e| e.event_type == EventType::Queue)
        .count();
    let enables = outcome
        .trace
        .collection_events
        .iter()
        .filter(|e| e.event_type == EventType::Enable)
        .count();
    assert!(queues > 0, "beb jobs must pass through the batch queue");
    assert!(enables > 0 && enables <= queues);
}

#[test]
fn rescheduling_churn_exists() {
    let outcome = week_outcome(16);
    let new: f64 = outcome.metrics.new_task_submissions.totals().iter().sum();
    let all: f64 = outcome.metrics.all_task_submissions.totals().iter().sum();
    assert!(
        all > new * 1.2,
        "resubmissions expected: new {new}, all {all}"
    );
}

#[test]
fn production_collections_rarely_evicted() {
    let outcome = week_outcome(17);
    let collections = outcome.trace.collections();
    let mut prod_total = 0u64;
    let mut prod_evicted = 0u64;
    let mut nonprod_evicted = 0u64;
    for info in collections.values() {
        let is_prod = info.priority.reporting_tier() == Tier::Production;
        let evicted = outcome
            .metrics
            .evictions_by_collection
            .contains_key(&info.id.0);
        if is_prod {
            prod_total += 1;
            prod_evicted += evicted as u64;
        } else {
            nonprod_evicted += evicted as u64;
        }
    }
    assert!(prod_total > 0);
    let prod_rate = prod_evicted as f64 / prod_total as f64;
    assert!(
        prod_rate < 0.05,
        "production eviction rate {prod_rate:.4} (paper: <0.002)"
    );
    assert!(
        nonprod_evicted >= prod_evicted,
        "evictions concentrate below production"
    );
}

#[test]
fn slack_orders_by_autopilot_mode() {
    use borg_trace::collection::VerticalScalingMode as M;
    let outcome = week_outcome(18);
    let median_slack = |mode: M| {
        let mut xs: Vec<f64> = outcome
            .metrics
            .slack
            .iter()
            .filter(|s| s.mode == mode)
            .map(|s| s.slack)
            .collect();
        assert!(!xs.is_empty(), "no slack samples for {mode:?}");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    };
    let full = median_slack(M::Full);
    let constrained = median_slack(M::Constrained);
    let off = median_slack(M::Off);
    assert!(
        full < constrained && constrained < off,
        "slack medians: full {full:.3}, constrained {constrained:.3}, off {off:.3}"
    );
    // Figure 14: full autoscaling reduces peak slack by >25% for most jobs.
    assert!(off - full > 0.15, "full {full:.3} vs off {off:.3}");
}

#[test]
fn alloc_sets_present_and_hosting_production() {
    let outcome = week_outcome(19);
    let collections = outcome.trace.collections();
    let alloc_sets = collections
        .values()
        .filter(|c| c.collection_type == borg_trace::collection::CollectionType::AllocSet)
        .count();
    assert!(alloc_sets > 0);
    let frac = alloc_sets as f64 / collections.len() as f64;
    assert!(frac < 0.06, "alloc sets are a small share: {frac}");
    // Jobs inside allocs use memory harder than the rest (§5.1).
    let inside = outcome.metrics.fill_in_alloc.mean();
    let outside = outcome.metrics.fill_outside_alloc.mean();
    assert!(
        inside > outside,
        "in-alloc fill {inside:.3} vs outside {outside:.3}"
    );
}

#[test]
fn machine_snapshot_recorded() {
    let outcome = week_outcome(20);
    assert!(!outcome.metrics.machine_snapshots.is_empty());
    for s in &outcome.metrics.machine_snapshots {
        assert!((0.0..=1.0).contains(&s.cpu_utilization));
        assert!((0.0..=1.0).contains(&s.mem_utilization));
    }
}

#[test]
fn transitions_cover_common_paths() {
    use borg_trace::state::InstanceState as S;
    let outcome = week_outcome(21);
    let t = &outcome.metrics.instance_transitions;
    assert!(t.get(None, EventType::Submit) > 0);
    assert!(t.get(Some(S::Pending), EventType::Schedule) > 0);
    assert!(t.get(Some(S::Running), EventType::Finish) > 0);
    assert!(t.get(Some(S::Running), EventType::Kill) > 0);
    // Common paths are orders of magnitude more frequent than rare ones
    // (Figure 7).
    let common = t.get(Some(S::Pending), EventType::Schedule);
    let rare = t.get(Some(S::Running), EventType::Evict);
    assert!(common > rare);
}

#[test]
fn dependency_cascades_kill_children() {
    let outcome = week_outcome(22);
    let collections = outcome.trace.collections();
    let mut with_parent_killed = 0u64;
    let mut with_parent = 0u64;
    let mut without_parent_killed = 0u64;
    let mut without_parent = 0u64;
    for c in collections.values() {
        if c.collection_type != borg_trace::collection::CollectionType::Job {
            continue;
        }
        let killed = c.final_event == Some(EventType::Kill);
        if c.parent_id.is_some() {
            with_parent += 1;
            with_parent_killed += killed as u64;
        } else {
            without_parent += 1;
            without_parent_killed += killed as u64;
        }
    }
    assert!(with_parent > 20);
    let kp = with_parent_killed as f64 / with_parent as f64;
    let ko = without_parent_killed as f64 / without_parent as f64;
    assert!(kp > ko, "kill rate with parent {kp:.2} vs without {ko:.2}");
    assert!(
        kp > 0.7,
        "paper: 87% of jobs with parents are killed, got {kp:.2}"
    );
}

#[test]
fn deterministic_given_seed() {
    let profile = CellProfile::cell_2019('a');
    let cfg = SimConfig::tiny_for_tests(33);
    let a = CellSim::run_cell(&profile, &cfg);
    let b = CellSim::run_cell(&profile, &cfg);
    assert_eq!(
        a.trace.collection_events.len(),
        b.trace.collection_events.len()
    );
    assert_eq!(a.trace.instance_events.len(), b.trace.instance_events.len());
    assert_eq!(a.trace.usage.len(), b.trace.usage.len());
    assert_eq!(a.metrics.preemptions, b.metrics.preemptions);
}

#[test]
fn scheduling_explanation_renders() {
    let outcome = week_outcome(23);
    let report = outcome.metrics.explain_scheduling();
    assert!(report.contains("placements:"));
    assert!(report.contains("evictions by cause"));
    assert!(report.contains("cell d"));
}

#[test]
fn era_2011_has_no_new_features() {
    let profile = CellProfile::cell_2011();
    let cfg = SimConfig::tiny_for_tests(44);
    let outcome = CellSim::run_cell(&profile, &cfg);
    assert!(outcome
        .trace
        .collection_events
        .iter()
        .all(|e| e.event_type != EventType::Queue));
    assert!(outcome
        .trace
        .collection_events
        .iter()
        .all(|e| e.collection_type == borg_trace::collection::CollectionType::Job));
    assert_eq!(
        outcome.trace.schema,
        Some(borg_trace::trace::SchemaVersion::V2Trace2011)
    );
}
