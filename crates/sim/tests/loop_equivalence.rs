//! The event loop's determinism contract: the batched dispatch cursor,
//! generation-stamped pending queue, primed event calendar, and
//! incremental usage tick must emit a **bit-identical trace** to the
//! seed event loop (`SimConfig::legacy_event_loop`) — one `Dispatch`
//! heap round-trip per placement, aliveness re-derived from job/task
//! state, and the allocating per-tick usage walk — across seeds,
//! profiles, gang scheduling, and fault injection (DESIGN.md §13).
//!
//! The same discipline as `index_equivalence.rs`: the fast path may
//! change *how* the answer is computed, never *which* answer.

use borg_sim::{CellSim, FaultConfig, SimConfig};
use borg_trace::trace::Trace;
use borg_workload::cells::CellProfile;

/// Full bitwise comparison of every trace table.
fn assert_traces_identical(legacy: &Trace, batched: &Trace, label: &str) {
    assert_eq!(
        legacy.machine_events, batched.machine_events,
        "{label}: machine events diverge"
    );
    assert_eq!(
        legacy.collection_events, batched.collection_events,
        "{label}: collection events diverge"
    );
    assert_eq!(
        legacy.instance_events, batched.instance_events,
        "{label}: instance events diverge"
    );
    assert_eq!(
        legacy.usage, batched.usage,
        "{label}: usage records diverge"
    );
}

/// Runs the same configuration through both event loops and compares
/// the complete outcomes.
fn check_equivalence(profile: &CellProfile, cfg: &SimConfig, label: &str) {
    let mut legacy_cfg = cfg.clone();
    legacy_cfg.legacy_event_loop = true;
    let mut batched_cfg = cfg.clone();
    batched_cfg.legacy_event_loop = false;
    let legacy = CellSim::run_cell(profile, &legacy_cfg);
    let batched = CellSim::run_cell(profile, &batched_cfg);
    assert_traces_identical(&legacy.trace, &batched.trace, label);
    // Scheduler-visible metrics must agree too: bursting elides heap
    // round-trips, never placements, stalls, or evictions.
    assert_eq!(
        legacy.metrics.preemptions, batched.metrics.preemptions,
        "{label}: preemption counts diverge"
    );
    assert_eq!(
        legacy.metrics.stalls_by_tier, batched.metrics.stalls_by_tier,
        "{label}: stall counts diverge"
    );
    assert_eq!(
        legacy.metrics.evictions_by_cause, batched.metrics.evictions_by_cause,
        "{label}: eviction causes diverge"
    );
    assert_eq!(
        legacy.metrics.machine_failures, batched.metrics.machine_failures,
        "{label}: machine failures diverge"
    );
    assert_eq!(
        legacy.metrics.tasks_lost, batched.metrics.tasks_lost,
        "{label}: lost tasks diverge"
    );
}

#[test]
fn batched_loop_is_bit_identical_across_seeds() {
    for seed in [1u64, 7, 42] {
        let cfg = SimConfig::tiny_for_tests(seed);
        check_equivalence(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("cell a, seed {seed}"),
        );
    }
}

#[test]
fn batched_loop_is_bit_identical_across_profiles() {
    for profile in [CellProfile::cell_2019('d'), CellProfile::cell_2011()] {
        let cfg = SimConfig::tiny_for_tests(11);
        check_equivalence(&profile, &cfg, &format!("profile {}", profile.name));
    }
}

#[test]
fn batched_loop_is_bit_identical_under_gang_scheduling() {
    // Gang mode is where the generation stamps earn their keep: a gang
    // stall orphans every member's queue entry at once, and a gang
    // placement starts members whose own entries are still in the heap.
    for seed in [3u64, 17, 29] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.gang_scheduling = true;
        check_equivalence(
            &CellProfile::cell_2019('b'),
            &cfg,
            &format!("gang mode, seed {seed}"),
        );
    }
}

#[test]
fn batched_loop_is_bit_identical_under_fault_injection() {
    // Machine failures kill and resubmit tasks mid-burst and mid-window:
    // the resubmissions must interleave with the dispatch cursor exactly
    // as they interleaved with per-event dispatch.
    for seed in [5u64, 23, 42] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.faults = Some(FaultConfig::default());
        check_equivalence(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("faults, seed {seed}"),
        );
    }
}

#[test]
fn batched_loop_is_bit_identical_with_gang_and_faults() {
    for seed in [13u64, 31] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.gang_scheduling = true;
        cfg.faults = Some(FaultConfig::default());
        check_equivalence(
            &CellProfile::cell_2019('b'),
            &cfg,
            &format!("gang + faults, seed {seed}"),
        );
    }
}

/// Churn stress: dense fleet, daily sweeps, heavy eviction/retry load —
/// every path that pushes pending entries or invalidates generations.
#[test]
fn batched_loop_survives_churn_stress() {
    for seed in [5u64, 29] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.scale = 0.004;
        cfg.maintenance_per_month = 30.0;
        cfg.usage_interval = borg_trace::time::Micros::from_minutes(30);
        check_equivalence(
            &CellProfile::cell_2019('c'),
            &cfg,
            &format!("churn stress, seed {seed}"),
        );
    }
}

/// Sharded placement (`SimConfig::placement_shards`, DESIGN.md §14)
/// must compose with both event loops: the legacy and batched loops,
/// each probing K parallel shards, still agree bit for bit.
#[test]
fn batched_loop_is_bit_identical_with_sharded_placement() {
    for k in [3usize, 16] {
        let mut cfg = SimConfig::tiny_for_tests(21);
        cfg.placement_shards = Some(k);
        check_equivalence(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("sharded K={k}"),
        );
    }
}

/// The legacy arm must remain exercised (it guards the contract) and the
/// batched arm must actually run with batching enabled by default.
#[test]
fn default_config_uses_the_batched_loop() {
    let cfg = SimConfig::tiny_for_tests(1);
    assert!(!cfg.legacy_event_loop, "batched loop must be the default");
    assert!(!SimConfig::month(1).legacy_event_loop);
}
