//! The placement index's determinism contract: in exact mode the indexed
//! scheduler must choose the same machine for every placement and emit a
//! **bit-identical trace** to the naive O(machines) scan, across
//! workloads, seeds, eras, and scheduler modes.

use borg_sim::{CellSim, SimConfig};
use borg_trace::trace::Trace;
use borg_workload::cells::CellProfile;

/// Full bitwise comparison of every trace table.
fn assert_traces_identical(naive: &Trace, indexed: &Trace, label: &str) {
    assert_eq!(
        naive.machine_events, indexed.machine_events,
        "{label}: machine events diverge"
    );
    assert_eq!(
        naive.collection_events, indexed.collection_events,
        "{label}: collection events diverge"
    );
    assert_eq!(
        naive.instance_events, indexed.instance_events,
        "{label}: instance events diverge"
    );
    assert_eq!(naive.usage, indexed.usage, "{label}: usage records diverge");
}

/// Runs the same configuration with and without the index and compares
/// the complete outcomes.
fn check_equivalence(profile: &CellProfile, cfg: &SimConfig, label: &str) {
    let mut naive_cfg = cfg.clone();
    naive_cfg.use_placement_index = false;
    let mut indexed_cfg = cfg.clone();
    indexed_cfg.use_placement_index = true;
    let naive = CellSim::run_cell(profile, &naive_cfg);
    let indexed = CellSim::run_cell(profile, &indexed_cfg);
    assert_traces_identical(&naive.trace, &indexed.trace, label);
    // Scheduler-visible metrics must agree too (the index only changes
    // how the winner is found, never which winner is found).
    assert_eq!(
        naive.metrics.preemptions, indexed.metrics.preemptions,
        "{label}: preemption counts diverge"
    );
    assert_eq!(
        naive.metrics.stalls_by_tier, indexed.metrics.stalls_by_tier,
        "{label}: stall counts diverge"
    );
    assert_eq!(
        naive.metrics.evictions_by_cause, indexed.metrics.evictions_by_cause,
        "{label}: eviction causes diverge"
    );
    // And the indexed run must actually have used the index.
    let ix = indexed.metrics.index;
    assert!(
        ix.cache_hits + ix.negative_hits + ix.cache_misses > 0,
        "{label}: index never consulted"
    );
    assert_eq!(
        naive.metrics.index,
        borg_sim::index::IndexStats::default(),
        "{label}: naive run should not touch the index"
    );
}

#[test]
fn indexed_placement_is_bit_identical_across_seeds() {
    for seed in [1u64, 7, 42, 1234, 98765] {
        let cfg = SimConfig::tiny_for_tests(seed);
        check_equivalence(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("cell a, seed {seed}"),
        );
    }
}

#[test]
fn indexed_placement_is_bit_identical_across_profiles() {
    for profile in [
        CellProfile::cell_2019('d'),
        CellProfile::cell_2019('g'),
        CellProfile::cell_2011(),
    ] {
        let cfg = SimConfig::tiny_for_tests(11);
        check_equivalence(&profile, &cfg, &format!("profile {}", profile.name));
    }
}

#[test]
fn indexed_placement_is_bit_identical_under_gang_scheduling() {
    for seed in [3u64, 17] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.gang_scheduling = true;
        check_equivalence(
            &CellProfile::cell_2019('b'),
            &cfg,
            &format!("gang mode, seed {seed}"),
        );
    }
}

/// Invalidation stress: daily maintenance sweeps, a denser fleet, and a
/// pressured cell maximize preemptions, evictions, retries, and autopilot
/// churn — every path that mutates machines behind the score cache's
/// back.
#[test]
fn indexed_placement_survives_churn_stress() {
    for seed in [5u64, 29] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.scale = 0.004;
        cfg.maintenance_per_month = 30.0;
        cfg.usage_interval = borg_trace::time::Micros::from_minutes(30);
        check_equivalence(
            &CellProfile::cell_2019('c'),
            &cfg,
            &format!("churn stress, seed {seed}"),
        );
        let mut cfg_2011 = cfg.clone();
        cfg_2011.seed = seed.wrapping_add(1);
        check_equivalence(
            &CellProfile::cell_2011(),
            &cfg_2011,
            &format!("churn stress 2011, seed {seed}"),
        );
    }
}

/// The churn stress must actually exercise preemption/eviction churn, or
/// the test above proves less than it claims.
#[test]
fn churn_stress_actually_churns() {
    let mut cfg = SimConfig::tiny_for_tests(5);
    cfg.scale = 0.004;
    cfg.maintenance_per_month = 30.0;
    let outcome = CellSim::run_cell(&CellProfile::cell_2019('c'), &cfg);
    let evictions: u64 = outcome.metrics.evictions_by_cause.values().sum();
    assert!(
        evictions > 20,
        "churn config produced only {evictions} evictions"
    );
}

/// The sharded fan-out (`SimConfig::placement_shards`, DESIGN.md §14)
/// rides the same contract: K per-shard indices combined
/// deterministically must still match the naive scan bit for bit. The
/// full K sweep lives in `shard_equivalence.rs`; this arm pins the
/// naive↔sharded edge of the triangle inside the index contract file.
#[test]
fn sharded_index_is_bit_identical_to_naive_scan() {
    for k in [2usize, 7] {
        let mut cfg = SimConfig::tiny_for_tests(19);
        cfg.placement_shards = Some(k);
        check_equivalence(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("sharded K={k}"),
        );
    }
}

/// Bounded candidate search is a deliberate departure from exact
/// best-fit: it must still produce a valid simulation (all invariants
/// hold; the state machines accept every transition) and remain
/// deterministic for a fixed seed.
#[test]
fn bounded_candidate_mode_runs_and_is_deterministic() {
    let mut cfg = SimConfig::tiny_for_tests(13);
    cfg.candidate_cap = Some(8);
    let profile = CellProfile::cell_2019('a');
    let a = CellSim::run_cell(&profile, &cfg);
    let b = CellSim::run_cell(&profile, &cfg);
    assert_traces_identical(&a.trace, &b.trace, "bounded determinism");
    assert!(a.metrics.index.bounded_probes > 0, "bounded mode unused");
    assert!(
        !a.trace.instance_events.is_empty(),
        "bounded mode placed nothing"
    );
}
