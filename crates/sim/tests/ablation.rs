//! The ablation knobs change the mechanisms they claim to change.

use borg_sim::{CellSim, SimConfig};
use borg_trace::collection::VerticalScalingMode;
use borg_trace::state::EventType;
use borg_trace::time::Micros;
use borg_workload::cells::CellProfile;

fn cfg(seed: u64) -> SimConfig {
    let mut c = SimConfig::tiny_for_tests(seed);
    c.horizon = Micros::from_days(2);
    c
}

#[test]
fn disabling_batch_queue_removes_queue_events() {
    let profile = CellProfile::cell_2019('b');
    let mut c = cfg(51);
    c.disable_batch_queue = true;
    let o = CellSim::run_cell(&profile, &c);
    assert!(o
        .trace
        .collection_events
        .iter()
        .all(|e| e.event_type != EventType::Queue));

    let baseline = CellSim::run_cell(&profile, &cfg(51));
    assert!(baseline
        .trace
        .collection_events
        .iter()
        .any(|e| e.event_type == EventType::Queue));
}

#[test]
fn disabling_autopilot_leaves_slack_unreclaimed() {
    let profile = CellProfile::cell_2019('a');
    let median = |o: &borg_sim::CellOutcome, mode: VerticalScalingMode| {
        let mut xs: Vec<f64> = o
            .metrics
            .slack
            .iter()
            .filter(|s| s.mode == mode)
            .map(|s| s.slack)
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.get(xs.len() / 2).copied()
    };
    let mut c = cfg(52);
    c.disable_autopilot = true;
    let ablated = CellSim::run_cell(&profile, &c);
    // With autopilot off every sample reports mode Off.
    assert!(ablated
        .metrics
        .slack
        .iter()
        .all(|s| s.mode == VerticalScalingMode::Off));

    let baseline = CellSim::run_cell(&profile, &cfg(52));
    let full = median(&baseline, VerticalScalingMode::Full).expect("full-mode samples");
    let off = median(&ablated, VerticalScalingMode::Off).expect("off-mode samples");
    assert!(
        off > full,
        "unreclaimed slack {off:.3} should exceed autoscaled slack {full:.3}"
    );
}

#[test]
fn equivalence_class_caching_speeds_up_wide_jobs() {
    let profile = CellProfile::cell_2019('b'); // beb-heavy: wide jobs
    let p90 = |o: &borg_sim::CellOutcome| {
        let mut xs: Vec<f64> = o.metrics.delays.iter().map(|d| d.delay_secs).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[(xs.len() as f64 * 0.9) as usize]
    };
    let baseline = CellSim::run_cell(&profile, &cfg(53));
    let mut c = cfg(53);
    c.equivalence_class_speedup = 1.0;
    let ablated = CellSim::run_cell(&profile, &c);
    assert!(
        p90(&ablated) > p90(&baseline),
        "without caching p90 {:.1}s should exceed baseline {:.1}s",
        p90(&ablated),
        p90(&baseline)
    );
}

#[test]
fn gang_scheduling_starts_jobs_whole() {
    use borg_trace::state::InstanceState;
    let profile = CellProfile::cell_2019('b');
    let mut c = cfg(54);
    c.gang_scheduling = true;
    let o = CellSim::run_cell(&profile, &c);
    // Under gang scheduling a job is either fully started or not started:
    // at every point where a job's first task is scheduled, its sibling
    // schedules happen at the same timestamp.
    let mut first_sched: std::collections::BTreeMap<u64, (borg_trace::time::Micros, u32, u32)> =
        Default::default();
    for ev in &o.trace.instance_events {
        if ev.event_type == EventType::Schedule {
            let e =
                first_sched
                    .entry(ev.instance_id.collection.0)
                    .or_insert((ev.time, 0, u32::MAX));
            if ev.time == e.0 {
                e.1 += 1;
            }
        }
    }
    // Many multi-task jobs scheduled ≥2 tasks at one instant.
    let gangs = first_sched.values().filter(|(_, n, _)| *n >= 2).count();
    assert!(gangs > 10, "gang placements observed: {gangs}");
    let _ = InstanceState::Pending;

    // Jobs still run and finish under gang mode.
    assert!(o
        .trace
        .collection_events
        .iter()
        .any(|e| e.event_type == EventType::Finish));
}
