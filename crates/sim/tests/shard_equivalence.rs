//! The sharded placement layer's determinism contract: for **every**
//! shard count K, exact mode must emit a bit-identical trace and
//! identical scheduler-visible metrics to the K=1 single-index path
//! (which `index_equivalence.rs` in turn proves bit-identical to the
//! naive scan). Sharding changes *where* each machine's score is
//! computed and *which thread* computes it — never which machine wins
//! (DESIGN.md §14).
//!
//! `metrics.index` is deliberately excluded from the comparison: probe
//! counters are accounted per shard (a K=4 run records different
//! hit/miss splits than K=1), which is observability, not scheduling.

use borg_sim::{CellSim, FaultConfig, SimConfig};
use borg_trace::trace::Trace;
use borg_workload::cells::CellProfile;

/// The shard counts under test: the untouched baseline, even and odd
/// splits, a prime that never divides the fleet, and more shards than
/// this host has cores (exercising the inline fan-out path).
const SHARD_SWEEP: [usize; 5] = [1, 2, 3, 7, 16];

/// Full bitwise comparison of every trace table.
fn assert_traces_identical(baseline: &Trace, sharded: &Trace, label: &str) {
    assert_eq!(
        baseline.machine_events, sharded.machine_events,
        "{label}: machine events diverge"
    );
    assert_eq!(
        baseline.collection_events, sharded.collection_events,
        "{label}: collection events diverge"
    );
    assert_eq!(
        baseline.instance_events, sharded.instance_events,
        "{label}: instance events diverge"
    );
    assert_eq!(
        baseline.usage, sharded.usage,
        "{label}: usage records diverge"
    );
}

/// Runs `cfg` at K=1 and at every swept shard count, comparing complete
/// outcomes against the K=1 run.
fn check_shard_sweep(profile: &CellProfile, cfg: &SimConfig, label: &str) {
    let mut base_cfg = cfg.clone();
    base_cfg.placement_shards = Some(1);
    let baseline = CellSim::run_cell(profile, &base_cfg);
    for k in SHARD_SWEEP {
        if k == 1 {
            continue;
        }
        let mut sharded_cfg = cfg.clone();
        sharded_cfg.placement_shards = Some(k);
        let sharded = CellSim::run_cell(profile, &sharded_cfg);
        let label = format!("{label}, K={k}");
        assert_traces_identical(&baseline.trace, &sharded.trace, &label);
        // Every placement decision the scheduler can observe must agree.
        assert_eq!(
            baseline.metrics.preemptions, sharded.metrics.preemptions,
            "{label}: preemption counts diverge"
        );
        assert_eq!(
            baseline.metrics.stalls_by_tier, sharded.metrics.stalls_by_tier,
            "{label}: stall counts diverge"
        );
        assert_eq!(
            baseline.metrics.evictions_by_cause, sharded.metrics.evictions_by_cause,
            "{label}: eviction causes diverge"
        );
        assert_eq!(
            baseline.metrics.machine_failures, sharded.metrics.machine_failures,
            "{label}: machine failures diverge"
        );
        assert_eq!(
            baseline.metrics.tasks_lost, sharded.metrics.tasks_lost,
            "{label}: lost tasks diverge"
        );
        // The sharded run must actually have consulted its index.
        let ix = sharded.metrics.index;
        assert!(
            ix.cache_hits + ix.negative_hits + ix.cache_misses > 0,
            "{label}: index never consulted"
        );
    }
}

#[test]
fn sharded_placement_is_bit_identical_across_seeds() {
    for seed in [7u64, 31] {
        let cfg = SimConfig::tiny_for_tests(seed);
        check_shard_sweep(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("cell a, seed {seed}"),
        );
    }
}

#[test]
fn sharded_placement_is_bit_identical_across_profiles() {
    for profile in [CellProfile::cell_2019('d'), CellProfile::cell_2019('g')] {
        let cfg = SimConfig::tiny_for_tests(11);
        check_shard_sweep(&profile, &cfg, &format!("profile {}", profile.name));
    }
}

#[test]
fn sharded_placement_is_bit_identical_under_fault_injection() {
    // Machine failures zero a machine's capacity and repairs restore it
    // — shard membership is fixed (contiguous ranges), but the owning
    // shard's mirror, tree, and cache must all converge identically.
    for seed in [5u64, 23] {
        let mut cfg = SimConfig::tiny_for_tests(seed);
        cfg.faults = Some(FaultConfig::default());
        check_shard_sweep(
            &CellProfile::cell_2019('a'),
            &cfg,
            &format!("faults, seed {seed}"),
        );
    }
}

/// Churn stress: dense fleet, daily maintenance sweeps, faults on — the
/// add/remove/repair paths that mutate machines behind every shard's
/// back, maximizing cross-shard cache invalidation traffic.
#[test]
fn sharded_placement_survives_churn_stress() {
    let mut cfg = SimConfig::tiny_for_tests(29);
    cfg.scale = 0.004;
    cfg.maintenance_per_month = 30.0;
    cfg.usage_interval = borg_trace::time::Micros::from_minutes(30);
    cfg.faults = Some(FaultConfig::default());
    check_shard_sweep(&CellProfile::cell_2019('c'), &cfg, "churn stress");
}

/// Sharded-vs-naive directly: K>1 against the reference O(machines)
/// scan, closing the triangle (naive == K=1 == K>1) without relying on
/// transitivity across test files.
#[test]
fn sharded_placement_matches_naive_scan() {
    let profile = CellProfile::cell_2019('b');
    let mut naive_cfg = SimConfig::tiny_for_tests(17);
    naive_cfg.use_placement_index = false;
    let mut sharded_cfg = SimConfig::tiny_for_tests(17);
    sharded_cfg.placement_shards = Some(5);
    let naive = CellSim::run_cell(&profile, &naive_cfg);
    let sharded = CellSim::run_cell(&profile, &sharded_cfg);
    assert_traces_identical(&naive.trace, &sharded.trace, "naive vs K=5");
    assert_eq!(
        naive.metrics.preemptions, sharded.metrics.preemptions,
        "naive vs K=5: preemption counts diverge"
    );
    assert_eq!(
        naive.metrics.stalls_by_tier, sharded.metrics.stalls_by_tier,
        "naive vs K=5: stall counts diverge"
    );
}

/// Gang scheduling batches placements through the same best-fit path;
/// a quick guard that the sharded index composes with it.
#[test]
fn sharded_placement_is_bit_identical_under_gang_scheduling() {
    let mut cfg = SimConfig::tiny_for_tests(3);
    cfg.gang_scheduling = true;
    check_shard_sweep(&CellProfile::cell_2019('b'), &cfg, "gang mode");
}

/// The default (auto-sized) configuration must run and match an
/// explicit K=1 run whenever auto-sizing resolves to one shard — and on
/// a tiny fleet it always does (fleets below the 512-machine floor
/// never split).
#[test]
fn auto_sharding_defaults_are_safe_on_small_fleets() {
    let profile = CellProfile::cell_2019('a');
    let auto_cfg = SimConfig::tiny_for_tests(42);
    assert_eq!(
        auto_cfg.effective_shards(auto_cfg.machine_count(&profile)),
        1,
        "tiny fleets must stay on the single-index path"
    );
    let mut one_cfg = auto_cfg.clone();
    one_cfg.placement_shards = Some(1);
    let auto = CellSim::run_cell(&profile, &auto_cfg);
    let one = CellSim::run_cell(&profile, &one_cfg);
    assert_traces_identical(&auto.trace, &one.trace, "auto vs explicit K=1");
}
