//! Edge-case simulations: extreme configurations must complete and stay
//! internally consistent.

use borg_sim::{CellSim, SimConfig};
use borg_trace::time::Micros;
use borg_trace::validate::validate;
use borg_workload::cells::CellProfile;

#[test]
fn one_hour_horizon_completes() {
    let profile = CellProfile::cell_2019('a');
    let mut cfg = SimConfig::tiny_for_tests(61);
    cfg.horizon = Micros::from_hours(1);
    cfg.snapshot_at = Micros::from_minutes(30);
    let o = CellSim::run_cell(&profile, &cfg);
    // Residents are submitted in the first minute, so events exist even
    // in a one-hour window.
    assert!(!o.trace.collection_events.is_empty());
    assert!(validate(&o.trace).is_empty());
}

#[test]
fn minimal_fleet_completes() {
    let profile = CellProfile::cell_2011();
    let mut cfg = SimConfig::tiny_for_tests(62);
    cfg.scale = 1e-9; // clamps to the 4-machine minimum
    cfg.horizon = Micros::from_hours(6);
    cfg.snapshot_at = Micros::from_hours(3);
    let o = CellSim::run_cell(&profile, &cfg);
    assert_eq!(o.trace.machine_count(), 4);
    assert!(validate(&o.trace).is_empty());
}

#[test]
fn five_minute_usage_interval_supported() {
    // The real trace samples every 5 minutes; make sure the finest
    // supported interval works end to end.
    let profile = CellProfile::cell_2019('e');
    let mut cfg = SimConfig::tiny_for_tests(63);
    cfg.horizon = Micros::from_hours(8);
    cfg.usage_interval = Micros::from_minutes(5);
    cfg.snapshot_at = Micros::from_hours(4);
    cfg.keep_usage_every = 3;
    let o = CellSim::run_cell(&profile, &cfg);
    assert!(!o.trace.usage.is_empty());
    for u in &o.trace.usage {
        assert_eq!(u.duration(), Micros::from_minutes(5));
        assert!(u.cpu_histogram.is_monotone());
    }
    assert!(validate(&o.trace).is_empty());
}

#[test]
fn all_ablations_combined_still_valid() {
    let profile = CellProfile::cell_2019('b');
    let mut cfg = SimConfig::tiny_for_tests(64);
    cfg.horizon = Micros::from_hours(12);
    cfg.disable_batch_queue = true;
    cfg.disable_autopilot = true;
    cfg.gang_scheduling = true;
    cfg.equivalence_class_speedup = 1.0;
    let o = CellSim::run_cell(&profile, &cfg);
    assert!(validate(&o.trace).is_empty());
    assert!(o.metrics.delays.len() > 10);
}

#[test]
fn aggressive_maintenance_does_not_break_invariants() {
    let profile = CellProfile::cell_2019('d');
    let mut cfg = SimConfig::tiny_for_tests(65);
    cfg.horizon = Micros::from_hours(24);
    cfg.maintenance_per_month = 60.0; // a sweep every ~12 hours per machine
    let o = CellSim::run_cell(&profile, &cfg);
    assert!(validate(&o.trace).is_empty());
    let evictions: u64 = o.metrics.evictions_by_collection.values().sum();
    assert!(evictions > 0, "aggressive maintenance must evict something");
}

#[test]
fn usage_conservation_against_trace_integral() {
    // The metrics' per-tier usage totals must equal the integral implied
    // by the trace events within tolerance (no double counting from the
    // exact per-task accounting).
    let profile = CellProfile::cell_2019('a');
    let mut cfg = SimConfig::tiny_for_tests(66);
    cfg.horizon = Micros::from_hours(24);
    let o = CellSim::run_cell(&profile, &cfg);
    let metrics_total: f64 = o
        .metrics
        .tiers
        .values()
        .map(|s| s.usage_cpu.totals().iter().sum::<f64>())
        .sum::<f64>()
        / borg_trace::time::MICROS_PER_HOUR as f64;
    // Usage must be positive and below the physical ceiling.
    let ceiling = o.metrics.capacity.cpu * 24.0;
    assert!(metrics_total > 0.0);
    assert!(
        metrics_total < ceiling,
        "usage {metrics_total} NCU-h exceeds physical ceiling {ceiling}"
    );
}
