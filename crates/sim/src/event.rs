//! The discrete-event queue.

use borg_trace::time::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events driving the simulation. Indices refer into the cell's job,
/// task, alloc-set, and machine tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A job arrives at the Borgmaster.
    JobSubmit {
        /// Index into the workload's job list.
        job: usize,
    },
    /// An alloc set arrives.
    AllocSubmit {
        /// Index into the workload's alloc-set list.
        alloc: usize,
    },
    /// An alloc set's reservation expires.
    AllocExpire {
        /// Index into the workload's alloc-set list.
        alloc: usize,
    },
    /// The scheduler finishes one placement decision.
    Dispatch,
    /// A job reaches its realized end (finish, kill, or fail).
    JobEnd {
        /// Index into the workload's job list.
        job: usize,
    },
    /// A flaky task's current attempt is interrupted.
    TaskInterrupt {
        /// Owning job index.
        job: usize,
        /// Task index within the job.
        task: usize,
        /// Attempt this interrupt was scheduled for (stale ones are
        /// ignored).
        attempt: u32,
    },
    /// Periodic usage sampling, autopilot, and over-commit checks.
    UsageTick,
    /// Periodic batch-queue admission check.
    BatchTick,
    /// Periodic retry of stalled (unplaceable) tasks.
    RetryTick,
    /// Maintenance sweep on one machine (evicts its non-production
    /// occupants).
    Maintenance {
        /// Machine index.
        machine: usize,
    },
    /// Injected machine failure (only scheduled when fault injection is
    /// enabled). Carries the failure-clock epoch so clocks invalidated by
    /// a correlated co-failure are ignored when they fire.
    MachineFail {
        /// Machine index.
        machine: usize,
        /// Failure-clock epoch this event was scheduled under.
        epoch: u32,
    },
    /// A failed machine comes back (fault injection only).
    MachineRepair {
        /// Machine index.
        machine: usize,
    },
}

impl Ev {
    /// Dense kind index for telemetry grids (parallel to [`KIND_NAMES`]).
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            Ev::JobSubmit { .. } => 0,
            Ev::AllocSubmit { .. } => 1,
            Ev::AllocExpire { .. } => 2,
            Ev::Dispatch => 3,
            Ev::JobEnd { .. } => 4,
            Ev::TaskInterrupt { .. } => 5,
            Ev::UsageTick => 6,
            Ev::BatchTick => 7,
            Ev::RetryTick => 8,
            Ev::Maintenance { .. } => 9,
            Ev::MachineFail { .. } => 10,
            Ev::MachineRepair { .. } => 11,
        }
    }
}

/// Metric-name segment per [`Ev::kind_index`] value.
pub const KIND_NAMES: &[&str] = &[
    "job_submit",
    "alloc_submit",
    "alloc_expire",
    "dispatch",
    "job_end",
    "task_interrupt",
    "usage_tick",
    "batch_tick",
    "retry_tick",
    "maintenance",
    "machine_fail",
    "machine_repair",
];

/// A timestamped event with a deterministic tiebreak sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: Micros,
    seq: u64,
    ev: Ev,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `ev` at `time`. Events at equal times fire in insertion
    /// order, which keeps runs reproducible.
    pub fn push(&mut self, time: Micros, ev: Ev) {
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Micros, Ev)> {
        self.heap.pop().map(|s| (s.time, s.ev))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(Micros::from_secs(5), Ev::UsageTick);
        q.push(Micros::from_secs(1), Ev::Dispatch);
        q.push(Micros::from_secs(3), Ev::BatchTick);
        assert_eq!(q.pop().unwrap().0, Micros::from_secs(1));
        assert_eq!(q.pop().unwrap().0, Micros::from_secs(3));
        assert_eq!(q.pop().unwrap().0, Micros::from_secs(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(Micros::from_secs(1), Ev::JobSubmit { job: 1 });
        q.push(Micros::from_secs(1), Ev::JobSubmit { job: 2 });
        q.push(Micros::from_secs(1), Ev::JobSubmit { job: 3 });
        let order: Vec<Ev> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Ev::JobSubmit { job: 1 },
                Ev::JobSubmit { job: 2 },
                Ev::JobSubmit { job: 3 }
            ]
        );
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Micros::ZERO, Ev::RetryTick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
