//! The discrete-event queue.

use borg_trace::time::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events driving the simulation. Indices refer into the cell's job,
/// task, alloc-set, and machine tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A job arrives at the Borgmaster.
    JobSubmit {
        /// Index into the workload's job list.
        job: usize,
    },
    /// An alloc set arrives.
    AllocSubmit {
        /// Index into the workload's alloc-set list.
        alloc: usize,
    },
    /// An alloc set's reservation expires.
    AllocExpire {
        /// Index into the workload's alloc-set list.
        alloc: usize,
    },
    /// The scheduler finishes one placement decision.
    Dispatch,
    /// A job reaches its realized end (finish, kill, or fail).
    JobEnd {
        /// Index into the workload's job list.
        job: usize,
    },
    /// A flaky task's current attempt is interrupted.
    TaskInterrupt {
        /// Owning job index.
        job: usize,
        /// Task index within the job.
        task: usize,
        /// Attempt this interrupt was scheduled for (stale ones are
        /// ignored).
        attempt: u32,
    },
    /// Periodic usage sampling, autopilot, and over-commit checks.
    UsageTick,
    /// Periodic batch-queue admission check.
    BatchTick,
    /// Periodic retry of stalled (unplaceable) tasks.
    RetryTick,
    /// Maintenance sweep on one machine (evicts its non-production
    /// occupants).
    Maintenance {
        /// Machine index.
        machine: usize,
    },
    /// Injected machine failure (only scheduled when fault injection is
    /// enabled). Carries the failure-clock epoch so clocks invalidated by
    /// a correlated co-failure are ignored when they fire.
    MachineFail {
        /// Machine index.
        machine: usize,
        /// Failure-clock epoch this event was scheduled under.
        epoch: u32,
    },
    /// A failed machine comes back (fault injection only).
    MachineRepair {
        /// Machine index.
        machine: usize,
    },
}

impl Ev {
    /// Dense kind index for telemetry grids (parallel to [`KIND_NAMES`]).
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            Ev::JobSubmit { .. } => 0,
            Ev::AllocSubmit { .. } => 1,
            Ev::AllocExpire { .. } => 2,
            Ev::Dispatch => 3,
            Ev::JobEnd { .. } => 4,
            Ev::TaskInterrupt { .. } => 5,
            Ev::UsageTick => 6,
            Ev::BatchTick => 7,
            Ev::RetryTick => 8,
            Ev::Maintenance { .. } => 9,
            Ev::MachineFail { .. } => 10,
            Ev::MachineRepair { .. } => 11,
        }
    }
}

/// Metric-name segment per [`Ev::kind_index`] value.
pub const KIND_NAMES: &[&str] = &[
    "job_submit",
    "alloc_submit",
    "alloc_expire",
    "dispatch",
    "job_end",
    "task_interrupt",
    "usage_tick",
    "batch_tick",
    "retry_tick",
    "maintenance",
    "machine_fail",
    "machine_repair",
];

/// A timestamped event with a deterministic tiebreak sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: Micros,
    seq: u64,
    ev: Ev,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
///
/// Events known before the loop starts (job/alloc submissions, the
/// periodic-tick seeds, maintenance sweeps, failure clocks) are
/// [`EventQueue::prime`]d into a pre-sorted calendar consumed by a
/// cursor: each costs O(1) to pop instead of an O(log n) heap sift, and
/// — since they can be the majority of events alive at once — the live
/// heap the runtime pushes against stays much smaller. Ordering is
/// identical to pushing everything through the heap: primed events are
/// assigned the first sequence numbers in primed order, so they win
/// every equal-time tie against runtime pushes, and the calendar is
/// sorted by the same `(time, seq)` key the heap uses.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    /// Pre-sorted one-shot calendar, consumed from `cursor` on.
    primed: Vec<Scheduled>,
    cursor: usize,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Loads the pre-loop calendar. Equal-time entries fire in the order
    /// given here, before any runtime [`EventQueue::push`] at the same
    /// time — exactly as if each had been pushed, in order, first.
    ///
    /// # Panics
    ///
    /// Panics if called more than once or after a push: primed events
    /// must own the smallest sequence numbers for ties to resolve the
    /// same way the all-heap queue resolved them.
    pub fn prime(&mut self, events: impl IntoIterator<Item = (Micros, Ev)>) {
        assert!(
            self.seq == 0 && self.primed.is_empty(),
            "prime() must be the queue's first operation"
        );
        self.primed = events
            .into_iter()
            .map(|(time, ev)| {
                let s = Scheduled {
                    time,
                    seq: self.seq,
                    ev,
                };
                self.seq += 1;
                s
            })
            .collect();
        self.primed.sort_unstable_by_key(|s| (s.time, s.seq));
    }

    /// Schedules `ev` at `time`. Events at equal times fire in insertion
    /// order, which keeps runs reproducible.
    pub fn push(&mut self, time: Micros, ev: Ev) {
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Micros, Ev)> {
        if let Some(p) = self.primed.get(self.cursor) {
            // Primed seqs are smaller than every runtime seq, so the
            // calendar wins equal-time ties against the heap.
            if self.heap.peek().is_none_or(|h| p.time <= h.time) {
                self.cursor += 1;
                return Some((p.time, p.ev));
            }
        }
        self.heap.pop().map(|s| (s.time, s.ev))
    }

    /// The earliest scheduled time, without popping.
    pub fn peek_time(&self) -> Option<Micros> {
        let p = self.primed.get(self.cursor).map(|s| s.time);
        let h = self.heap.peek().map(|s| s.time);
        match (p, h) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + (self.primed.len() - self.cursor)
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(Micros::from_secs(5), Ev::UsageTick);
        q.push(Micros::from_secs(1), Ev::Dispatch);
        q.push(Micros::from_secs(3), Ev::BatchTick);
        assert_eq!(q.pop().unwrap().0, Micros::from_secs(1));
        assert_eq!(q.pop().unwrap().0, Micros::from_secs(3));
        assert_eq!(q.pop().unwrap().0, Micros::from_secs(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(Micros::from_secs(1), Ev::JobSubmit { job: 1 });
        q.push(Micros::from_secs(1), Ev::JobSubmit { job: 2 });
        q.push(Micros::from_secs(1), Ev::JobSubmit { job: 3 });
        let order: Vec<Ev> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Ev::JobSubmit { job: 1 },
                Ev::JobSubmit { job: 2 },
                Ev::JobSubmit { job: 3 }
            ]
        );
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Micros::ZERO, Ev::RetryTick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn primed_calendar_merges_like_the_heap() {
        // Reference: everything pushed through the heap, primed first.
        let events = [
            (Micros::from_secs(4), Ev::JobSubmit { job: 0 }),
            (Micros::from_secs(1), Ev::JobSubmit { job: 1 }),
            (Micros::from_secs(4), Ev::JobSubmit { job: 2 }),
            (Micros::from_secs(9), Ev::UsageTick),
        ];
        let runtime = [
            (Micros::from_secs(4), Ev::Dispatch), // ties lose to primed
            (Micros::from_secs(2), Ev::RetryTick),
            (Micros::from_secs(9), Ev::BatchTick),
        ];
        let mut reference = EventQueue::new();
        for &(t, e) in &events {
            reference.push(t, e);
        }
        let mut primed = EventQueue::new();
        primed.prime(events);
        for q in [&mut reference, &mut primed] {
            for &(t, e) in &runtime {
                q.push(t, e);
            }
        }
        loop {
            assert_eq!(reference.peek_time(), primed.peek_time());
            assert_eq!(reference.len(), primed.len());
            let (a, b) = (reference.pop(), primed.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_time_sees_both_sources() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.prime([(Micros::from_secs(5), Ev::UsageTick)]);
        assert_eq!(q.peek_time(), Some(Micros::from_secs(5)));
        q.push(Micros::from_secs(3), Ev::Dispatch);
        assert_eq!(q.peek_time(), Some(Micros::from_secs(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Micros::from_secs(5)));
    }

    #[test]
    #[should_panic(expected = "first operation")]
    fn priming_twice_panics() {
        let mut q = EventQueue::new();
        q.prime([(Micros::ZERO, Ev::RetryTick)]);
        q.prime([(Micros::ZERO, Ev::RetryTick)]);
    }
}
