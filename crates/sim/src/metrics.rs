//! Pre-aggregated simulation metrics.
//!
//! A month of a real cell produces billions of usage samples; the paper's
//! analyses reduce them to hourly tier aggregates (Figures 2–5), one
//! machine-utilization snapshot (Figure 6), slack samples (Figure 14),
//! submission-rate series (Figures 8–9), scheduling delays (Figure 10),
//! and transition counts (Figure 7). [`SimMetrics`] accumulates exactly
//! those reductions online, so the simulator never has to materialize the
//! full usage table.

use borg_analysis::timeseries::HourBuckets;
use borg_trace::collection::VerticalScalingMode;
use borg_trace::priority::Tier;
use borg_trace::resources::Resources;
use borg_trace::state::TransitionCounts;
use borg_trace::time::{Micros, MICROS_PER_HOUR};
use std::collections::BTreeMap;

/// One scheduling-delay observation (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySample {
    /// The job's reporting tier.
    pub tier: Tier,
    /// Seconds from ready (post-batch-queue) to first task running.
    pub delay_secs: f64,
}

/// One peak-slack observation (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackSample {
    /// Autopilot mode of the owning job.
    pub mode: VerticalScalingMode,
    /// Peak NCU slack in `[0, 1]`.
    pub slack: f64,
}

/// A machine's utilization in the Figure 6 snapshot window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSnapshot {
    /// CPU usage ÷ capacity.
    pub cpu_utilization: f64,
    /// Memory usage ÷ capacity.
    pub mem_utilization: f64,
}

/// Per-tier hourly usage and allocation series.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSeries {
    /// CPU usage (NCU·time per bucket).
    pub usage_cpu: HourBuckets,
    /// Memory usage.
    pub usage_mem: HourBuckets,
    /// CPU allocation (requested limits of running instances).
    pub alloc_cpu: HourBuckets,
    /// Memory allocation.
    pub alloc_mem: HourBuckets,
}

impl TierSeries {
    fn new(horizon: Micros) -> TierSeries {
        let w = MICROS_PER_HOUR;
        TierSeries {
            usage_cpu: HourBuckets::new(w, horizon.as_micros()),
            usage_mem: HourBuckets::new(w, horizon.as_micros()),
            alloc_cpu: HourBuckets::new(w, horizon.as_micros()),
            alloc_mem: HourBuckets::new(w, horizon.as_micros()),
        }
    }
}

/// Aggregate statistics of average usage ÷ limit, split by alloc-set
/// membership (§5.1: 73% vs 41% memory utilization).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FillStats {
    /// Sum of memory usage/limit ratios.
    pub mem_ratio_sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl FillStats {
    /// Adds one observation.
    pub fn push(&mut self, ratio: f64) {
        if ratio.is_finite() {
            self.mem_ratio_sum += ratio;
            self.count += 1;
        }
    }

    /// Mean ratio.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mem_ratio_sum / self.count as f64
        }
    }
}

/// All metric accumulators for one simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Cell name.
    pub cell_name: String,
    /// Observation window.
    pub horizon: Micros,
    /// Total cell capacity.
    pub capacity: Resources,
    /// Per-tier hourly usage/allocation (Figures 2–5).
    pub tiers: BTreeMap<Tier, TierSeries>,
    /// Job submissions per hour (Figure 8).
    pub job_submissions: HourBuckets,
    /// First-time task submissions per hour (Figure 9, "new tasks").
    pub new_task_submissions: HourBuckets,
    /// All task submissions per hour including resubmissions (Figure 9,
    /// "all tasks").
    pub all_task_submissions: HourBuckets,
    /// Scheduling delays (Figure 10).
    pub delays: Vec<DelaySample>,
    /// Peak-slack samples (Figure 14), bounded reservoir.
    pub slack: Vec<SlackSample>,
    /// Collection state transitions (Figure 7).
    pub collection_transitions: TransitionCounts,
    /// Instance state transitions (Figure 7).
    pub instance_transitions: TransitionCounts,
    /// Per-machine utilization at the snapshot window (Figure 6).
    pub machine_snapshots: Vec<MachineSnapshot>,
    /// Memory fill of tasks inside alloc sets (§5.1).
    pub fill_in_alloc: FillStats,
    /// Memory fill of tasks outside alloc sets (§5.1).
    pub fill_outside_alloc: FillStats,
    /// Count of evictions per collection index (for §5.2 statistics).
    pub evictions_by_collection: BTreeMap<u64, u64>,
    /// Total task-placement attempts that required preemption.
    pub preemptions: u64,
    /// Placement attempts that found no machine (stalled), by tier.
    pub stalls_by_tier: BTreeMap<Tier, u64>,
    /// Evictions by cause ("maintenance", "overcommit", "preemption",
    /// "alloc_teardown").
    pub evictions_by_cause: BTreeMap<&'static str, u64>,
    /// Alloc-set reserved CPU·hours (for the §5.1 20%-of-allocation stat).
    pub alloc_set_cpu_hours: f64,
    /// Alloc-set reserved memory·hours.
    pub alloc_set_mem_hours: f64,
    /// Injected machine failures (zero unless fault injection is on).
    pub machine_failures: u64,
    /// Machine repairs completed within the horizon.
    pub machine_repairs: u64,
    /// Tasks that vanished (`Lost`) with their machine and were never
    /// resubmitted.
    pub tasks_lost: u64,
    /// Placement-index hit/miss/scan counters (zero when the index is
    /// disabled).
    pub index: crate::index::IndexStats,
}

/// Cap on stored slack samples (reservoir; deterministic thinning).
const MAX_SLACK_SAMPLES: usize = 400_000;

impl SimMetrics {
    /// Fresh accumulators for a cell.
    pub fn new(
        cell_name: &str,
        horizon: Micros,
        capacity: Resources,
        tiers: &[Tier],
    ) -> SimMetrics {
        SimMetrics {
            cell_name: cell_name.to_string(),
            horizon,
            capacity,
            tiers: tiers
                .iter()
                .map(|&t| (t, TierSeries::new(horizon)))
                .collect(),
            job_submissions: HourBuckets::new(MICROS_PER_HOUR, horizon.as_micros()),
            new_task_submissions: HourBuckets::new(MICROS_PER_HOUR, horizon.as_micros()),
            all_task_submissions: HourBuckets::new(MICROS_PER_HOUR, horizon.as_micros()),
            delays: Vec::new(),
            slack: Vec::new(),
            collection_transitions: TransitionCounts::new(),
            instance_transitions: TransitionCounts::new(),
            machine_snapshots: Vec::new(),
            fill_in_alloc: FillStats::default(),
            fill_outside_alloc: FillStats::default(),
            evictions_by_collection: BTreeMap::new(),
            preemptions: 0,
            stalls_by_tier: BTreeMap::new(),
            evictions_by_cause: BTreeMap::new(),
            alloc_set_cpu_hours: 0.0,
            alloc_set_mem_hours: 0.0,
            machine_failures: 0,
            machine_repairs: 0,
            tasks_lost: 0,
            index: crate::index::IndexStats::default(),
        }
    }

    /// Records a usage contribution for a tier over a window.
    pub fn add_usage(&mut self, tier: Tier, start: Micros, end: Micros, usage: Resources) {
        let t = tier_key(tier);
        if let Some(series) = self.tiers.get_mut(&t) {
            HourBuckets::add_interval_pair(
                &mut series.usage_cpu,
                &mut series.usage_mem,
                start.as_micros(),
                end.as_micros(),
                usage.cpu,
                usage.mem,
            );
        }
    }

    /// Records an allocation (limit) contribution for a tier over an
    /// occupancy interval.
    pub fn add_allocation(&mut self, tier: Tier, start: Micros, end: Micros, request: Resources) {
        let t = tier_key(tier);
        if let Some(series) = self.tiers.get_mut(&t) {
            HourBuckets::add_interval_pair(
                &mut series.alloc_cpu,
                &mut series.alloc_mem,
                start.as_micros(),
                end.as_micros(),
                request.cpu,
                request.mem,
            );
        }
    }

    /// Records a slack sample, thinning deterministically once full.
    pub fn add_slack(&mut self, mode: VerticalScalingMode, slack: f64, tick: u64) {
        if self.slack.len() >= MAX_SLACK_SAMPLES {
            // Deterministic 1-in-16 thinning keyed on the tick.
            if !tick.is_multiple_of(16) {
                return;
            }
            let idx = (tick as usize * 2654435761) % MAX_SLACK_SAMPLES;
            self.slack[idx] = SlackSample { mode, slack };
        } else {
            self.slack.push(SlackSample { mode, slack });
        }
    }

    /// The average utilization (fraction of capacity) per tier for CPU —
    /// the Figure 3 bars.
    pub fn average_cpu_util_by_tier(&self) -> BTreeMap<Tier, f64> {
        self.tiers
            .iter()
            .map(|(&t, s)| (t, s.usage_cpu.overall_average_rate() / self.capacity.cpu))
            .collect()
    }

    /// The average allocation (fraction of capacity) per tier for CPU —
    /// the Figure 5 bars.
    pub fn average_cpu_alloc_by_tier(&self) -> BTreeMap<Tier, f64> {
        self.tiers
            .iter()
            .map(|(&t, s)| (t, s.alloc_cpu.overall_average_rate() / self.capacity.cpu))
            .collect()
    }
}

impl SimMetrics {
    /// An "explainable scheduling" report (research direction #1 of §10):
    /// a human-readable account of what the scheduler did and why work
    /// waited — placements, stalls per tier, evictions per cause, and
    /// preemptions.
    pub fn explain_scheduling(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let placements = self.instance_transitions.get(
            Some(crate::metrics::schedule_from()),
            borg_trace::state::EventType::Schedule,
        );
        writeln!(out, "scheduling report for cell {}", self.cell_name).ok();
        writeln!(out, "  placements: {placements}").ok();
        writeln!(
            out,
            "  preemptions by production work: {}",
            self.preemptions
        )
        .ok();
        if self.stalls_by_tier.is_empty() {
            writeln!(out, "  no placement attempt ever failed").ok();
        } else {
            writeln!(
                out,
                "  failed placement attempts (cell full for that request):"
            )
            .ok();
            for (tier, n) in &self.stalls_by_tier {
                writeln!(out, "    {tier:>5}: {n}").ok();
            }
        }
        if self.evictions_by_cause.is_empty() {
            writeln!(out, "  no evictions").ok();
        } else {
            writeln!(out, "  evictions by cause:").ok();
            for (cause, n) in &self.evictions_by_cause {
                writeln!(out, "    {cause:>14}: {n}").ok();
            }
        }
        let affected = self.evictions_by_collection.len();
        writeln!(out, "  collections touched by eviction: {affected}").ok();
        if self.machine_failures > 0 {
            writeln!(
                out,
                "  machine failures: {} ({} repaired in-window, {} tasks lost)",
                self.machine_failures, self.machine_repairs, self.tasks_lost
            )
            .ok();
        }
        let ix = &self.index;
        let answered = ix.cache_hits + ix.negative_hits + ix.cache_misses;
        if answered > 0 {
            writeln!(
                out,
                "  placement index: {} hits / {} negative hits / {} misses \
                 ({} machines scored, {} preemption probes)",
                ix.cache_hits,
                ix.negative_hits,
                ix.cache_misses,
                ix.leaves_scanned,
                ix.preempt_probes
            )
            .ok();
        }
        out
    }
}

/// The pending state (placements originate from it).
fn schedule_from() -> borg_trace::state::InstanceState {
    borg_trace::state::InstanceState::Pending
}

/// Monitoring folds into production for reporting (§2).
pub fn tier_key(tier: Tier) -> Tier {
    if tier == Tier::Monitoring {
        Tier::Production
    } else {
        tier
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn metrics() -> SimMetrics {
        SimMetrics::new(
            "t",
            Micros::from_hours(2),
            Resources::new(10.0, 10.0),
            &Tier::REPORTING,
        )
    }

    #[test]
    fn usage_accumulates_per_tier() {
        let mut m = metrics();
        m.add_usage(
            Tier::Production,
            Micros::ZERO,
            Micros::from_hours(2),
            Resources::new(5.0, 2.0),
        );
        let util = m.average_cpu_util_by_tier();
        assert!((util[&Tier::Production] - 0.5).abs() < 1e-12);
        assert_eq!(util[&Tier::Free], 0.0);
    }

    #[test]
    fn monitoring_folds_into_production() {
        let mut m = metrics();
        m.add_usage(
            Tier::Monitoring,
            Micros::ZERO,
            Micros::from_hours(2),
            Resources::new(1.0, 1.0),
        );
        assert!(m.average_cpu_util_by_tier()[&Tier::Production] > 0.0);
    }

    #[test]
    fn allocation_separate_from_usage() {
        let mut m = metrics();
        m.add_allocation(
            Tier::BestEffortBatch,
            Micros::ZERO,
            Micros::from_hours(1),
            Resources::new(4.0, 4.0),
        );
        let alloc = m.average_cpu_alloc_by_tier();
        // 4 NCU for 1 of 2 hours = 2 NCU average = 0.2 of capacity.
        assert!((alloc[&Tier::BestEffortBatch] - 0.2).abs() < 1e-12);
        assert_eq!(m.average_cpu_util_by_tier()[&Tier::BestEffortBatch], 0.0);
    }

    #[test]
    fn slack_reservoir_bounded() {
        let mut m = metrics();
        for i in 0..(MAX_SLACK_SAMPLES as u64 + 1000) {
            m.add_slack(VerticalScalingMode::Full, 0.5, i);
        }
        assert!(m.slack.len() <= MAX_SLACK_SAMPLES);
    }

    #[test]
    fn fill_stats_mean() {
        let mut f = FillStats::default();
        f.push(0.4);
        f.push(0.8);
        f.push(f64::NAN);
        assert!((f.mean() - 0.6).abs() < 1e-12);
        assert_eq!(FillStats::default().mean(), 0.0);
    }
}
