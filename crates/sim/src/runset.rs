//! The running-task set as a dense bitmap.
//!
//! Every task gets a global id at workload load: ids are contiguous per
//! job, assigned in job order, so ascending id *is* ascending
//! `(job, task)` — the iteration order the usage tick, finalize, and the
//! legacy reference walk all rely on. Membership updates are single bit
//! operations (the event loop starts/stops a task far more often than a
//! tick iterates), and iteration walks words between two hint indices
//! that track the live span, so long-dead id prefixes cost nothing
//! (DESIGN.md §13).

/// Set of running `(job, task)` pairs over a fixed job/task universe.
///
/// Replaces an ordered set: `collect_into` yields exactly the sequence
/// `BTreeSet<(usize, usize)>` iteration would, bit for bit.
#[derive(Debug, Default)]
pub struct RunningSet {
    /// One bit per global task id; set while the task is running.
    words: Vec<u64>,
    /// First global id of each job's tasks: `id = base[job] + task`.
    base: Vec<u32>,
    /// `(job, task)` for each global id — the inverse of `base`.
    pairs: Vec<(u32, u32)>,
    /// Every set bit lies in `words[lo..hi]`. `lo` advances lazily as
    /// the oldest jobs drain; both snap back if an old task restarts.
    lo: usize,
    hi: usize,
    len: usize,
}

impl RunningSet {
    /// Builds the (empty) set over a universe of jobs given each job's
    /// task count, in job order.
    pub fn new(task_counts: impl Iterator<Item = usize>) -> RunningSet {
        let mut base = Vec::new();
        let mut pairs = Vec::new();
        for (job, n) in task_counts.enumerate() {
            // lint: library-panic-ok (a >4-billion-task workload is unrepresentable elsewhere in the sim) unwind-across-pool-ok (same bound holds per worker cell, so no worker unwind)
            base.push(u32::try_from(pairs.len()).expect("task-id space fits u32"));
            for t in 0..n {
                pairs.push((job as u32, t as u32));
            }
        }
        RunningSet {
            words: vec![0u64; pairs.len().div_ceil(64)],
            base,
            pairs,
            lo: 0,
            hi: 0,
            len: 0,
        }
    }

    #[inline]
    fn slot(&self, job: usize, task: usize) -> (usize, u64) {
        let id = self.base[job] as usize + task;
        (id / 64, 1u64 << (id % 64))
    }

    /// Marks a task running. Idempotent, like the set it replaces.
    #[inline]
    pub fn insert(&mut self, job: usize, task: usize) {
        let (w, bit) = self.slot(job, task);
        let word = &mut self.words[w];
        self.len += usize::from(*word & bit == 0);
        *word |= bit;
        // A restarted task of an old (or not-yet-seen-running) job can
        // land outside the current live span; widen to cover it.
        self.lo = self.lo.min(w);
        self.hi = self.hi.max(w + 1);
    }

    /// Marks a task stopped. Removing an absent task is a no-op.
    #[inline]
    pub fn remove(&mut self, job: usize, task: usize) {
        let (w, bit) = self.slot(job, task);
        self.len -= usize::from(self.words[w] & bit != 0);
        self.words[w] &= !bit;
    }

    /// Number of running tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no task is running.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends every running pair to `out` in ascending `(job, task)`
    /// order (ids are dense in job-then-task order, so ascending id is
    /// that order). Trims the live-span hints past drained edge words on
    /// the way — the reason this takes `&mut self`.
    pub fn collect_into(&mut self, out: &mut Vec<(usize, usize)>) {
        while self.lo < self.hi && self.words[self.lo] == 0 {
            self.lo += 1;
        }
        while self.hi > self.lo && self.words[self.hi - 1] == 0 {
            self.hi -= 1;
        }
        out.reserve(self.len);
        for w in self.lo..self.hi {
            let mut bits = self.words[w];
            while bits != 0 {
                let id = w * 64 + bits.trailing_zeros() as usize;
                let (j, t) = self.pairs[id];
                out.push((j as usize, t as usize));
                bits &= bits - 1;
            }
        }
    }

    /// The running pairs as a fresh sorted vector.
    pub fn to_vec(&mut self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_workload::usage_model::splitmix64;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_len() {
        let mut s = RunningSet::new([3, 2, 4].into_iter());
        assert!(s.is_empty());
        s.insert(1, 0);
        s.insert(0, 2);
        s.insert(1, 0); // idempotent
        assert_eq!(s.len(), 2);
        s.remove(2, 3); // absent: no-op
        assert_eq!(s.len(), 2);
        s.remove(1, 0);
        assert_eq!(s.to_vec(), vec![(0, 2)]);
    }

    #[test]
    fn iteration_is_job_then_task_order() {
        let mut s = RunningSet::new([2, 1, 3].into_iter());
        for (j, t) in [(2, 2), (0, 1), (1, 0), (2, 0), (0, 0)] {
            s.insert(j, t);
        }
        assert_eq!(s.to_vec(), vec![(0, 0), (0, 1), (1, 0), (2, 0), (2, 2)]);
    }

    #[test]
    fn empty_jobs_and_empty_universe() {
        let mut s = RunningSet::new([0, 0, 2, 0].into_iter());
        s.insert(2, 1);
        assert_eq!(s.to_vec(), vec![(2, 1)]);
        let mut none = RunningSet::new(std::iter::empty());
        assert!(none.to_vec().is_empty());
    }

    /// Random churn against the ordered set the bitmap replaced: every
    /// snapshot must match `BTreeSet` iteration exactly, including after
    /// the live-span hints have advanced and an old task restarts.
    #[test]
    fn matches_btreeset_under_churn() {
        const JOBS: usize = 40;
        for seed in 0..8u64 {
            let counts: Vec<usize> = (0..JOBS)
                .map(|j| (splitmix64(seed ^ j as u64) % 7) as usize)
                .collect();
            let mut real = RunningSet::new(counts.iter().copied());
            let mut model: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut draw = move || {
                state = splitmix64(state);
                state
            };
            for step in 0..2000 {
                let j = (draw() as usize) % JOBS;
                if counts[j] == 0 {
                    continue;
                }
                let t = (draw() as usize) % counts[j];
                match draw() % 3 {
                    0 => {
                        real.insert(j, t);
                        model.insert((j, t));
                    }
                    1 => {
                        real.remove(j, t);
                        model.remove(&(j, t));
                    }
                    _ => {
                        assert_eq!(real.len(), model.len(), "seed {seed}, step {step}");
                        assert_eq!(
                            real.to_vec(),
                            model.iter().copied().collect::<Vec<_>>(),
                            "seed {seed}, step {step}: iteration diverges"
                        );
                    }
                }
            }
            assert_eq!(real.to_vec(), model.into_iter().collect::<Vec<_>>());
        }
    }
}
