//! A tiny deterministic multiply-xor hasher for the simulator's interior
//! hash tables.
//!
//! The hot paths key tables by small integers ((job, task) pairs, machine
//! slots, request-shape bits). std's default `RandomState` pays SipHash
//! prices for DoS resistance the simulator does not need, and seeds
//! per-instance, which makes iteration order differ between two tables
//! holding identical keys. This hasher is fast and fixed-seeded.
//!
//! Iteration order over these maps is still arbitrary (it depends on
//! capacity growth history), so simulation state must never be derived
//! from unsorted iteration — the same rule as for std's tables.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the deterministic [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Snapshot of a hash set's elements in sorted order — the blessed way
/// (borg-lint rule D1) to iterate an [`FxHashSet`] when anything
/// order-sensitive is derived from the traversal.
pub fn sorted_set<T: Ord + Copy>(set: &FxHashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Snapshot of a hash map's entries in key-sorted order — the blessed
/// way (borg-lint rule D1) to iterate an [`FxHashMap`] when anything
/// order-sensitive is derived from the traversal.
pub fn sorted_entries<K: Ord + Copy, V: Clone>(map: &FxHashMap<K, V>) -> Vec<(K, V)> {
    let mut v: Vec<(K, V)> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
    v.sort_unstable_by_key(|e| e.0);
    v
}

/// Multiplier from FxHash (Firefox's hasher): odd, high bit entropy.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher; see module docs.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<(usize, usize), u32> = FxHashMap::default();
        m.insert((3, 4), 7);
        assert_eq!(m.get(&(3, 4)), Some(&7));
    }
}
