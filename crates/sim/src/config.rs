//! Simulation configuration and scaling.

use borg_trace::time::{Micros, MICROS_PER_HOUR, MICROS_PER_MINUTE};

/// Configuration of one cell simulation.
///
/// The `scale` knob shrinks both the machine fleet and the arrival rate by
/// the same factor, so per-machine load, utilization fractions, and
/// distribution shapes are preserved while a month of a 12k-machine cell
/// becomes laptop-sized. Scaled quantities are reported alongside results
/// in EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Fraction of the profile's full-scale machine count and job rate to
    /// simulate (e.g. 0.005 → 60 machines).
    pub scale: f64,
    /// Observation window (the real traces cover a month).
    pub horizon: Micros,
    /// Usage-sampling interval (the trace uses 5 minutes; hourly keeps
    /// monthly simulations cheap and is sufficient for Figures 2–5).
    pub usage_interval: Micros,
    /// Cap on tasks per job (see `borg_workload::jobgen::GenParams`).
    pub task_cap: Option<u32>,
    /// Keep roughly one raw usage record in `keep_usage_every` (1 = all);
    /// aggregated metrics always see every sample.
    pub keep_usage_every: u64,
    /// The 5-minute window (by start time) at which to snapshot per-machine
    /// utilization for Figure 6; defaults to day 15, 13:00.
    pub snapshot_at: Micros,
    /// Mean scheduler decision time per task, in microseconds (the Borg
    /// scheduler takes O(seconds) per job; Figure 10's delays are seconds).
    pub mean_decision_micros: u64,
    /// Per-machine maintenance sweeps per 30 days (§5.2: "a forced OS
    /// upgrade about 1/month per machine").
    pub maintenance_per_month: f64,
    /// Ablation: divide the scheduler's decision time by this factor for
    /// consecutive placements of the same job (Borg's equivalence-class
    /// caching). 1.0 disables the optimization.
    pub equivalence_class_speedup: f64,
    /// Ablation: disable the batch-admission queue — best-effort batch
    /// jobs go straight to the regular scheduler.
    pub disable_batch_queue: bool,
    /// Ablation: force every job's vertical-scaling mode to `Off`
    /// (pre-Autopilot Borg).
    pub disable_autopilot: bool,
    /// Extension (research direction #3 of §10): gang scheduling — a
    /// job's tasks start only when the whole job fits, placed atomically.
    /// Borg itself starts a job as soon as *any* task runs.
    pub gang_scheduling: bool,
    /// Route placements through the feasibility-tree + score-cache index
    /// (`crate::index`). In exact mode (`candidate_cap == None`) the
    /// index is bit-identical to the naive full scan; `false` keeps the
    /// O(machines) reference scan, for baselines and equivalence tests.
    pub use_placement_index: bool,
    /// Relaxed randomization (Borg's production scheduler, Verma et al.
    /// §3.4): stop each best-fit search after this many feasible
    /// candidates, probed in a seeded-deterministic order. `None` (the
    /// default) keeps the exact best-fit. Requires
    /// `use_placement_index`; *not* bit-identical to the exact scan.
    pub candidate_cap: Option<usize>,
    /// Reference mode: run the *seed* event loop — one `Dispatch` heap
    /// round-trip per placement and the allocating usage-tick walk —
    /// instead of the batched dispatch cursor and scratch-buffer tick.
    /// Bit-identical to the default (`false`) batched loop; kept as the
    /// reference arm for `crates/sim/tests/loop_equivalence.rs`, exactly
    /// as `use_placement_index = false` keeps the naive placement scan.
    pub legacy_event_loop: bool,
    /// Machine-failure injection (`None` disables fault injection
    /// entirely and is bit-identical to a build without it). See
    /// [`crate::faults::FaultConfig`].
    pub faults: Option<crate::faults::FaultConfig>,
    /// Record telemetry (per-event-kind counters/timings, phase spans,
    /// metrics export) into `CellOutcome::telemetry`. Off by default:
    /// disabled telemetry is a single branch per event and produces an
    /// empty snapshot. Telemetry never influences simulation results —
    /// traces are bit-identical either way (see DESIGN.md §12).
    pub telemetry: bool,
    /// Number of placement-index shards (`crate::shard`): the fleet is
    /// split into this many contiguous ranges, probed in parallel and
    /// combined deterministically — bit-identical to one index for any
    /// value (DESIGN.md §14). `None` (the default) auto-sizes from
    /// available parallelism and fleet size; `Some(1)` forces the
    /// single-index path. Ignored (forced to 1) when `candidate_cap`
    /// is set or the placement index is off.
    pub placement_shards: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

/// Auto-sharding floor: below this many machines per shard the per-probe
/// fan-out overhead outweighs the scan it parallelizes, so auto-sizing
/// never splits finer than this (an explicit `placement_shards` still
/// can, for equivalence tests).
pub const MIN_MACHINES_PER_SHARD: usize = 512;

impl SimConfig {
    /// A laptop-scale month: 0.5% of a cell (≈ 60 machines) for 31 days.
    pub fn month(seed: u64) -> SimConfig {
        SimConfig {
            scale: 0.005,
            horizon: Micros::from_days(31),
            usage_interval: Micros::from_hours(1),
            task_cap: Some(500),
            keep_usage_every: 101,
            snapshot_at: Micros::from_days(15) + Micros::from_hours(13),
            mean_decision_micros: 400_000,
            maintenance_per_month: 1.0,
            equivalence_class_speedup: 20.0,
            disable_batch_queue: false,
            disable_autopilot: false,
            gang_scheduling: false,
            use_placement_index: true,
            candidate_cap: None,
            legacy_event_loop: false,
            faults: None,
            telemetry: false,
            placement_shards: None,
            seed,
        }
    }

    /// A fast configuration for unit and integration tests: ~25 machines,
    /// 2 days.
    pub fn tiny_for_tests(seed: u64) -> SimConfig {
        SimConfig {
            scale: 0.002,
            horizon: Micros::from_days(2),
            usage_interval: Micros::from_minutes(30),
            task_cap: Some(100),
            keep_usage_every: 11,
            snapshot_at: Micros::from_days(1),
            mean_decision_micros: 400_000,
            maintenance_per_month: 1.0,
            equivalence_class_speedup: 20.0,
            disable_batch_queue: false,
            disable_autopilot: false,
            gang_scheduling: false,
            use_placement_index: true,
            candidate_cap: None,
            legacy_event_loop: false,
            faults: None,
            telemetry: false,
            placement_shards: None,
            seed,
        }
    }

    /// The shard count the cell will actually use for a fleet of
    /// `machines`: 1 whenever sharding cannot apply (no placement index,
    /// or bounded mode — its seeded probe permutation spans the whole
    /// fleet), the explicit `placement_shards` clamped to the fleet, or
    /// an auto size of `min(available cores, fleet / 512)` so small
    /// fleets and single-core hosts stay on the untouched K=1 path.
    pub fn effective_shards(&self, machines: usize) -> usize {
        if !self.use_placement_index || self.candidate_cap.is_some() {
            return 1;
        }
        let k = self.placement_shards.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map_or(1, usize::from);
            cores.min(machines / MIN_MACHINES_PER_SHARD)
        });
        k.clamp(1, machines.max(1))
    }

    /// Number of machines to simulate for a profile.
    pub fn machine_count(&self, profile: &borg_workload::cells::CellProfile) -> usize {
        ((profile.machine_count as f64 * self.scale).round() as usize).max(4)
    }

    /// Scaled job arrival rate for a profile.
    pub fn job_rate(&self, profile: &borg_workload::cells::CellProfile) -> f64 {
        (profile.job_rate_per_hour * self.scale).max(0.5)
    }

    /// The usage-interval-aligned snapshot window start.
    pub fn snapshot_window(&self) -> Micros {
        Micros(
            self.snapshot_at.as_micros() / self.usage_interval.as_micros().max(1)
                * self.usage_interval.as_micros(),
        )
    }

    /// Mean time between maintenance sweeps for one machine.
    pub fn maintenance_interval(&self) -> Micros {
        let hours = 30.0 * 24.0 / self.maintenance_per_month.max(1e-6);
        Micros((hours * MICROS_PER_HOUR as f64) as u64)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values; configurations are programming
    /// artifacts, not runtime data.
    pub fn validate(&self) {
        assert!(self.scale > 0.0 && self.scale <= 1.0, "scale in (0, 1]");
        assert!(self.horizon >= Micros::from_hours(1), "horizon too short");
        assert!(
            self.usage_interval >= Micros(5 * MICROS_PER_MINUTE),
            "usage interval below trace resolution"
        );
        assert!(self.keep_usage_every >= 1, "keep_usage_every >= 1");
        assert!(
            self.mean_decision_micros > 0,
            "decision time must be positive"
        );
        assert!(
            self.equivalence_class_speedup >= 1.0,
            "equivalence-class speedup must be >= 1"
        );
        if let Some(cap) = self.candidate_cap {
            assert!(cap >= 1, "candidate cap must be >= 1");
            assert!(
                self.use_placement_index,
                "candidate_cap requires the placement index"
            );
            assert!(
                self.placement_shards.is_none_or(|k| k == 1),
                "candidate_cap requires placement_shards = 1: the bounded \
                 probe permutation spans the whole fleet"
            );
        }
        if let Some(k) = self.placement_shards {
            assert!(k >= 1, "placement_shards must be >= 1");
        }
        if let Some(f) = &self.faults {
            f.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_workload::cells::CellProfile;

    #[test]
    fn presets_validate() {
        SimConfig::month(1).validate();
        SimConfig::tiny_for_tests(1).validate();
    }

    #[test]
    fn scaling() {
        let p = CellProfile::cell_2019('a');
        let cfg = SimConfig::month(1);
        assert_eq!(cfg.machine_count(&p), 60);
        assert!((cfg.job_rate(&p) - 16.8).abs() < 1e-9);
    }

    #[test]
    fn snapshot_aligned_to_interval() {
        let cfg = SimConfig::month(1);
        let w = cfg.snapshot_window();
        assert_eq!(w.as_micros() % cfg.usage_interval.as_micros(), 0);
        assert!(w <= cfg.snapshot_at);
    }

    #[test]
    fn maintenance_interval_monthly() {
        let cfg = SimConfig::month(1);
        assert_eq!(cfg.maintenance_interval(), Micros::from_hours(720));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bad_scale_panics() {
        let mut cfg = SimConfig::month(1);
        cfg.scale = 0.0;
        cfg.validate();
    }

    #[test]
    fn effective_shards_honors_mode_and_clamps() {
        let mut cfg = SimConfig::tiny_for_tests(1);
        // Explicit K wins, clamped to the fleet.
        cfg.placement_shards = Some(4);
        assert_eq!(cfg.effective_shards(10_000), 4);
        assert_eq!(cfg.effective_shards(3), 3);
        assert_eq!(cfg.effective_shards(0), 1);
        // Naive scan and bounded mode force the single-index path.
        cfg.use_placement_index = false;
        assert_eq!(cfg.effective_shards(10_000), 1);
        cfg.use_placement_index = true;
        cfg.candidate_cap = Some(8);
        assert_eq!(cfg.effective_shards(10_000), 1);
        // Auto mode never splits small fleets, whatever the host.
        cfg.candidate_cap = None;
        cfg.placement_shards = None;
        assert_eq!(cfg.effective_shards(MIN_MACHINES_PER_SHARD - 1), 1);
        let auto = cfg.effective_shards(1 << 20);
        assert!(auto >= 1);
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        assert!(auto <= cores);
    }

    #[test]
    #[should_panic(expected = "placement_shards")]
    fn zero_shards_panics() {
        let mut cfg = SimConfig::month(1);
        cfg.placement_shards = Some(0);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "candidate_cap requires placement_shards = 1")]
    fn cap_with_shards_panics() {
        let mut cfg = SimConfig::month(1);
        cfg.candidate_cap = Some(8);
        cfg.placement_shards = Some(4);
        cfg.validate();
    }
}
