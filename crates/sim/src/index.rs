//! The scheduler's placement index: sub-linear best-fit and preemption
//! probes over the machine fleet.
//!
//! The naive Borgmaster loop scans every machine per placement — an
//! O(machines · tasks) wall that caps cell sizes at toys. Borg's
//! production scheduler solved this with score caching, equivalence
//! classes, and relaxed randomization (Verma et al. §3.4); this module
//! implements the same three ideas against the simulator's best-fit
//! policy while keeping the *exact* mode bit-identical to the naive scan:
//!
//! 1. **Equivalence-class score cache** ([`ScoreCache`]): placements are
//!    keyed by (request bits, tier). Each entry memoizes the *top-R
//!    candidate machines* from the last full scan plus a lexicographic
//!    `(score, index)` threshold that every non-candidate provably sits
//!    above. A lookup re-scores only the candidates and the machines
//!    mutated since the entry was written — an O(R + dirty) check that
//!    stays exact (see "Determinism contract" below). Runner-up
//!    candidates mean the common bin-packing pattern — identical tasks
//!    filling the winner until it is full — falls through to the next
//!    candidate instead of forcing a fleet rescan.
//! 2. **Structure-of-arrays scan mirror** ([`Mirror`]): cache misses pay
//!    one flat pass over per-machine `(committed, capacity)` columns
//!    kept in lock-step with every commit/free. The pass performs the
//!    identical float operations as [`Machine::fit_score`], so results
//!    are bit-identical, but touches 32 contiguous bytes per machine
//!    instead of chasing `Machine` structs — and it harvests the top-R
//!    candidate list for the cache in the same pass.
//! 3. **Bounded candidate search**: an opt-in relaxed-randomization mode
//!    (`SimConfig::candidate_cap`) that stops after K feasible machines
//!    in a seeded-deterministic probe order. This mode trades placement
//!    quality for speed and is *not* bit-identical to the exact scan.
//!
//! Preemption probes use a separate **feasibility segment tree**
//! ([`FeasTree`]) over per-subtree maxima of preemption *potential*
//! (headroom plus everything a given tier may evict): the probe descends
//! leftmost-first, pruning subtrees that cannot host the request even
//! after evicting every victim, and runs the exact victim check only at
//! surviving leaves — the same machine the naive `find_map` returns. The
//! tree is maintained lazily: mutations mark leaves dirty and the next
//! probe flushes them, so placement-heavy workloads that never preempt
//! pay almost nothing for it.
//!
//! # Determinism contract
//!
//! In exact mode (the default), every query returns the same machine the
//! naive scan would pick, with the same score bits:
//!
//! - Scores come from the identical float expression as
//!   [`Machine::fit_score`] — same adds, same divides, same `max` — so
//!   results are bit-identical (the mirror columns are exact copies of
//!   `committed`/`capacity`).
//! - The naive loop keeps the first machine (lowest index) among equal
//!   scores; the index selects the lexicographic minimum of
//!   `(score, index)`, which is the same machine.
//! - A cache entry written at epoch `e` stores candidates `C` and a
//!   threshold `T` such that every machine outside `C` was, at `e`,
//!   either infeasible or lexicographically ≥ `T`. On lookup, the index
//!   re-scores `C` plus every machine mutated since `e` ("the tail") and
//!   takes the lex-minimum `M`. Machines outside both sets are untouched
//!   since `e`: still infeasible (tightening never makes a machine
//!   feasible; loosening lands it in the tail), or still ≥ `T`. So if
//!   `M < T`, `M` is the global answer; if nothing fits and `T` covers
//!   the whole fleet (fewer than R machines were feasible at `e`),
//!   "nothing fits" is the global answer. Anything else is a miss and
//!   rescans. The same argument lets the entry be refreshed in place
//!   with the re-scored top-R (the threshold only ever tightens).
//! - Preemption-tree pruning only uses *inflated upper bounds* (a
//!   relative 1e-9 margin) so float non-associativity can never prune a
//!   machine the exact victim check would accept; over-included leaves
//!   are rejected by the exact check and cost nothing but a visit.

use crate::fxhash::FxHashMap;
use crate::machine::{discount, Machine};
use borg_trace::priority::Tier;
use borg_trace::resources::Resources;
use std::collections::VecDeque;

/// Counters exposing how placements were answered (see
/// [`crate::metrics::SimMetrics::index`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Best-fit queries answered from the score cache (including the
    /// O(R + dirty) candidate-revalidation path).
    pub cache_hits: u64,
    /// Cached "no machine fits" answers reused without a rescan.
    pub negative_hits: u64,
    /// Best-fit queries that fell through to a full mirror scan.
    pub cache_misses: u64,
    /// Machines whose exact score was evaluated during mirror scans.
    pub leaves_scanned: u64,
    /// Preemption probes answered via the potential-headroom tree.
    pub preempt_probes: u64,
    /// Bounded (relaxed-randomization) candidate searches.
    pub bounded_probes: u64,
}

/// Inflates a pruning bound so float non-associativity can never exclude
/// a machine the exact leaf check would accept.
fn upper(x: f64) -> f64 {
    x + x.abs() * 1e-9 + 1e-12
}

/// Per-node aggregates: element-wise maxima over the node's machines.
#[derive(Debug, Clone, Copy)]
struct Agg {
    /// Max raw capacity (exact; the `request.fits_in(capacity)` gate).
    cap: Resources,
    /// Max potential headroom for a Production preemptor: headroom plus
    /// all discounted sub-Production, non-alloc occupants (inflated).
    pot_prod: Resources,
    /// Same for a Monitoring preemptor (victims below Monitoring).
    pot_mon: Resources,
}

impl Agg {
    const NEUTRAL: Agg = Agg {
        cap: Resources::ZERO,
        pot_prod: Resources {
            cpu: f64::NEG_INFINITY,
            mem: f64::NEG_INFINITY,
        },
        pot_mon: Resources {
            cpu: f64::NEG_INFINITY,
            mem: f64::NEG_INFINITY,
        },
    };

    fn of(m: &Machine) -> Agg {
        let head = m.headroom();
        let mut pot_prod = head;
        let mut pot_mon = head;
        for o in &m.occupants {
            if o.is_alloc_instance {
                continue;
            }
            let d = o.discounted();
            if o.tier < Tier::Production {
                pot_prod += d;
            }
            if o.tier < Tier::Monitoring {
                pot_mon += d;
            }
        }
        let inflate = |r: Resources| Resources::new(upper(r.cpu), upper(r.mem));
        Agg {
            cap: m.capacity,
            pot_prod: inflate(pot_prod),
            pot_mon: inflate(pot_mon),
        }
    }

    fn merge(a: Agg, b: Agg) -> Agg {
        Agg {
            cap: a.cap.max(&b.cap),
            pot_prod: a.pot_prod.max(&b.pot_prod),
            pot_mon: a.pot_mon.max(&b.pot_mon),
        }
    }

    /// Could some machine under this node host `needed` after preempting
    /// everything below `tier`?
    fn may_preempt(&self, needed: Resources, tier: Tier) -> bool {
        let pot = if tier == Tier::Monitoring {
            &self.pot_mon
        } else {
            &self.pot_prod
        };
        needed.fits_in(pot)
    }
}

/// A power-of-two-padded segment tree of [`Agg`] nodes over the machine
/// index, used by preemption probes.
#[derive(Debug, Clone)]
struct FeasTree {
    /// `nodes[1]` is the root; leaf `i` lives at `size + i`.
    nodes: Vec<Agg>,
    /// Number of leaf slots (power of two).
    size: usize,
    /// Real machine count (leaves beyond this are neutral padding).
    machines: usize,
}

impl FeasTree {
    fn new(machines: &[Machine]) -> FeasTree {
        let size = machines.len().next_power_of_two().max(1);
        let mut nodes = vec![Agg::NEUTRAL; 2 * size];
        for (i, m) in machines.iter().enumerate() {
            nodes[size + i] = Agg::of(m);
        }
        for i in (1..size).rev() {
            nodes[i] = Agg::merge(nodes[2 * i], nodes[2 * i + 1]);
        }
        FeasTree {
            nodes,
            size,
            machines: machines.len(),
        }
    }

    fn update(&mut self, mi: usize, m: &Machine) {
        let mut node = self.size + mi;
        self.nodes[node] = Agg::of(m);
        node /= 2;
        while node >= 1 {
            self.nodes[node] = Agg::merge(self.nodes[2 * node], self.nodes[2 * node + 1]);
            node /= 2;
        }
    }

    /// The lowest machine index whose exact preemption check passes.
    fn first_preemptible<T>(
        &self,
        needed: Resources,
        tier: Tier,
        check: &mut impl FnMut(usize) -> Option<T>,
    ) -> Option<(usize, T)> {
        self.walk_preempt(1, needed, tier, check)
    }

    fn walk_preempt<T>(
        &self,
        node: usize,
        needed: Resources,
        tier: Tier,
        check: &mut impl FnMut(usize) -> Option<T>,
    ) -> Option<(usize, T)> {
        if !self.nodes[node].may_preempt(needed, tier) {
            return None;
        }
        if node >= self.size {
            let mi = node - self.size;
            if mi >= self.machines {
                return None;
            }
            return check(mi).map(|v| (mi, v));
        }
        self.walk_preempt(2 * node, needed, tier, check)
            .or_else(|| self.walk_preempt(2 * node + 1, needed, tier, check))
    }

    /// Every real leaf whose inflated bound admits `needed`, in
    /// ascending machine order — the same pruning as
    /// [`FeasTree::walk_preempt`], but without the exact victim check,
    /// so it needs no access to the `Machine` structs and can run on a
    /// pool worker (see [`crate::shard`]).
    fn collect_preemptible(&self, node: usize, needed: Resources, tier: Tier, out: &mut Vec<u32>) {
        if !self.nodes[node].may_preempt(needed, tier) {
            return;
        }
        if node >= self.size {
            let mi = node - self.size;
            if mi < self.machines {
                out.push(mi as u32);
            }
            return;
        }
        self.collect_preemptible(2 * node, needed, tier, out);
        self.collect_preemptible(2 * node + 1, needed, tier, out);
    }
}

/// Interleaved mirror of each machine's `(committed, capacity)` — one
/// 32-byte row per machine — for flat cache-friendly score scans that
/// are bit-identical to [`Machine::fit_score`].
#[derive(Debug, Clone)]
struct Mirror {
    /// `[committed.cpu, committed.mem, capacity.cpu, capacity.mem]`.
    rows: Vec<[f64; 4]>,
    /// Smallest positive capacity ever seen per dimension (monotone
    /// non-increasing, so bounds derived from it stay conservative).
    min_pos_cap: [f64; 2],
    /// Largest capacity ever seen per dimension (monotone non-decreasing).
    max_cap: [f64; 2],
}

impl Mirror {
    fn row(m: &Machine) -> [f64; 4] {
        [
            m.committed.cpu,
            m.committed.mem,
            m.capacity.cpu,
            m.capacity.mem,
        ]
    }

    fn new(machines: &[Machine]) -> Mirror {
        let mut mirror = Mirror {
            rows: machines.iter().map(Mirror::row).collect(),
            min_pos_cap: [f64::INFINITY; 2],
            max_cap: [0.0; 2],
        };
        for mi in 0..mirror.rows.len() {
            mirror.track_cap_extrema(mi);
        }
        mirror
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn track_cap_extrema(&mut self, mi: usize) {
        let [_, _, cap_cpu, cap_mem] = self.rows[mi];
        for (dim, cap) in [cap_cpu, cap_mem].into_iter().enumerate() {
            if cap > 0.0 && cap < self.min_pos_cap[dim] {
                self.min_pos_cap[dim] = cap;
            }
            if cap > self.max_cap[dim] {
                self.max_cap[dim] = cap;
            }
        }
    }

    fn sync(&mut self, mi: usize, m: &Machine) {
        self.rows[mi] = Mirror::row(m);
        self.track_cap_extrema(mi);
    }

    /// The machine's dominant committed fraction — how full it is,
    /// independent of any request shape. Used by the mutation-log
    /// relevance filter (see [`ScoreCache`]).
    fn fullness(&self, mi: usize) -> f64 {
        let [c_cpu, c_mem, cap_cpu, cap_mem] = self.rows[mi];
        let frac = |v: f64, c: f64| {
            if v <= 0.0 {
                0.0
            } else if c <= 0.0 {
                f64::INFINITY
            } else {
                v / c
            }
        };
        frac(c_cpu, cap_cpu).max(frac(c_mem, cap_mem))
    }

    /// [`Machine::fit_score`] on the mirrored row: the same adds,
    /// comparisons, divides, and `max` in the same order, so the result
    /// bits are identical. `d` must be `discount(request, tier)`.
    #[inline]
    fn eval(&self, mi: usize, request: Resources, d: Resources) -> Option<f64> {
        let [comm_cpu, comm_mem, cap_cpu, cap_mem] = self.rows[mi];
        let after_cpu = comm_cpu + d.cpu;
        let after_mem = comm_mem + d.mem;
        // One predictable branch over the AND of all four feasibility
        // comparisons; the scan's common case (machine too full) leaves
        // through it immediately.
        let feasible = (after_cpu <= cap_cpu)
            & (after_mem <= cap_mem)
            & (request.cpu <= cap_cpu)
            & (request.mem <= cap_mem);
        if !feasible {
            return None;
        }
        let frac = |v: f64, c: f64| {
            if v <= 0.0 {
                0.0
            } else if c <= 0.0 {
                f64::INFINITY
            } else {
                v / c
            }
        };
        Some(1.0 - frac(after_cpu, cap_cpu).max(frac(after_mem, cap_mem)))
    }
}

/// An equivalence class of placement requests: identical request bits at
/// the same tier score identically on every machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ShapeKey {
    cpu_bits: u64,
    mem_bits: u64,
    tier: u8,
}

impl ShapeKey {
    fn of(request: Resources, tier: Tier) -> ShapeKey {
        ShapeKey {
            cpu_bits: request.cpu.to_bits(),
            mem_bits: request.mem.to_bits(),
            tier: tier as u8,
        }
    }
}

/// One machine mutation as the score cache remembers it: which machine,
/// how full it was left, and whether the change could have *increased*
/// feasibility (lower committed or higher capacity in some dimension).
#[derive(Debug, Clone, Copy)]
struct LogRec {
    machine: u32,
    /// Dominant committed fraction right after the mutation (`f32` keeps
    /// the record at 12 bytes; the lossy rounding is covered by the
    /// filter's safety margin).
    fullness: f32,
    loosened: bool,
}

/// A `(score, machine index)` pair under the lexicographic order the
/// naive scan's "keep first among equals" rule induces.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Lex {
    score: f64,
    mi: u32,
}

impl Lex {
    /// Sentinel above every real machine (feasible scores are finite):
    /// a threshold of `MAX` means the candidate list covered every
    /// feasible machine when the entry was written.
    const MAX: Lex = Lex {
        score: f64::INFINITY,
        mi: u32::MAX,
    };

    #[inline]
    // IEEE equality (not total_cmp) is load-bearing: the naive scan ties
    // -0.0 with +0.0 and keeps the lower machine index, and the index must
    // reproduce that ordering bit-for-bit.
    #[allow(clippy::float_cmp)]
    fn lt(self, other: Lex) -> bool {
        self.score < other.score || (self.score == other.score && self.mi < other.mi)
    }
}

/// Candidates kept per cache entry. Large enough to ride out the common
/// fill-the-winner churn between full scans; small enough that a lookup
/// stays cheap.
const R: usize = 8;

/// A memoized best-fit answer: the top-R machines by `(score, index)`
/// at `epoch`, plus the threshold every other machine provably sits
/// at-or-above (see module docs).
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    cands: [u32; R],
    n_cands: u8,
    threshold: Lex,
    /// Global mutation count when this entry was (re)validated.
    epoch: u64,
}

/// Cached shapes before the oldest is evicted (FIFO). Shapes churn with
/// jobs, so precision beyond this is wasted memory.
const MAX_ENTRIES: usize = 4096;

/// Longest mutation tail a lookup will re-score before deciding a full
/// scan is cheaper (the tail dedups by machine, so its cost is bounded
/// by the fleet size anyway). Raising this measures *slower*: the walk
/// itself starts to rival the rescan it replaces.
const MAX_TAIL: usize = 512;

/// Tail length at which a hit also rewrites the entry (advancing its
/// epoch and re-seeding candidates). Refreshing on *every* hit wastes
/// time on hash-table writes; never refreshing lets tails grow until
/// they expire. This amortizes one rewrite per `REFRESH_TAIL` tail
/// records walked.
const REFRESH_TAIL: usize = 8;

/// The top-(R+1) lex-smallest entries seen by a scan: the first R seed a
/// cache entry's candidates, the (R+1)-th is its threshold.
struct TopList {
    arr: [Lex; R + 1],
    len: usize,
}

impl TopList {
    fn new() -> TopList {
        TopList {
            arr: [Lex::MAX; R + 1],
            len: 0,
        }
    }

    #[inline]
    fn insert(&mut self, l: Lex) {
        if self.len == self.arr.len() && !l.lt(self.arr[self.len - 1]) {
            return;
        }
        let mut i = self.len.min(self.arr.len() - 1);
        while i > 0 && l.lt(self.arr[i - 1]) {
            self.arr[i] = self.arr[i - 1];
            i -= 1;
        }
        self.arr[i] = l;
        self.len = (self.len + 1).min(self.arr.len());
    }

    fn first(&self) -> Option<Lex> {
        (self.len > 0).then(|| self.arr[0])
    }
}

/// Best-fit winners memoized per request shape, revalidated against the
/// machines mutated since each entry was written (see module docs for
/// the exactness argument).
#[derive(Debug, Clone)]
struct ScoreCache {
    entries: FxHashMap<ShapeKey, CacheEntry>,
    /// Insertion order of live keys, for FIFO eviction.
    fifo: VecDeque<ShapeKey>,
    /// Machines mutated recently, oldest first.
    log: VecDeque<LogRec>,
    /// Epoch of `log.front()`; `epoch_base + log.len()` is "now".
    epoch_base: u64,
    /// Mutations remembered before entries older than the log give up
    /// on revalidation. Scaled to the fleet so a worst-case tail walk
    /// costs no more than the fleet rescan it replaces.
    log_cap: usize,
    /// Per-machine visit stamps for O(1) tail dedup.
    stamp: Vec<u32>,
    stamp_gen: u32,
    /// Scratch: deduped candidate machine indices.
    scratch: Vec<u32>,
}

impl ScoreCache {
    fn new(fleet: usize) -> ScoreCache {
        ScoreCache {
            entries: FxHashMap::default(),
            fifo: VecDeque::new(),
            log: VecDeque::new(),
            epoch_base: 0,
            log_cap: (4 * fleet).max(256),
            stamp: vec![0; fleet],
            stamp_gen: 0,
            scratch: Vec::new(),
        }
    }

    fn now(&self) -> u64 {
        self.epoch_base + self.log.len() as u64
    }

    fn record(&mut self, machine: usize, fullness: f32, loosened: bool) {
        self.log.push_back(LogRec {
            machine: machine as u32,
            fullness,
            loosened,
        });
        if self.log.len() > self.log_cap {
            self.log.pop_front();
            self.epoch_base += 1;
        }
    }

    /// Tries to answer `key` from the cached candidates. Returns `None`
    /// on a miss; the caller then scans and calls [`ScoreCache::store`].
    fn lookup(
        &mut self,
        key: ShapeKey,
        mirror: &Mirror,
        request: Resources,
        d: Resources,
    ) -> Option<Option<(usize, f64)>> {
        let entry = *self.entries.get(&key)?;
        if entry.epoch < self.epoch_base {
            return None; // Mutation log no longer covers this entry.
        }
        let tail_start = (entry.epoch - self.epoch_base) as usize;
        let tail_len = self.log.len() - tail_start;
        if tail_len > MAX_TAIL {
            return None; // Re-scoring the tail would cost a scan anyway.
        }

        // Candidates ∪ the *relevant* tail, deduped by visit stamp. Most
        // mutations provably cannot affect this entry's answer and are
        // skipped on a single `f32` comparison:
        //
        // - Positive entries (threshold `T`): for any machine,
        //   `score ≥ 1 − fullness − δ̂` where `δ̂` bounds the request's
        //   dominant share on the smallest machine, so a mutation that
        //   left the machine with `fullness ≤ 1 − T − δ̂ − μ` left it
        //   scoring at-or-above `T` (or infeasible) — exactly what the
        //   hit rule needs from non-candidates. Only nearly-full
        //   machines — the potential best-fit winners — get re-scored.
        // - Negative entries ("nothing fits"): only a loosening can
        //   create feasibility, and a machine left with
        //   `fullness > 1 − min_dim(d/max_cap) + μ` provably still
        //   cannot fit the request.
        //
        // The margin `μ` absorbs `f32` rounding of the recorded fullness
        // and the float slop in the bound derivations.
        const MU: f64 = 1e-6;
        let negative = entry.threshold == Lex::MAX;
        let full_cut = if negative {
            let term = |d_dim: f64, cap: f64| if d_dim > 0.0 { d_dim / cap } else { 0.0 };
            1.0 - term(d.cpu, mirror.max_cap[0]).min(term(d.mem, mirror.max_cap[1])) + MU
        } else {
            let delta_hat = (d.cpu / mirror.min_pos_cap[0]).max(d.mem / mirror.min_pos_cap[1]);
            1.0 - entry.threshold.score - delta_hat - MU
        };
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        if self.stamp_gen == 0 {
            self.stamp.fill(0);
            self.stamp_gen = 1;
        }
        self.scratch.clear();
        for &mi in &entry.cands[..entry.n_cands as usize] {
            if self.stamp[mi as usize] != self.stamp_gen {
                self.stamp[mi as usize] = self.stamp_gen;
                self.scratch.push(mi);
            }
        }
        for rec in self.log.range(tail_start..) {
            let relevant = if negative {
                rec.loosened && (rec.fullness as f64) <= full_cut
            } else {
                (rec.fullness as f64) > full_cut
            };
            if !relevant {
                continue;
            }
            let mi = rec.machine;
            if self.stamp[mi as usize] != self.stamp_gen {
                self.stamp[mi as usize] = self.stamp_gen;
                self.scratch.push(mi);
            }
        }

        // Exact current scores for every candidate; lex-min wins.
        let mut top = TopList::new();
        for &mi in &self.scratch {
            if let Some(score) = mirror.eval(mi as usize, request, d) {
                top.insert(Lex { score, mi });
            }
        }
        let best = top.first();

        // Machines outside candidates ∪ tail are unchanged since the
        // entry's epoch: infeasible then (and tightening cannot fix
        // that) or lex ≥ threshold. So a candidate beating the threshold
        // is the global best; and if the threshold covers the fleet,
        // "nothing fits" is global too.
        let hit = match best {
            Some(l) => l.lt(entry.threshold),
            None => entry.threshold == Lex::MAX,
        };
        if !hit {
            return None;
        }

        // Long tails get the entry rewritten in place: re-scored top-R
        // candidates, epoch advanced to now, threshold tightened by the
        // first evicted feasible candidate (if any). The same unchanged-
        // machines argument as above makes the rewrite sound.
        if tail_len >= REFRESH_TAIL {
            let n = top.len.min(R);
            let mut cands = [0u32; R];
            for (slot, l) in cands.iter_mut().zip(&top.arr[..n]) {
                *slot = l.mi;
            }
            let threshold = match (top.len > R).then(|| top.arr[R]) {
                Some(t) if t.lt(entry.threshold) => t,
                _ => entry.threshold,
            };
            let epoch = self.now();
            if let Some(slot) = self.entries.get_mut(&key) {
                *slot = CacheEntry {
                    cands,
                    n_cands: n as u8,
                    threshold,
                    epoch,
                };
            }
        }
        Some(best.map(|l| (l.mi as usize, l.score)))
    }

    /// Installs a freshly scanned answer, evicting the oldest entry once
    /// the table is full.
    fn store(&mut self, key: ShapeKey, top: &TopList) {
        let n = top.len.min(R);
        let mut cands = [0u32; R];
        for (slot, l) in cands.iter_mut().zip(&top.arr[..n]) {
            *slot = l.mi;
        }
        let threshold = if top.len > R { top.arr[R] } else { Lex::MAX };
        let entry = CacheEntry {
            cands,
            n_cands: n as u8,
            threshold,
            epoch: self.now(),
        };
        if !self.entries.contains_key(&key) {
            if self.entries.len() >= MAX_ENTRIES {
                if let Some(old) = self.fifo.pop_front() {
                    self.entries.remove(&old);
                }
            }
            self.fifo.push_back(key);
        }
        self.entries.insert(key, entry);
    }
}

/// The placement index: score cache + scan mirror + preemption tree +
/// bounded probe order. Owned by the cell simulator and kept in
/// lock-step with every [`Machine::add`]/[`Machine::remove`] via
/// [`PlacementIndex::on_machine_changed`].
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    tree: FeasTree,
    /// Machines whose tree leaf is stale; flushed before probes.
    tree_dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    mirror: Mirror,
    cache: ScoreCache,
    /// Seeded pseudo-random machine permutation for bounded search.
    probe_order: Vec<u32>,
    /// Rotating start position within `probe_order`.
    probe_cursor: usize,
    /// Query counters.
    pub stats: IndexStats,
}

impl PlacementIndex {
    /// Builds the index over the initial fleet. `seed` fixes the bounded
    /// mode's probe order (unused in exact mode).
    pub fn new(machines: &[Machine], seed: u64) -> PlacementIndex {
        let mut probe_order: Vec<u32> = (0..machines.len() as u32).collect();
        // Deterministic Fisher–Yates driven by splitmix64.
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            borg_workload::usage_model::splitmix64(state)
        };
        for i in (1..probe_order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            probe_order.swap(i, j);
        }
        PlacementIndex {
            tree: FeasTree::new(machines),
            tree_dirty: vec![false; machines.len()],
            dirty_list: Vec::new(),
            mirror: Mirror::new(machines),
            cache: ScoreCache::new(machines.len()),
            probe_order,
            probe_cursor: 0,
            stats: IndexStats::default(),
        }
    }

    /// Refreshes the index after machine `mi` gained or lost an occupant:
    /// syncs the scan mirror, marks the preemption-tree leaf dirty, and
    /// appends the machine to the cache's mutation log.
    pub fn on_machine_changed(&mut self, mi: usize, m: &Machine) {
        let [old_c_cpu, old_c_mem, old_cap_cpu, old_cap_mem] = self.mirror.rows[mi];
        self.mirror.sync(mi, m);
        let [c_cpu, c_mem, cap_cpu, cap_mem] = self.mirror.rows[mi];
        // Loosened = feasibility could have grown somewhere: committed
        // dropped or capacity rose in at least one dimension.
        let loosened = c_cpu < old_c_cpu
            || c_mem < old_c_mem
            || cap_cpu > old_cap_cpu
            || cap_mem > old_cap_mem;
        if !self.tree_dirty[mi] {
            self.tree_dirty[mi] = true;
            self.dirty_list.push(mi as u32);
        }
        self.cache
            .record(mi, self.mirror.fullness(mi) as f32, loosened);
    }

    fn flush_tree(&mut self, machines: &[Machine]) {
        for &mi in &self.dirty_list {
            self.tree.update(mi as usize, &machines[mi as usize]);
            self.tree_dirty[mi as usize] = false;
        }
        self.dirty_list.clear();
    }

    /// Exact best-fit: the machine (and score) the naive full scan would
    /// choose, or `None` when nothing fits.
    pub fn best_fit(
        &mut self,
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(machines.len(), self.mirror.len());
        if let Some(answer) = self.cached_best_fit(request, tier) {
            return answer;
        }
        self.scan_best_fit(request, tier)
    }

    /// The score-cache half of [`PlacementIndex::best_fit`]: `Some` with
    /// the exact answer on a hit (including cached "nothing fits"),
    /// `None` on a miss. The sharded layer probes every shard's cache
    /// sequentially — a hit is O(R + tail), far cheaper than a channel
    /// round-trip — before fanning the misses out to workers.
    pub(crate) fn cached_best_fit(
        &mut self,
        request: Resources,
        tier: Tier,
    ) -> Option<Option<(usize, f64)>> {
        let key = ShapeKey::of(request, tier);
        let d = discount(request, tier);
        let answer = self.cache.lookup(key, &self.mirror, request, d)?;
        match answer {
            Some(_) => self.stats.cache_hits += 1,
            None => self.stats.negative_hits += 1,
        }
        Some(answer)
    }

    /// The miss half of [`PlacementIndex::best_fit`]: a full mirror scan
    /// plus a cache store. Touches only the mirror columns — never the
    /// `Machine` structs — so the sharded layer can move the whole index
    /// to a pool worker and run this there.
    pub(crate) fn scan_best_fit(&mut self, request: Resources, tier: Tier) -> Option<(usize, f64)> {
        let key = ShapeKey::of(request, tier);
        let d = discount(request, tier);
        self.stats.cache_misses += 1;
        let n = self.mirror.len();
        let mut top = TopList::new();
        for mi in 0..n {
            if let Some(score) = self.mirror.eval(mi, request, d) {
                top.insert(Lex {
                    score,
                    mi: mi as u32,
                });
            }
        }
        self.stats.leaves_scanned += n as u64;
        self.cache.store(key, &top);
        top.first().map(|l| (l.mi as usize, l.score))
    }

    /// Bounded candidate search (relaxed randomization): scans the seeded
    /// probe order from a rotating cursor and keeps the best of the first
    /// `cap` feasible machines. Deterministic for a given seed, but *not*
    /// equivalent to the exact scan.
    pub fn best_fit_bounded(
        &mut self,
        machines: &[Machine],
        request: Resources,
        tier: Tier,
        cap: usize,
    ) -> Option<(usize, f64)> {
        self.stats.bounded_probes += 1;
        let n = self.probe_order.len();
        if n == 0 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        let mut feasible = 0usize;
        let mut scanned = 0usize;
        while scanned < n && feasible < cap {
            let mi = self.probe_order[(self.probe_cursor + scanned) % n] as usize;
            scanned += 1;
            if let Some(s) = machines[mi].fit_score(request, tier) {
                feasible += 1;
                if best.is_none_or(|(_, bs)| s < bs) {
                    best = Some((mi, s));
                }
            }
        }
        self.probe_cursor = (self.probe_cursor + scanned) % n;
        best
    }

    /// The lowest-indexed machine that can host `request` at `tier` after
    /// preempting lower tiers, with its victim list — exactly the machine
    /// the naive `find_map` over [`Machine::preemption_victims`] returns.
    #[allow(clippy::type_complexity)]
    pub fn first_preemptible(
        &mut self,
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, Vec<(usize, usize)>)> {
        self.stats.preempt_probes += 1;
        self.flush_tree(machines);
        let needed = discount(request, tier);
        self.tree.first_preemptible(needed, tier, &mut |mi| {
            machines[mi].preemption_victims(request, tier)
        })
    }

    /// Flushes dirty preemption-tree leaves. The sharded fan-out calls
    /// this on the main thread — which holds the `Machine` structs —
    /// before moving the shard to a pool worker for candidate
    /// enumeration.
    pub(crate) fn flush_for_preempt(&mut self, machines: &[Machine]) {
        self.flush_tree(machines);
    }

    /// Preemption candidates for the sharded fan-out: the shard-local
    /// indices of every machine whose inflated tree bound admits
    /// `needed`, ascending. Requires [`PlacementIndex::flush_for_preempt`]
    /// first. The caller runs the exact `preemption_victims` checks in
    /// global machine order with early exit, so the first passing
    /// machine is exactly the one the naive walk returns; bound-passing
    /// leaves the naive walk never visited (because it exited earlier)
    /// are rejected by the same exact check and cost only the visit.
    pub(crate) fn preempt_candidates(&mut self, needed: Resources, tier: Tier) -> Vec<u32> {
        self.stats.preempt_probes += 1;
        debug_assert!(
            self.dirty_list.is_empty(),
            "flush_for_preempt must run first"
        );
        let mut out = Vec::new();
        self.tree.collect_preemptible(1, needed, tier, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Occupant;
    use borg_trace::machine::MachineId;
    use borg_workload::usage_model::splitmix64;

    /// The reference scan `try_place` used before the index existed.
    fn naive_best_fit(
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, m) in machines.iter().enumerate() {
            if let Some(score) = m.fit_score(request, tier) {
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((i, score));
                }
            }
        }
        best
    }

    fn naive_first_preemptible(
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, Vec<(usize, usize)>)> {
        machines
            .iter()
            .enumerate()
            .find_map(|(i, m)| m.preemption_victims(request, tier).map(|v| (i, v)))
    }

    fn tier_of(r: u64) -> Tier {
        match r % 5 {
            0 => Tier::Free,
            1 => Tier::BestEffortBatch,
            2 => Tier::Mid,
            3 => Tier::Production,
            _ => Tier::Monitoring,
        }
    }

    /// Drives random commits/frees/queries and checks every query against
    /// the naive reference — the index's core exactness property.
    #[test]
    fn randomized_ops_match_naive_scan() {
        for seed in [1u64, 7, 99, 1234] {
            let mut machines: Vec<Machine> = (0..37)
                .map(|i| {
                    let r = splitmix64(seed ^ (i as u64 * 7919));
                    let cpu = 0.3 + (r % 100) as f64 / 120.0;
                    let mem = 0.3 + (r / 100 % 100) as f64 / 120.0;
                    Machine::new(MachineId(i), Resources::new(cpu, mem))
                })
                .collect();
            let mut index = PlacementIndex::new(&machines, seed);
            let mut occupants: Vec<(usize, usize)> = Vec::new();
            let mut next_owner = 0usize;
            // A small shape pool so the cache sees repeated equivalence
            // classes interleaved with invalidating mutations.
            let shapes: Vec<Resources> = (0..8)
                .map(|k| {
                    let r = splitmix64(seed ^ (k as u64 * 104729));
                    Resources::new(
                        0.01 + (r % 37) as f64 / 90.0,
                        0.01 + (r / 37 % 37) as f64 / 90.0,
                    )
                })
                .collect();
            for step in 0..4000u64 {
                let r = splitmix64(seed.wrapping_mul(31).wrapping_add(step));
                let request = shapes[(r % 8) as usize];
                let tier = tier_of(r / 1369);
                match r % 11 {
                    // Frees dominate less than commits so machines fill.
                    0..=2 => {
                        if !occupants.is_empty() {
                            let k = (r / 13) as usize % occupants.len();
                            let (mi, owner) = occupants.swap_remove(k);
                            machines[mi].remove(owner, 0).expect("occupant present");
                            index.on_machine_changed(mi, &machines[mi]);
                        }
                    }
                    3..=7 => {
                        let expect = naive_best_fit(&machines, request, tier);
                        let got = index.best_fit(&machines, request, tier);
                        assert_eq!(got, expect, "seed {seed} step {step}");
                        if let Some((mi, _)) = got {
                            machines[mi].add(Occupant {
                                owner: next_owner,
                                index: 0,
                                is_alloc_instance: false,
                                tier,
                                request,
                            });
                            index.on_machine_changed(mi, &machines[mi]);
                            occupants.push((mi, next_owner));
                            next_owner += 1;
                        }
                    }
                    _ => {
                        let tier = if r.is_multiple_of(2) {
                            Tier::Production
                        } else {
                            Tier::Monitoring
                        };
                        let expect = naive_first_preemptible(&machines, request, tier);
                        let got = index.first_preemptible(&machines, request, tier);
                        assert_eq!(got, expect, "seed {seed} step {step}");
                    }
                }
            }
            assert!(index.stats.cache_hits + index.stats.negative_hits > 0);
            assert!(index.stats.cache_misses > 0);
        }
    }

    /// Repeated identical shapes must ride the candidate list: filling
    /// the winner falls through to the runner-up instead of rescanning.
    #[test]
    fn identical_shapes_hit_cache() {
        let machines: Vec<Machine> = (0..64)
            .map(|i| Machine::new(MachineId(i), Resources::new(1.0, 1.0)))
            .collect();
        let mut machines = machines;
        let mut index = PlacementIndex::new(&machines, 0);
        let request = Resources::new(0.1, 0.1);
        for owner in 0..32 {
            let (mi, _) = index
                .best_fit(&machines, request, Tier::Production)
                .expect("fits");
            machines[mi].add(Occupant {
                owner,
                index: 0,
                is_alloc_instance: false,
                tier: Tier::Production,
                request,
            });
            index.on_machine_changed(mi, &machines[mi]);
        }
        assert_eq!(index.stats.cache_hits + index.stats.cache_misses, 32);
        assert_eq!(
            index.stats.cache_misses, 1,
            "one cold scan, then the candidate list absorbs every fill-up"
        );
        assert_eq!(index.stats.cache_hits, 31);
    }

    /// A free on a cached winner is revalidated in place: the loosened
    /// machine is in the mutation tail, so its degraded score is
    /// re-scored exactly and the answer stays correct without a rescan.
    #[test]
    fn loosening_winner_revalidates_in_place() {
        let mut machines: Vec<Machine> = (0..8)
            .map(|i| Machine::new(MachineId(i), Resources::new(1.0, 1.0)))
            .collect();
        let mut index = PlacementIndex::new(&machines, 0);
        let request = Resources::new(0.2, 0.2);
        let (w, _) = index.best_fit(&machines, request, Tier::Mid).expect("fits");
        machines[w].add(Occupant {
            owner: 0,
            index: 0,
            is_alloc_instance: false,
            tier: Tier::Mid,
            request,
        });
        index.on_machine_changed(w, &machines[w]);
        machines[w].remove(0, 0).expect("present");
        index.on_machine_changed(w, &machines[w]);
        let misses_before = index.stats.cache_misses;
        let got = index.best_fit(&machines, request, Tier::Mid);
        assert_eq!(got, naive_best_fit(&machines, request, Tier::Mid));
        assert_eq!(
            index.stats.cache_misses, misses_before,
            "tail revalidation answers without a fresh scan"
        );
    }

    /// "Nothing fits" answers are reused while mutations only tighten.
    #[test]
    fn negative_answers_cached() {
        let mut machines = vec![Machine::new(MachineId(0), Resources::new(0.5, 0.5))];
        let mut index = PlacementIndex::new(&machines, 0);
        let big = Resources::new(0.9, 0.9);
        assert_eq!(index.best_fit(&machines, big, Tier::Free), None);
        machines[0].add(Occupant {
            owner: 0,
            index: 0,
            is_alloc_instance: false,
            tier: Tier::Free,
            request: Resources::new(0.1, 0.1),
        });
        index.on_machine_changed(0, &machines[0]);
        assert_eq!(index.best_fit(&machines, big, Tier::Free), None);
        assert_eq!(index.stats.negative_hits, 1);
        assert_eq!(index.stats.cache_misses, 1);
    }

    /// Overflowing the entry table evicts FIFO and stays correct.
    #[test]
    fn entry_eviction_stays_correct() {
        let machines: Vec<Machine> = (0..4)
            .map(|i| Machine::new(MachineId(i), Resources::new(1.0, 1.0)))
            .collect();
        let mut index = PlacementIndex::new(&machines, 0);
        for k in 0..(MAX_ENTRIES + 50) {
            let request = Resources::new(0.1 + k as f64 * 1e-7, 0.1);
            let got = index.best_fit(&machines, request, Tier::Mid);
            assert_eq!(got, naive_best_fit(&machines, request, Tier::Mid));
        }
        // Requery the earliest (evicted) shape: still correct, via scan.
        let first = Resources::new(0.1, 0.1);
        assert_eq!(
            index.best_fit(&machines, first, Tier::Mid),
            naive_best_fit(&machines, first, Tier::Mid)
        );
    }

    #[test]
    fn bounded_mode_is_deterministic_and_feasible() {
        let machines: Vec<Machine> = (0..128)
            .map(|i| Machine::new(MachineId(i), Resources::new(1.0, 1.0)))
            .collect();
        let request = Resources::new(0.25, 0.25);
        let run = |seed: u64| {
            let mut index = PlacementIndex::new(&machines, seed);
            (0..10)
                .map(|_| {
                    index
                        .best_fit_bounded(&machines, request, Tier::Mid, 4)
                        .expect("fits")
                        .0
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same seed, same probes");
        assert_ne!(run(5), run(6), "different seed, different probes");
    }

    #[test]
    fn empty_fleet_queries_are_none() {
        let machines: Vec<Machine> = Vec::new();
        let mut index = PlacementIndex::new(&machines, 1);
        assert_eq!(
            index.best_fit(&machines, Resources::new(0.1, 0.1), Tier::Free),
            None
        );
        assert_eq!(
            index.best_fit_bounded(&machines, Resources::new(0.1, 0.1), Tier::Free, 3),
            None
        );
        assert_eq!(
            index.first_preemptible(&machines, Resources::new(0.1, 0.1), Tier::Production),
            None
        );
    }
}
