//! One cell's simulation: the Borgmaster loop.

use crate::autopilot::Autopilot;

use crate::config::SimConfig;
use crate::event::{Ev, EventQueue, KIND_NAMES};
use crate::faults::FaultInjector;
use crate::fxhash::FxHashMap;
use crate::machine::{Machine, Occupant};
use crate::metrics::{tier_key, MachineSnapshot, SimMetrics};
use crate::pending::PendingQueue;
use crate::runset::RunningSet;
use crate::shard::ShardedPlacement;
use borg_telemetry::{clock, PhaseGrid, Plane, Snapshot, Telemetry};
use borg_trace::collection::{
    CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
};
use borg_trace::instance::{InstanceEvent, InstanceId};
use borg_trace::machine::{MachineEvent, MachineEventType, MachineId, Platform};
use borg_trace::priority::Tier;
use borg_trace::resources::Resources;
use borg_trace::state::{EventType, StateMachine};
use borg_trace::time::Micros;
use borg_trace::trace::{SchemaVersion, Trace};
use borg_trace::usage::{CpuHistogram, UsageRecord};
use borg_workload::cells::{CellProfile, Era};
use borg_workload::dist::{Exponential, Sample};
use borg_workload::jobgen::{GenParams, JobGenerator, JobSpec, TerminationIntent, Workload};
use borg_workload::usage_model::splitmix64;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Everything a simulated cell-month produces.
#[derive(Debug)]
pub struct CellOutcome {
    /// The trace tables (v3 schema).
    pub trace: Trace,
    /// Pre-aggregated metrics.
    pub metrics: SimMetrics,
    /// Telemetry snapshot (empty unless `SimConfig::telemetry`): phase
    /// spans, per-event-kind counters/timings, and the metrics/index
    /// tallies re-exported as counters. See DESIGN.md §12.
    pub telemetry: Snapshot,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    NotSubmitted,
    Pending,
    Running { machine: usize, since: Micros },
    Dead,
}

#[derive(Debug)]
struct TaskRt {
    state: TaskState,
    attempt: u32,
    limit: Resources,
    autopilot: Autopilot,
    /// Set when placed inside an alloc instance `(alloc_idx, inst_idx)`.
    in_alloc: Option<(usize, usize)>,
    sm: StateMachine,
    stalled: bool,
    /// Usage has been charged to the metrics up to this time; the
    /// remainder is charged when the task frees or at the next tick, so
    /// short tasks that live between ticks still contribute (Figure 2).
    accounted_until: Micros,
    /// Generation stamp for pending-queue entries: bumped whenever every
    /// outstanding entry for this task must die (the task starts,
    /// stalls, or its job ends), so a popped entry is live iff its stamp
    /// matches — one integer compare instead of re-deriving state.
    /// Unstalling does *not* bump: the stall already orphaned the old
    /// entries, and the retry tick pushes a fresh one under the new gen.
    gen: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum JobState {
    NotArrived,
    Queued,
    Ready,
    Ended,
}

#[derive(Debug)]
struct JobRt {
    spec: JobSpec,
    state: JobState,
    ready_at: Micros,
    first_running: Option<Micros>,
    end_scheduled: bool,
    /// Terminal override (parent cascade forces a kill).
    forced_kill: bool,
    children: Vec<usize>,
    sm: StateMachine,
    flaky: bool,
    /// Number of tasks currently in `TaskState::Pending` (stalled or
    /// not), so gang dispatch collects them without scanning every task.
    pending_count: u32,
    tasks: Vec<TaskRt>,
}

#[derive(Debug)]
struct AllocInstRt {
    machine: Option<usize>,
    used: Resources,
    placed_at: Micros,
    sm: StateMachine,
}

#[derive(Debug)]
struct AllocRt {
    spec: borg_workload::jobgen::AllocSetSpec,
    instances: Vec<AllocInstRt>,
    active: bool,
    /// Past expiry but still hosting production members: no new
    /// placements; torn down once the members finish.
    draining: bool,
    sm: StateMachine,
}

/// Reusable event-loop scratch buffers, owned by the cell so the hot
/// paths allocate nothing in steady state (DESIGN.md §13). The usage
/// tick's per-machine vectors are full-fleet-sized but reset in
/// O(touched machines): only indices recorded in `touched` are ever
/// non-zero between `begin` and `reset_machines`.
#[derive(Debug, Default)]
struct TickScratch {
    /// Sorted copy of the running set for the tick's two passes (pass 2
    /// mutates task state, so it cannot iterate the set directly).
    running: Vec<(usize, usize)>,
    /// Per-running-task window average from pass 1 (memory clamped, CPU
    /// raw), indexed in lock-step with `running`.
    demand: Vec<Resources>,
    /// Per-machine raw demand aggregate; valid only at `touched` indices.
    machine_demand: Vec<Resources>,
    /// Per-machine throttled usage; valid only at `touched` indices.
    machine_usage: Vec<Resources>,
    /// Whether a machine index is already in `touched`.
    machine_dirty: Vec<bool>,
    /// Machines hosting at least one running task this tick.
    touched: Vec<usize>,
    /// Diurnal-mean memo for this tick's window, keyed by the usage
    /// process's (amplitude, phase) bits. One entry in practice: every
    /// task in a cell shares the profile's diurnal shape, so the two
    /// cosines are evaluated once per tick instead of once per task.
    diurnal: Vec<((u64, u64), f64)>,
    /// Sample buffer for downsampled usage records.
    samples: Vec<f64>,
    /// Sort buffer for the per-record CPU histogram.
    hist: Vec<f64>,
    /// `try_place_gang`'s pending-task collect.
    gang_pending: Vec<usize>,
}

impl TickScratch {
    /// Prepares the buffers for one tick over a `machines`-sized fleet.
    fn begin(&mut self, machines: usize) {
        self.running.clear();
        self.demand.clear();
        self.diurnal.clear();
        debug_assert!(self.touched.is_empty(), "reset_machines not called");
        if self.machine_demand.len() != machines {
            self.machine_demand.resize(machines, Resources::ZERO);
            self.machine_usage.resize(machines, Resources::ZERO);
            self.machine_dirty.resize(machines, false);
        }
    }

    /// Re-zeroes exactly the machine slots this tick dirtied.
    fn reset_machines(&mut self) {
        for &m in &self.touched {
            self.machine_demand[m] = Resources::ZERO;
            self.machine_usage[m] = Resources::ZERO;
            self.machine_dirty[m] = false;
        }
        self.touched.clear();
    }
}

/// The cell simulator.
pub struct CellSim<'a> {
    profile: &'a CellProfile,
    cfg: &'a SimConfig,
    machines: Vec<Machine>,
    /// Sharded placement index kept in lock-step with every machine
    /// mutation (only consulted when `cfg.use_placement_index`; one
    /// shard unless the config and host justify more — see
    /// `SimConfig::effective_shards`).
    index: ShardedPlacement,
    jobs: Vec<JobRt>,
    allocs: Vec<AllocRt>,
    job_by_id: std::collections::BTreeMap<u64, usize>,
    alloc_by_id: std::collections::BTreeMap<u64, usize>,
    queue: EventQueue,
    pending: PendingQueue,
    batch_queue: VecDeque<(usize, Micros)>,
    /// Tasks whose last placement attempt failed, awaiting the retry tick.
    stalled: VecDeque<(usize, usize)>,
    /// Running `(job, task)` pairs as a dense task-id bitmap: inserts
    /// and removals are single bit operations at task start/stop, and
    /// iteration walks set bits in ascending id order — which *is*
    /// `(job, task)` order, so every consumer sees the exact sequence
    /// the ordered set it replaced produced (see [`RunningSet`]).
    running: RunningSet,
    /// The dispatch cursor is live: either a `Dispatch` event is in the
    /// queue or the handler for one is on the stack. The queue never
    /// holds two live dispatch events — `ensure_dispatch` is a no-op
    /// while the cursor runs, and the cursor re-arms itself exactly once
    /// when it breaks a burst.
    dispatch_live: bool,
    /// The placement whose decision latency is elapsing, with the gen
    /// stamp from its pending-queue pop.
    in_flight: Option<(usize, usize, u32)>,
    last_dispatched_job: Option<usize>,
    /// Reusable hot-path buffers (usage tick, gang collect); see
    /// [`TickScratch`].
    scratch: TickScratch,
    /// Requested resources of admitted-but-unfinished best-effort batch
    /// jobs: the batch scheduler's admission-control state.
    beb_outstanding: Resources,
    trace: Trace,
    metrics: SimMetrics,
    rng: StdRng,
    /// Machine-failure injector; `None` keeps the simulation bit-identical
    /// to a build without fault injection.
    faults: Option<FaultInjector>,
    now: Micros,
    snapshot_done: bool,
    usage_seq: u64,
    /// Telemetry accumulator (a disabled instance when
    /// `cfg.telemetry` is off: every record call is one branch).
    tel: Telemetry,
    /// Per-(event-kind × simulated-day) counts and wall-clock credits,
    /// folded into `tel` after the event loop.
    grid: PhaseGrid,
}

impl<'a> CellSim<'a> {
    /// Generates the workload for `profile` under `cfg` and runs the full
    /// simulation, returning the trace and metrics.
    pub fn run_cell(profile: &'a CellProfile, cfg: &'a SimConfig) -> CellOutcome {
        cfg.validate();
        let mut tel = Telemetry::new(cfg.telemetry);
        let root_span = tel.span_enter("sim.run_cell");
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Sample the machine fleet.
        let fleet_span = tel.span_enter("sample_fleet");
        let n_machines = cfg.machine_count(profile);
        let mut machines = Vec::with_capacity(n_machines);
        let mut machine_events = Vec::with_capacity(n_machines);
        let mut capacity = Resources::ZERO;
        for i in 0..n_machines {
            let shape = profile.catalog.sample(&mut rng);
            capacity += shape.capacity;
            machines.push(Machine::new(MachineId(i as u32), shape.capacity));
            machine_events.push(MachineEvent::add(
                Micros::ZERO,
                MachineId(i as u32),
                shape.capacity,
                shape.platform,
            ));
        }

        tel.span_exit(fleet_span);

        // Generate the workload.
        let gen_span = tel.span_enter("gen_workload");
        let workload = JobGenerator::new(
            profile,
            GenParams {
                capacity,
                job_rate_per_hour: cfg.job_rate(profile),
                horizon: cfg.horizon,
                task_cap: cfg.task_cap,
                seed: splitmix64(cfg.seed ^ WORKLOAD_SEED_SALT),
            },
        )
        .generate();
        tel.span_exit(gen_span);

        let schema = match profile.era {
            Era::Y2011 => SchemaVersion::V2Trace2011,
            Era::Y2019 => SchemaVersion::V3Trace2019,
        };
        let mut trace = Trace::new(profile.name.clone(), schema, cfg.horizon);
        trace.machine_events = machine_events;

        let reporting_tiers: Vec<Tier> = profile.tiers.iter().map(|t| tier_key(t.tier)).collect();
        let metrics = SimMetrics::new(&profile.name, cfg.horizon, capacity, &reporting_tiers);

        let index = ShardedPlacement::new(
            &machines,
            cfg.seed ^ INDEX_SEED_SALT,
            cfg.effective_shards(machines.len()),
        );
        // The injector owns an independent RNG stream: enabling faults
        // never perturbs the fleet, workload, or placement draws.
        let faults = cfg.faults.as_ref().map(|fc| {
            let platforms: Vec<Platform> =
                trace.machine_events.iter().map(|e| e.platform).collect();
            FaultInjector::new(
                fc.clone(),
                platforms,
                splitmix64(cfg.seed ^ FAULT_SEED_SALT),
            )
        });
        let mut sim = CellSim {
            profile,
            cfg,
            machines,
            index,
            jobs: Vec::new(),
            allocs: Vec::new(),
            job_by_id: Default::default(),
            alloc_by_id: Default::default(),
            queue: EventQueue::new(),
            pending: PendingQueue::new(),
            batch_queue: VecDeque::new(),
            stalled: VecDeque::new(),
            running: RunningSet::default(),
            dispatch_live: false,
            in_flight: None,
            last_dispatched_job: None,
            scratch: TickScratch::default(),
            beb_outstanding: Resources::ZERO,
            trace,
            metrics,
            rng,
            faults,
            now: Micros::ZERO,
            snapshot_done: false,
            usage_seq: 0,
            tel,
            grid: PhaseGrid::new(KIND_NAMES),
        };
        let load_span = sim.tel.span_enter("load_workload");
        sim.load_workload(workload);
        sim.tel.span_exit(load_span);
        let prime_span = sim.tel.span_enter("prime_events");
        sim.prime_events();
        sim.tel.span_exit(prime_span);
        sim.run_loop();
        let fin_span = sim.tel.span_enter("finalize");
        sim.finalize();
        sim.export_metrics_telemetry();
        sim.tel.span_exit(fin_span);
        sim.tel.span_exit(root_span);
        let telemetry = sim.tel.snapshot();
        CellOutcome {
            trace: sim.trace,
            metrics: sim.metrics,
            telemetry,
        }
    }

    fn load_workload(&mut self, workload: Workload) {
        let flaky_frac = self.profile.flaky_job_fraction;
        self.jobs = workload
            .jobs
            .into_iter()
            .map(|spec| {
                let flaky = spec.tier != Tier::Production
                    && (splitmix64(spec.id ^ self.cfg.seed) as f64 / u64::MAX as f64) < flaky_frac;
                let vs_mode = if self.cfg.disable_autopilot {
                    borg_trace::collection::VerticalScalingMode::Off
                } else {
                    spec.vertical_scaling
                };
                let tasks = spec
                    .tasks
                    .iter()
                    .map(|t| TaskRt {
                        state: TaskState::NotSubmitted,
                        attempt: 0,
                        limit: t.request,
                        autopilot: Autopilot::new(vs_mode, t.request),
                        in_alloc: None,
                        sm: StateMachine::new(),
                        stalled: false,
                        accounted_until: Micros::ZERO,
                        gen: 0,
                    })
                    .collect();
                JobRt {
                    state: JobState::NotArrived,
                    ready_at: Micros::ZERO,
                    first_running: None,
                    end_scheduled: false,
                    forced_kill: false,
                    children: Vec::new(),
                    sm: StateMachine::new(),
                    flaky,
                    pending_count: 0,
                    tasks,
                    spec,
                }
            })
            .collect();
        // Dense global task ids for the running bitmap: contiguous per
        // job, in job order, so ascending id equals (job, task) order.
        self.running = RunningSet::new(self.jobs.iter().map(|j| j.tasks.len()));
        self.job_by_id = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.spec.id, i))
            .collect();
        // Wire parent → children links.
        for i in 0..self.jobs.len() {
            if let Some(pid) = self.jobs[i].spec.parent {
                if let Some(&p) = self.job_by_id.get(&pid) {
                    self.jobs[p].children.push(i);
                }
            }
        }
        self.allocs = workload
            .alloc_sets
            .into_iter()
            .map(|spec| AllocRt {
                draining: false,
                instances: (0..spec.instance_count)
                    .map(|_| AllocInstRt {
                        machine: None,
                        used: Resources::ZERO,
                        placed_at: Micros::ZERO,
                        sm: StateMachine::new(),
                    })
                    .collect(),
                active: false,
                sm: StateMachine::new(),
                spec,
            })
            .collect();
        self.alloc_by_id = self
            .allocs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.spec.id, i))
            .collect();
    }

    // ----- placement machinery ----------------------------------------

    /// Adds an occupant to a machine, keeping the placement index
    /// current. Every machine mutation must flow through this or
    /// [`CellSim::release_occupant`].
    fn commit_occupant(&mut self, machine: usize, occ: Occupant) {
        self.machines[machine].add(occ);
        if self.cfg.use_placement_index {
            self.index
                .on_machine_changed(machine, &self.machines[machine]);
        }
    }

    /// Removes an occupant from a machine, keeping the placement index
    /// current.
    fn release_occupant(&mut self, machine: usize, owner: usize, index: usize) {
        if self.machines[machine].remove(owner, index).is_some() && self.cfg.use_placement_index {
            self.index
                .on_machine_changed(machine, &self.machines[machine]);
        }
    }

    /// Best-fit winner across the fleet: indexed (exact or bounded) or
    /// the naive reference scan, per the config.
    fn best_fit_machine(&mut self, request: Resources, tier: Tier) -> Option<(usize, f64)> {
        if self.cfg.use_placement_index {
            return match self.cfg.candidate_cap {
                None => self.index.best_fit(&self.machines, request, tier),
                Some(cap) => self
                    .index
                    .best_fit_bounded(&self.machines, request, tier, cap),
            };
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, m) in self.machines.iter().enumerate() {
            if let Some(score) = m.fit_score(request, tier) {
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((i, score));
                }
            }
        }
        best
    }

    /// First machine (lowest index) where preempting lower tiers frees
    /// room for `request`, with the victim list.
    fn find_preemption(
        &mut self,
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, Vec<(usize, usize)>)> {
        if self.cfg.use_placement_index {
            return self.index.first_preemptible(&self.machines, request, tier);
        }
        self.machines
            .iter()
            .enumerate()
            .find_map(|(i, m)| m.preemption_victims(request, tier).map(|v| (i, v)))
    }

    fn prime_events(&mut self) {
        // Build the pre-loop calendar in the exact order these events
        // used to be pushed, then hand it to the queue in one shot: the
        // calendar pops O(1) from a sorted cursor instead of sifting a
        // heap that starts with every submission of the month in it, and
        // ordering is identical to having pushed each entry here.
        let mut cal: Vec<(Micros, Ev)> =
            Vec::with_capacity(self.jobs.len() + self.allocs.len() + 3 + 2 * self.machines.len());
        for (i, j) in self.jobs.iter().enumerate() {
            cal.push((j.spec.submit_time, Ev::JobSubmit { job: i }));
        }
        for (i, a) in self.allocs.iter().enumerate() {
            cal.push((a.spec.submit_time, Ev::AllocSubmit { alloc: i }));
        }
        cal.push((self.cfg.usage_interval, Ev::UsageTick));
        cal.push((Micros::from_minutes(5), Ev::BatchTick));
        cal.push((Micros::from_secs(30), Ev::RetryTick));
        // Stagger the first maintenance sweep of each machine uniformly
        // over the maintenance interval.
        let interval = self.cfg.maintenance_interval().as_micros();
        for m in 0..self.machines.len() {
            let at = Micros((self.rng.random::<f64>() * interval as f64) as u64);
            cal.push((at, Ev::Maintenance { machine: m }));
        }
        // One failure clock per machine, drawn from the injector's own
        // stream (the main RNG is untouched when faults are disabled).
        if let Some(inj) = self.faults.as_mut() {
            for m in 0..inj.machine_count() {
                let at = inj.sample_failure_gap();
                let epoch = inj.epoch(m);
                cal.push((at, Ev::MachineFail { machine: m, epoch }));
            }
        }
        self.queue.prime(cal);
    }

    fn run_loop(&mut self) {
        let span = self.tel.span_enter("run_loop");
        if self.tel.is_enabled() {
            self.run_loop_instrumented();
        } else {
            self.run_loop_plain();
        }
        // Fold the per-kind grid under the still-open run_loop span so
        // `ev.*` aggregates nest where the time was actually spent.
        self.grid.export(&mut self.tel, "sim.ev", "ev");
        self.tel.span_exit(span);
    }

    fn run_loop_plain(&mut self) {
        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.cfg.horizon {
                break;
            }
            self.now = t;
            self.handle_event(ev);
        }
    }

    /// The instrumented twin of [`CellSim::run_loop_plain`]: identical
    /// simulation behavior (telemetry reads nothing back), plus
    /// per-(kind, day) counts, queue-depth histogram, and wall-clock
    /// attribution. Timing reads the blessed clock once per event; the
    /// gap between consecutive reads — the previous handler plus one
    /// heap pop — is credited to the previous event's kind, which keeps
    /// enabled-mode overhead to one clock read and three array adds per
    /// event.
    fn run_loop_instrumented(&mut self) {
        let depth_hist = self.tel.hist("sim.ev.queue_depth", Plane::Deterministic);
        let mut prev: Option<(usize, usize)> = None;
        let mut prev_ns = clock::now_ns();
        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.cfg.horizon {
                break;
            }
            self.now = t;
            let day = (t.as_micros() / DAY_MICROS) as usize;
            let kind = ev.kind_index();
            self.grid.count(day, kind);
            self.tel.record(depth_hist, self.queue.len() as u64);
            let now_ns = clock::now_ns();
            if let Some((pd, pk)) = prev {
                self.grid.credit_ns(pd, pk, now_ns.saturating_sub(prev_ns));
            }
            prev = Some((day, kind));
            prev_ns = now_ns;
            self.handle_event(ev);
        }
        if let Some((pd, pk)) = prev {
            let end_ns = clock::now_ns();
            self.grid.credit_ns(pd, pk, end_ns.saturating_sub(prev_ns));
        }
    }

    #[inline]
    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::JobSubmit { job } => self.on_job_submit(job),
            Ev::AllocSubmit { alloc } => self.on_alloc_submit(alloc),
            Ev::AllocExpire { alloc } => self.on_alloc_expire(alloc),
            Ev::Dispatch => self.on_dispatch(),
            Ev::JobEnd { job } => self.on_job_end(job, false),
            Ev::TaskInterrupt { job, task, attempt } => self.on_task_interrupt(job, task, attempt),
            Ev::UsageTick => self.on_usage_tick(),
            Ev::BatchTick => self.on_batch_tick(),
            Ev::RetryTick => self.on_retry_tick(),
            Ev::Maintenance { machine } => self.on_maintenance(machine),
            Ev::MachineFail { machine, epoch } => self.on_machine_fail(machine, epoch),
            Ev::MachineRepair { machine } => self.on_machine_repair(machine),
        }
    }

    // ----- event emission helpers -------------------------------------

    fn emit_collection(&mut self, job: usize, ev: EventType) {
        let spec = &self.jobs[job].spec;
        let event = CollectionEvent {
            time: self.now,
            collection_id: CollectionId(spec.id),
            event_type: ev,
            collection_type: CollectionType::Job,
            priority: spec.priority,
            scheduler: spec.scheduler,
            vertical_scaling: spec.vertical_scaling,
            parent_id: spec.parent.map(CollectionId),
            alloc_collection_id: spec.alloc_set.map(CollectionId),
            user_id: UserId(spec.user_id),
        };
        let from = self.jobs[job].sm.state();
        if self.jobs[job].sm.apply(ev).is_ok() {
            self.metrics.collection_transitions.record(from, ev);
            self.trace.collection_events.push(event);
        } else {
            debug_assert!(false, "illegal collection transition: {ev} from {from:?}");
        }
    }

    fn emit_alloc_collection(&mut self, alloc: usize, ev: EventType) {
        let spec = &self.allocs[alloc].spec;
        let event = CollectionEvent {
            time: self.now,
            collection_id: CollectionId(spec.id),
            event_type: ev,
            collection_type: CollectionType::AllocSet,
            priority: spec.priority,
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            user_id: UserId(spec.user_id),
        };
        let from = self.allocs[alloc].sm.state();
        if self.allocs[alloc].sm.apply(ev).is_ok() {
            self.metrics.collection_transitions.record(from, ev);
            self.trace.collection_events.push(event);
        } else {
            debug_assert!(false, "illegal alloc transition: {ev} from {from:?}");
        }
    }

    fn emit_task(&mut self, job: usize, task: usize, ev: EventType, machine: Option<usize>) {
        let (priority, request, alloc_ref, collection_id) = {
            let j = &self.jobs[job];
            let inst = j.tasks[task]
                .in_alloc
                .map(|(a, i)| InstanceId::new(CollectionId(self.allocs[a].spec.id), i as u32));
            (j.spec.priority, j.tasks[task].limit, inst, j.spec.id)
        };
        let event = InstanceEvent {
            time: self.now,
            instance_id: InstanceId::new(CollectionId(collection_id), task as u32),
            event_type: ev,
            machine_id: machine.map(|m| self.machines[m].id),
            request,
            priority,
            alloc_instance: alloc_ref,
        };
        let from = self.jobs[job].tasks_sm_state(task);
        if self.jobs[job].apply_task_sm(task, ev) {
            self.metrics.instance_transitions.record(from, ev);
            self.trace.instance_events.push(event);
        } else {
            debug_assert!(false, "illegal instance transition: {ev} from {from:?}");
        }
    }

    fn emit_alloc_instance(&mut self, alloc: usize, inst: usize, ev: EventType) {
        let spec = &self.allocs[alloc].spec;
        let machine = self.allocs[alloc].instances[inst]
            .machine
            .map(|m| self.machines[m].id);
        let event = InstanceEvent {
            time: self.now,
            instance_id: InstanceId::new(CollectionId(spec.id), inst as u32),
            event_type: ev,
            machine_id: machine,
            request: spec.instance_size,
            priority: spec.priority,
            alloc_instance: None,
        };
        let from = self.allocs[alloc].instances[inst].sm.state();
        if self.allocs[alloc].instances[inst].sm.apply(ev).is_ok() {
            self.metrics.instance_transitions.record(from, ev);
            self.trace.instance_events.push(event);
        }
    }

    // ----- job lifecycle ------------------------------------------------

    fn on_job_submit(&mut self, job: usize) {
        self.metrics
            .job_submissions
            .add_point(self.now.as_micros(), 1.0);
        self.emit_collection(job, EventType::Submit);
        let n_tasks = self.jobs[job].spec.tasks.len();
        for t in 0..n_tasks {
            self.emit_task(job, t, EventType::Submit, None);
            self.metrics
                .new_task_submissions
                .add_point(self.now.as_micros(), 1.0);
            self.metrics
                .all_task_submissions
                .add_point(self.now.as_micros(), 1.0);
        }

        // A child whose parent already terminated is killed immediately
        // (§3: job dependencies).
        let parent_dead = self.jobs[job]
            .spec
            .parent
            .and_then(|pid| self.job_by_id.get(&pid).copied())
            .is_some_and(|p| self.jobs[p].state == JobState::Ended);
        if parent_dead {
            self.jobs[job].forced_kill = true;
            self.kill_job_now(job);
            return;
        }

        if self.jobs[job].spec.scheduler == SchedulerKind::Batch && !self.cfg.disable_batch_queue {
            self.jobs[job].state = JobState::Queued;
            self.emit_collection(job, EventType::Queue);
            self.batch_queue.push_back((job, self.now));
        } else {
            self.make_ready(job);
        }
    }

    fn make_ready(&mut self, job: usize) {
        self.jobs[job].state = JobState::Ready;
        self.jobs[job].ready_at = self.now;
        let n_tasks = self.jobs[job].spec.tasks.len();
        let priority = self.jobs[job].spec.priority;
        for t in 0..n_tasks {
            self.jobs[job].tasks[t].state = TaskState::Pending;
            let gen = self.jobs[job].tasks[t].gen;
            self.pending.push(priority, self.now, job, t, gen);
        }
        self.jobs[job].pending_count = n_tasks as u32;
        self.ensure_dispatch();
    }

    fn ensure_dispatch(&mut self) {
        if !self.dispatch_live && !self.pending.is_empty() {
            self.dispatch_live = true;
            self.queue.push(self.now + Micros(10_000), Ev::Dispatch);
        }
    }

    /// Scheduler decision latency for the next placement. Borg evaluates
    /// feasibility per *equivalence class* — a job's identical tasks share
    /// one evaluation — so consecutive placements for the same job are an
    /// order of magnitude cheaper than a fresh job's first task.
    fn decision_time(&mut self, job: usize) -> Micros {
        let mut mean = self.cfg.mean_decision_micros as f64;
        if self.last_dispatched_job == Some(job) {
            mean /= self.cfg.equivalence_class_speedup;
        }
        self.last_dispatched_job = Some(job);
        let s = Exponential::with_mean(mean).sample(&mut self.rng);
        Micros(s.max(1_000.0) as u64)
    }

    /// Dispatches the popped placement to the single- or gang-placement
    /// path (the gang path re-derives the member set from the job).
    fn place_popped(&mut self, job: usize, task: usize) {
        if self.cfg.gang_scheduling {
            self.try_place_gang(job);
        } else {
            self.try_place(job, task);
        }
    }

    fn on_dispatch(&mut self) {
        // Commit the placement whose decision just completed, then start
        // the next decision: a serial scheduler whose per-task latency is
        // charged *before* the task runs (Figure 10 measures exactly this
        // queueing-plus-decision time).
        //
        // `dispatch_live` stays true for this entire handler — including
        // placements, whose evictions can resubmit tasks and reach
        // `ensure_dispatch` — and is cleared only when the pending queue
        // drains, so the queue never holds two live `Dispatch` events.
        if self.cfg.legacy_event_loop {
            self.on_dispatch_legacy();
            return;
        }
        if let Some((job, task, gen)) = self.in_flight.take() {
            // The stamp is the aliveness check: dispatch is serial, so
            // the only event that can invalidate an in-flight task is its
            // job ending, which bumps the generation.
            if self.jobs[job].tasks[task].gen == gen {
                self.place_popped(job, task);
            }
        }
        loop {
            // Next live entry; stale stamps are discarded lazily here.
            let p = loop {
                match self.pending.pop() {
                    None => {
                        self.dispatch_live = false;
                        return;
                    }
                    Some(p) if self.jobs[p.job].tasks[p.task].gen == p.gen => break p,
                    Some(_) => {}
                }
            };
            let s = self.decision_time(p.job);
            let at = self.now + s;
            // Burst: while no other event fires before this decision
            // completes, commit it inline instead of a heap round-trip
            // through a fresh `Dispatch`. The strict `>` keeps ordering
            // bit-identical — an event at exactly `at` was pushed before
            // the `Dispatch` we would push now, so it must fire first.
            if at < self.cfg.horizon && self.queue.peek_time().is_none_or(|t| t > at) {
                self.now = at;
                self.place_popped(p.job, p.task);
            } else {
                self.in_flight = Some((p.job, p.task, p.gen));
                self.queue.push(at, Ev::Dispatch);
                return;
            }
        }
    }

    /// The seed dispatch loop (`SimConfig::legacy_event_loop`): one heap
    /// round-trip per placement, aliveness re-derived from job/task state
    /// rather than the generation stamp. The reference arm for
    /// `loop_equivalence.rs` — it exercises neither dispatch bursting nor
    /// stamp checks, so the equivalence test covers both.
    fn on_dispatch_legacy(&mut self) {
        if let Some((job, task, _gen)) = self.in_flight.take() {
            let alive = self.jobs[job].state != JobState::Ended
                && self.jobs[job].tasks[task].state == TaskState::Pending;
            if alive {
                self.place_popped(job, task);
            }
        }
        loop {
            let Some(p) = self.pending.pop() else {
                self.dispatch_live = false;
                return;
            };
            // Skip stale entries (task no longer pending).
            let alive = self.jobs[p.job].state != JobState::Ended
                && self.jobs[p.job].tasks[p.task].state == TaskState::Pending
                && !self.jobs[p.job].tasks[p.task].stalled;
            if alive {
                let s = self.decision_time(p.job);
                self.in_flight = Some((p.job, p.task, p.gen));
                self.queue.push(self.now + s, Ev::Dispatch);
                return;
            }
        }
    }

    /// Gang placement (§10 research direction #3): dry-run a greedy
    /// best-fit of *all* the job's pending tasks against scratch
    /// commitments; commit only when every task fits. The popped task
    /// triggers the whole gang.
    ///
    /// With the placement index enabled, the dry run keeps an *overlay*
    /// of effective commitments for the few machines the gang touches
    /// (instead of cloning every machine's state) and a per-shape
    /// min-heap of `(score, index)` keys. Keys never go stale: only the
    /// machine just committed to changes, and it is re-scored and
    /// re-pushed immediately — so each task placement is O(log M)
    /// instead of O(M), while choosing the exact machine the full scan
    /// would.
    fn try_place_gang(&mut self, job: usize) {
        let tier = self.jobs[job].spec.tier;
        // `pending_count` bounds the member collect: the common whole-job
        // gang skips the scan entirely, and a partial gang stops at the
        // count instead of visiting every task.
        let want = self.jobs[job].pending_count as usize;
        let mut pending = std::mem::take(&mut self.scratch.gang_pending);
        pending.clear();
        if want == self.jobs[job].tasks.len() {
            pending.extend(0..want);
        } else {
            for (i, t) in self.jobs[job].tasks.iter().enumerate() {
                if t.state == TaskState::Pending {
                    pending.push(i);
                    if pending.len() == want {
                        break;
                    }
                }
            }
        }
        if pending.is_empty() {
            self.scratch.gang_pending = pending;
            return;
        }
        let chosen = if self.cfg.use_placement_index {
            self.gang_dry_run_indexed(job, tier, &pending)
        } else {
            self.gang_dry_run_naive(job, tier, &pending)
        };
        match chosen {
            Some(chosen) => {
                for (t, mi) in chosen {
                    self.commit_occupant(
                        mi,
                        Occupant {
                            owner: job,
                            index: t,
                            is_alloc_instance: false,
                            tier,
                            request: self.jobs[job].tasks[t].limit,
                        },
                    );
                    self.start_task(job, t, mi, None);
                }
            }
            None => {
                // The gang does not fit; stall every pending task.
                for &t in &pending {
                    *self
                        .metrics
                        .stalls_by_tier
                        .entry(tier_key(tier))
                        .or_insert(0) += 1;
                    let trt = &mut self.jobs[job].tasks[t];
                    trt.stalled = true;
                    trt.gen = trt.gen.wrapping_add(1);
                    self.stalled.push_back((job, t));
                }
            }
        }
        self.scratch.gang_pending = pending;
    }

    /// The reference gang dry run: full scratch clone, O(M) per task.
    fn gang_dry_run_naive(
        &self,
        job: usize,
        tier: Tier,
        pending: &[usize],
    ) -> Option<Vec<(usize, usize)>> {
        let mut scratch: Vec<Resources> = self.machines.iter().map(|m| m.committed).collect();
        let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(pending.len());
        for &t in pending {
            let request = self.jobs[job].tasks[t].limit;
            let d = crate::machine::discount(request, tier);
            let mut best: Option<(usize, f64)> = None;
            for (mi, m) in self.machines.iter().enumerate() {
                if let Some(score) = m.fit_score_at(scratch[mi], request, tier) {
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((mi, score));
                    }
                }
            }
            let (mi, _) = best?;
            scratch[mi] += d;
            chosen.push((t, mi));
        }
        Some(chosen)
    }

    /// The indexed gang dry run: overlay of touched machines + per-shape
    /// heap. Bit-identical to [`CellSim::gang_dry_run_naive`]: the
    /// overlay applies the same `+= d` accumulation to the same starting
    /// value, and the heap pops the lexicographic `(score, index)`
    /// minimum — the machine the naive scan keeps.
    fn gang_dry_run_indexed(
        &self,
        job: usize,
        tier: Tier,
        pending: &[usize],
    ) -> Option<Vec<(usize, usize)>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Total-ordered heap key; scores of feasible machines are finite.
        #[derive(PartialEq)]
        struct Key {
            score: f64,
            mi: usize,
        }
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // IEEE equality (not total_cmp) is load-bearing: the
                // naive scan ties ±0.0 together and keeps the lower
                // machine index, and this heap must pop the same
                // machine. Scores of feasible machines are finite, so
                // the None (NaN) arm is unreachable.
                self.score
                    .partial_cmp(&other.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.mi.cmp(&other.mi))
            }
        }

        // Effective commitments for machines the gang has touched.
        let mut overlay: FxHashMap<usize, Resources> = Default::default();
        let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(pending.len());
        let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
        let mut heap_shape: Option<(u64, u64)> = None;
        for &t in pending {
            let request = self.jobs[job].tasks[t].limit;
            let d = crate::machine::discount(request, tier);
            let shape = (request.cpu.to_bits(), request.mem.to_bits());
            if heap_shape != Some(shape) {
                // New equivalence class: rebuild the heap (once per run
                // of identical shapes; a job's tasks share one shape).
                heap_shape = Some(shape);
                heap.clear();
                for (mi, m) in self.machines.iter().enumerate() {
                    let committed = overlay.get(&mi).copied().unwrap_or(m.committed);
                    if let Some(score) = m.fit_score_at(committed, request, tier) {
                        heap.push(Reverse(Key { score, mi }));
                    }
                }
            }
            let Reverse(Key { mi, .. }) = heap.pop()?;
            let slot = overlay.entry(mi).or_insert(self.machines[mi].committed);
            *slot += d;
            chosen.push((t, mi));
            // Re-score the machine we just tightened; all other keys are
            // still exact because no other machine changed.
            if let Some(score) = self.machines[mi].fit_score_at(*slot, request, tier) {
                heap.push(Reverse(Key { score, mi }));
            }
        }
        Some(chosen)
    }

    fn try_place(&mut self, job: usize, task: usize) {
        let tier = self.jobs[job].spec.tier;
        let request = self.jobs[job].tasks[task].limit;

        // 1. Inside the job's alloc set when possible (§5.1).
        if let Some(aid) = self.jobs[job].spec.alloc_set {
            if let Some(alloc_idx) = self.alloc_by_id.get(&aid).copied() {
                if self.allocs[alloc_idx].active && !self.allocs[alloc_idx].draining {
                    let size = self.allocs[alloc_idx].spec.instance_size;
                    let found = self.allocs[alloc_idx].instances.iter().position(|inst| {
                        inst.machine.is_some() && (inst.used + request).fits_in(&size)
                    });
                    if let Some(inst) = found {
                        let machine = self.allocs[alloc_idx].instances[inst]
                            .machine
                            // lint: library-panic-ok (position() above required machine.is_some()) unwind-across-pool-ok (unreachable by the same invariant, so no worker unwind)
                            .expect("checked placed");
                        self.allocs[alloc_idx].instances[inst].used += request;
                        self.start_task(job, task, machine, Some((alloc_idx, inst)));
                        return;
                    }
                }
            }
        }

        // 2. Best fit across machines (tight packing preserves the large
        // holes that big tasks need).
        if let Some((machine, _)) = self.best_fit_machine(request, tier) {
            self.commit_occupant(
                machine,
                Occupant {
                    owner: job,
                    index: task,
                    is_alloc_instance: false,
                    tier,
                    request,
                },
            );
            self.start_task(job, task, machine, None);
            return;
        }

        // 3. Production preempts lower tiers (§2, §5.2).
        if matches!(tier, Tier::Production | Tier::Monitoring) {
            if let Some((machine, victims)) = self.find_preemption(request, tier) {
                self.metrics.preemptions += 1;
                for (vj, vt) in victims {
                    self.evict_task_cause(vj, vt, "preemption");
                }
                self.commit_occupant(
                    machine,
                    Occupant {
                        owner: job,
                        index: task,
                        is_alloc_instance: false,
                        tier,
                        request,
                    },
                );
                self.start_task(job, task, machine, None);
                return;
            }
        }

        // 4. Unplaceable for now; retried by the retry tick.
        *self
            .metrics
            .stalls_by_tier
            .entry(tier_key(tier))
            .or_insert(0) += 1;
        let trt = &mut self.jobs[job].tasks[task];
        trt.stalled = true;
        trt.gen = trt.gen.wrapping_add(1);
        self.stalled.push_back((job, task));
    }

    fn start_task(
        &mut self,
        job: usize,
        task: usize,
        machine: usize,
        in_alloc: Option<(usize, usize)>,
    ) {
        {
            let t = &mut self.jobs[job].tasks[task];
            t.state = TaskState::Running {
                machine,
                since: self.now,
            };
            t.in_alloc = in_alloc;
            t.stalled = false;
            t.accounted_until = self.now;
            // Orphan any queue entry the task still has (a gang placement
            // starts members whose own entries are still in the heap).
            t.gen = t.gen.wrapping_add(1);
        }
        self.jobs[job].pending_count -= 1;
        self.running.insert(job, task);
        self.emit_task(job, task, EventType::Schedule, Some(machine));

        // First running task starts the job's clock (Figure 10 measures
        // ready → first task running).
        if self.jobs[job].first_running.is_none() {
            self.jobs[job].first_running = Some(self.now);
            self.emit_collection(job, EventType::Schedule);
            let delay = (self.now - self.jobs[job].ready_at).as_secs_f64();
            self.metrics.delays.push(crate::metrics::DelaySample {
                tier: tier_key(self.jobs[job].spec.tier),
                delay_secs: delay,
            });
            if !self.jobs[job].end_scheduled {
                self.jobs[job].end_scheduled = true;
                let end = self.now + self.jobs[job].spec.realized_duration();
                self.queue.push(end, Ev::JobEnd { job });
            }
        }

        // Flaky tasks get interrupted and resubmitted (§6.2 churn).
        if self.jobs[job].flaky {
            let gap_hours =
                Exponential::with_mean(1.0 / self.profile.flaky_interrupts_per_hour.max(1e-6))
                    .sample(&mut self.rng);
            let at = self.now + Micros::from_secs((gap_hours * 3600.0).max(30.0) as u64);
            let attempt = self.jobs[job].tasks[task].attempt;
            self.queue
                .push(at, Ev::TaskInterrupt { job, task, attempt });
        }
    }

    /// Frees the task's machine/alloc space and closes its allocation
    /// interval; does not emit any event.
    fn free_task(&mut self, job: usize, task: usize) {
        let TaskState::Running { machine, since } = self.jobs[job].tasks[task].state else {
            return;
        };
        let tier = self.jobs[job].spec.tier;
        // Charge any usage not yet covered by a tick.
        let acc = self.jobs[job].tasks[task].accounted_until;
        if self.now > acc {
            let usage_proc = self.jobs[job].spec.tasks[task].usage;
            let mut avg = usage_proc.average_over(acc, self.now);
            avg.mem = avg.mem.min(self.jobs[job].tasks[task].limit.mem);
            self.metrics.add_usage(tier, acc, self.now, avg);
            self.jobs[job].tasks[task].accounted_until = self.now;
        }
        let limit = self.jobs[job].tasks[task].limit;
        let in_alloc = self.jobs[job].tasks[task].in_alloc.take();
        if let Some((alloc_idx, inst)) = in_alloc {
            let used = &mut self.allocs[alloc_idx].instances[inst].used;
            *used = (*used - limit).clamp_non_negative();
        } else {
            self.release_occupant(machine, job, task);
            // In-alloc tasks live inside the alloc set's reservation, so
            // only free-standing tasks add to the tier's allocation
            // series (Figures 4/5 chart requested limits).
            self.metrics.add_allocation(tier, since, self.now, limit);
        }
        self.running.remove(job, task);
    }

    fn evict_task_cause(&mut self, job: usize, task: usize, cause: &'static str) {
        *self.metrics.evictions_by_cause.entry(cause).or_insert(0) += 1;
        self.evict_task(job, task);
    }

    fn evict_task(&mut self, job: usize, task: usize) {
        if !matches!(self.jobs[job].tasks[task].state, TaskState::Running { .. }) {
            return;
        }
        self.free_task(job, task);
        self.emit_task(job, task, EventType::Evict, None);
        *self
            .metrics
            .evictions_by_collection
            .entry(self.jobs[job].spec.id)
            .or_insert(0) += 1;
        // Almost all evicted instances are resubmitted and rescheduled in
        // the same cell (§5.2).
        self.resubmit_task(job, task);
    }

    fn resubmit_task(&mut self, job: usize, task: usize) {
        if self.jobs[job].state == JobState::Ended {
            self.jobs[job].tasks[task].state = TaskState::Dead;
            return;
        }
        self.jobs[job].tasks[task].attempt += 1;
        self.jobs[job].tasks[task].state = TaskState::Pending;
        self.jobs[job].pending_count += 1;
        self.emit_task(job, task, EventType::Submit, None);
        self.metrics
            .all_task_submissions
            .add_point(self.now.as_micros(), 1.0);
        let priority = self.jobs[job].spec.priority;
        let gen = self.jobs[job].tasks[task].gen;
        self.pending.push(priority, self.now, job, task, gen);
        self.ensure_dispatch();
    }

    fn on_task_interrupt(&mut self, job: usize, task: usize, attempt: u32) {
        if self.jobs[job].state == JobState::Ended {
            return;
        }
        let t = &self.jobs[job].tasks[task];
        if t.attempt != attempt || !matches!(t.state, TaskState::Running { .. }) {
            return;
        }
        // The attempt dies of its own problem and is retried.
        self.free_task(job, task);
        self.emit_task(job, task, EventType::Fail, None);
        self.resubmit_task(job, task);
    }

    fn job_final_event(&self, job: usize) -> EventType {
        if self.jobs[job].forced_kill {
            return EventType::Kill;
        }
        match self.jobs[job].spec.termination {
            TerminationIntent::Finish => EventType::Finish,
            TerminationIntent::Kill { .. } => EventType::Kill,
            TerminationIntent::Fail { .. } => EventType::Fail,
        }
    }

    fn kill_job_now(&mut self, job: usize) {
        self.jobs[job].forced_kill = true;
        self.on_job_end(job, true);
    }

    fn on_job_end(&mut self, job: usize, cascaded: bool) {
        if self.jobs[job].state == JobState::Ended {
            return;
        }
        let mut final_ev = if cascaded {
            EventType::Kill
        } else {
            self.job_final_event(job)
        };
        // A job that never started running cannot "finish"; it is
        // canceled instead.
        if self.jobs[job].first_running.is_none() && final_ev == EventType::Finish {
            final_ev = EventType::Kill;
        }
        let was_ready = self.jobs[job].state == JobState::Ready;
        self.jobs[job].state = JobState::Ended;
        if was_ready && self.jobs[job].spec.scheduler == SchedulerKind::Batch {
            self.beb_outstanding =
                (self.beb_outstanding - self.jobs[job].spec.total_request()).clamp_non_negative();
        }
        let n_tasks = self.jobs[job].spec.tasks.len();
        for t in 0..n_tasks {
            match self.jobs[job].tasks[t].state {
                TaskState::Running { .. } => {
                    self.free_task(job, t);
                    self.emit_task(job, t, final_ev, None);
                }
                TaskState::Pending => {
                    // Never-started replicas are killed with the job.
                    self.emit_task(job, t, EventType::Kill, None);
                }
                TaskState::NotSubmitted | TaskState::Dead => {}
            }
            let trt = &mut self.jobs[job].tasks[t];
            trt.state = TaskState::Dead;
            trt.gen = trt.gen.wrapping_add(1);
        }
        self.jobs[job].pending_count = 0;
        self.emit_collection(job, final_ev);

        // Parent-child cascade (§3, §5.2): children die with the parent.
        let children = std::mem::take(&mut self.jobs[job].children);
        for c in children {
            if self.jobs[c].state != JobState::Ended && self.jobs[c].state != JobState::NotArrived {
                self.on_job_end(c, true);
            } else if self.jobs[c].state == JobState::NotArrived {
                // Will be killed at submission.
                self.jobs[c].forced_kill = true;
            }
        }
    }

    // ----- alloc sets ----------------------------------------------------

    fn on_alloc_submit(&mut self, alloc: usize) {
        self.emit_alloc_collection(alloc, EventType::Submit);
        self.allocs[alloc].active = true;
        let n = self.allocs[alloc].instances.len();
        let size = self.allocs[alloc].spec.instance_size;
        for i in 0..n {
            self.emit_alloc_instance(alloc, i, EventType::Submit);
            // Alloc instances place like production tasks (they back
            // production workloads).
            if let Some((mi, _)) = self.best_fit_machine(size, Tier::Production) {
                self.commit_occupant(
                    mi,
                    Occupant {
                        owner: usize::MAX - alloc, // distinct owner space
                        index: i,
                        is_alloc_instance: true,
                        tier: Tier::Production,
                        request: size,
                    },
                );
                self.allocs[alloc].instances[i].machine = Some(mi);
                self.allocs[alloc].instances[i].placed_at = self.now;
                self.emit_alloc_instance(alloc, i, EventType::Schedule);
            } else {
                self.emit_alloc_instance(alloc, i, EventType::Fail);
            }
        }
        if self.allocs[alloc]
            .instances
            .iter()
            .any(|i| i.machine.is_some())
        {
            self.emit_alloc_collection(alloc, EventType::Schedule);
        }
        let expire = self.allocs[alloc].spec.submit_time + self.allocs[alloc].spec.duration;
        self.queue.push(expire, Ev::AllocExpire { alloc });
    }

    fn on_alloc_expire(&mut self, alloc: usize) {
        if !self.allocs[alloc].active {
            return;
        }
        // Reservations are torn down gracefully: while production members
        // are still running inside, the teardown is deferred (Borg's
        // eviction SLOs protect production work, §5.2).
        // `running` iterates sorted, so teardown order (and thus the
        // trace) is deterministic; collected because evictions mutate it.
        let members: Vec<(usize, usize)> = self
            .running
            .to_vec()
            .into_iter()
            .filter(|&(j, t)| {
                self.jobs[j].tasks[t]
                    .in_alloc
                    .is_some_and(|(a, _)| a == alloc)
            })
            .collect();
        let prod_members = members
            .iter()
            .any(|&(j, _)| matches!(self.jobs[j].spec.tier, Tier::Production | Tier::Monitoring));
        if prod_members {
            self.allocs[alloc].draining = true;
            self.queue
                .push(self.now + Micros::from_hours(6), Ev::AllocExpire { alloc });
            return;
        }
        self.allocs[alloc].active = false;
        // Any remaining (non-production) members are evicted and placed
        // as free-standing tasks.
        for (j, t) in members {
            self.evict_task_cause(j, t, "alloc_teardown");
        }
        let n = self.allocs[alloc].instances.len();
        for i in 0..n {
            if let Some(mi) = self.allocs[alloc].instances[i].machine.take() {
                self.release_occupant(mi, usize::MAX - alloc, i);
                let placed = self.allocs[alloc].instances[i].placed_at;
                let hours = (self.now - placed).as_hours_f64();
                let size = self.allocs[alloc].spec.instance_size;
                self.metrics.alloc_set_cpu_hours += size.cpu * hours;
                self.metrics.alloc_set_mem_hours += size.mem * hours;
                // Alloc reservations count as production-tier allocation.
                self.metrics
                    .add_allocation(Tier::Production, placed, self.now, size);
                self.emit_alloc_instance(alloc, i, EventType::Finish);
            }
        }
        // A reservation that never placed any instance is torn down as a
        // kill rather than a normal completion.
        if self.allocs[alloc].sm.state() == Some(borg_trace::state::InstanceState::Running) {
            self.emit_alloc_collection(alloc, EventType::Finish);
        } else {
            self.emit_alloc_collection(alloc, EventType::Kill);
        }
    }

    // ----- periodic machinery ---------------------------------------------

    fn on_batch_tick(&mut self) {
        self.queue
            .push(self.now + Micros::from_minutes(5), Ev::BatchTick);
        // The batch scheduler "manages the aggregate batch workload for
        // throughput by queueing jobs until the cell can handle them"
        // (§3): admission is bounded by the tier's outstanding requested
        // resources in both dimensions.
        let (cpu_cap, mem_cap) = self
            .profile
            .tier(Tier::BestEffortBatch)
            .map(|t| {
                (
                    t.target_cpu_util / t.cpu_fill * self.metrics.capacity.cpu * 1.15,
                    t.target_mem_util / t.mem_fill * self.metrics.capacity.mem * 1.15,
                )
            })
            .unwrap_or((f64::INFINITY, f64::INFINITY));
        while let Some(&(job, queued_at)) = self.batch_queue.front() {
            let waited_long = (self.now - queued_at) > Micros::from_hours(6);
            let under = self.beb_outstanding.cpu < cpu_cap && self.beb_outstanding.mem < mem_cap;
            if under || waited_long {
                self.batch_queue.pop_front();
                if self.jobs[job].state == JobState::Queued {
                    self.beb_outstanding += self.jobs[job].spec.total_request();
                    self.emit_collection(job, EventType::Enable);
                    self.make_ready(job);
                }
            } else {
                break;
            }
        }
    }

    fn on_retry_tick(&mut self) {
        self.queue
            .push(self.now + Micros::from_secs(30), Ev::RetryTick);
        // Re-enqueue a bounded batch of stalled tasks; the list is the
        // authoritative set, so this is O(batch), not O(all tasks).
        let batch = self.stalled.len().min(4096);
        for _ in 0..batch {
            let Some((j, t)) = self.stalled.pop_front() else {
                break;
            };
            if self.jobs[j].state == JobState::Ended
                || self.jobs[j].tasks[t].state != TaskState::Pending
                || !self.jobs[j].tasks[t].stalled
            {
                continue;
            }
            self.jobs[j].tasks[t].stalled = false;
            // No gen bump: the stall already orphaned the old entries,
            // and this push carries the current stamp.
            let priority = self.jobs[j].spec.priority;
            let gen = self.jobs[j].tasks[t].gen;
            self.pending
                .push(priority, self.jobs[j].ready_at, j, t, gen);
        }
        self.ensure_dispatch();
    }

    fn on_maintenance(&mut self, machine: usize) {
        // Reschedule the next sweep.
        let interval = self.cfg.maintenance_interval().as_micros() as f64;
        let gap = Exponential::with_mean(interval).sample(&mut self.rng);
        self.queue
            .push(self.now + Micros(gap as u64), Ev::Maintenance { machine });
        // A small share of sweeps are (rare) hardware failures that take
        // everything down, production included — the paper's residual
        // production evictions (<0.2% of prod collections, §5.2). Regular
        // OS upgrades only evict non-production work, and most of that
        // migrates or finishes before the upgrade lands.
        let hardware_failure = self.rng.random::<f64>() < 0.015;
        let victims: Vec<(usize, usize)> = self.machines[machine]
            .occupants
            .iter()
            .filter(|o| !o.is_alloc_instance && (hardware_failure || o.tier < Tier::Production))
            .map(|o| (o.owner, o.index))
            .collect();
        for (j, t) in victims {
            if hardware_failure || self.rng.random::<f64>() < 0.2 {
                self.evict_task_cause(j, t, "maintenance");
            }
        }
    }

    // ----- injected machine failures ----------------------------------

    /// A failure clock fires. Stale clocks (epoch mismatch after a
    /// correlated co-failure) and clocks for already-down machines are
    /// ignored; otherwise the machine — or, for a correlated failure,
    /// its whole domain — goes down.
    fn on_machine_fail(&mut self, machine: usize, epoch: u32) {
        // Take the injector so the fail path can borrow `self` freely;
        // nothing below touches `self.faults`.
        let Some(mut inj) = self.faults.take() else {
            return;
        };
        if inj.is_down(machine) || inj.epoch(machine) != epoch {
            self.faults = Some(inj);
            return;
        }
        let victims: Vec<usize> = if inj.draw_correlated() {
            inj.domain_of(machine)
                .filter(|&v| !inj.is_down(v))
                .collect()
        } else {
            vec![machine]
        };
        for v in victims {
            self.fail_machine(v, &mut inj);
        }
        self.faults = Some(inj);
    }

    /// Takes one machine down: resident tasks are lost or evicted, alloc
    /// reservations on it collapse, capacity drops to zero (so neither
    /// the naive scan nor the index can place onto it), a `Remove` is
    /// recorded, and the repair is scheduled.
    fn fail_machine(&mut self, m: usize, inj: &mut FaultInjector) {
        self.metrics.machine_failures += 1;
        inj.begin_failure(m, self.machines[m].capacity);

        // Resident tasks: a configured fraction vanish (`Lost` — the
        // paper-§9 artifact repair later reconstructs); the rest are
        // evicted and resubmitted like any other eviction (§5.2).
        let resident: Vec<(usize, usize)> = self
            .running
            .to_vec()
            .into_iter()
            .filter(|&(j, t)| {
                matches!(
                    self.jobs[j].tasks[t].state,
                    TaskState::Running { machine, .. } if machine == m
                )
            })
            .collect();
        for (j, t) in resident {
            if inj.draw_lost() {
                self.free_task(j, t);
                self.emit_task(j, t, EventType::Lost, None);
                self.jobs[j].tasks[t].state = TaskState::Dead;
                self.metrics.tasks_lost += 1;
            } else {
                self.evict_task_cause(j, t, "machine-failure");
            }
        }

        // Alloc-set reservations on the machine are lost with it (their
        // member tasks were already handled above — in-alloc tasks run
        // on the alloc's machine).
        for a in 0..self.allocs.len() {
            for i in 0..self.allocs[a].instances.len() {
                if self.allocs[a].instances[i].machine != Some(m) {
                    continue;
                }
                self.allocs[a].instances[i].machine = None;
                self.release_occupant(m, usize::MAX - a, i);
                let placed = self.allocs[a].instances[i].placed_at;
                let size = self.allocs[a].spec.instance_size;
                let hours = (self.now - placed).as_hours_f64();
                self.metrics.alloc_set_cpu_hours += size.cpu * hours;
                self.metrics.alloc_set_mem_hours += size.mem * hours;
                self.metrics
                    .add_allocation(Tier::Production, placed, self.now, size);
                self.emit_alloc_instance(a, i, EventType::Lost);
            }
        }

        // Zero capacity makes the machine infeasible for every request in
        // both placement paths, preserving naive == indexed bit-identity.
        self.machines[m].capacity = Resources::ZERO;
        if self.cfg.use_placement_index {
            self.index.on_machine_changed(m, &self.machines[m]);
        }
        self.trace.machine_events.push(MachineEvent {
            time: self.now,
            machine_id: self.machines[m].id,
            event_type: MachineEventType::Remove,
            capacity: Resources::ZERO,
            platform: inj.platform(m),
        });
        let back = self.now + inj.sample_repair_gap();
        self.queue.push(back, Ev::MachineRepair { machine: m });
    }

    /// A failed machine comes back: capacity is restored, an `Add` is
    /// recorded, and the machine's next failure clock starts.
    fn on_machine_repair(&mut self, machine: usize) {
        let Some(mut inj) = self.faults.take() else {
            return;
        };
        if let Some(cap) = inj.end_repair(machine) {
            self.machines[machine].capacity = cap;
            if self.cfg.use_placement_index {
                self.index
                    .on_machine_changed(machine, &self.machines[machine]);
            }
            self.trace.machine_events.push(MachineEvent::add(
                self.now,
                self.machines[machine].id,
                cap,
                inj.platform(machine),
            ));
            self.metrics.machine_repairs += 1;
            let next = self.now + inj.sample_failure_gap();
            let epoch = inj.epoch(machine);
            self.queue.push(next, Ev::MachineFail { machine, epoch });
        }
        self.faults = Some(inj);
    }

    fn on_usage_tick(&mut self) {
        if self.cfg.legacy_event_loop {
            self.on_usage_tick_legacy();
            return;
        }
        let window_end = self.now;
        let window_start = window_end.saturating_sub(self.cfg.usage_interval);
        self.queue
            .push(self.now + self.cfg.usage_interval, Ev::UsageTick);
        self.usage_seq += 1;

        // The tick works entirely out of reusable scratch buffers: the
        // running list copies out of the (already sorted) set, the
        // per-machine aggregates are full-fleet-sized but only `touched`
        // slots are written and re-zeroed, and the diurnal factor shared
        // by every task in the cell is computed once. Every arithmetic
        // result is bit-identical to the allocating walk in
        // [`CellSim::on_usage_tick_legacy`].
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.begin(self.machines.len());

        // Pass 1: raw demand per task and per machine. Memory limits are
        // hard (§2); CPU is work-conserving, but a machine's total CPU
        // consumption is physically capped at its capacity, so over-
        // subscribed machines throttle every occupant proportionally.
        self.running.collect_into(&mut scratch.running);
        for &(j, t) in &scratch.running {
            let TaskState::Running { machine, .. } = self.jobs[j].tasks[t].state else {
                scratch.demand.push(Resources::ZERO);
                continue;
            };
            let usage_proc = self.jobs[j].spec.tasks[t].usage;
            let limit = self.jobs[j].tasks[t].limit;
            // Memoized diurnal mean: keyed by (amplitude, phase) bits;
            // one entry in practice, so the linear scan is a hit on the
            // first slot.
            let dkey = (
                usage_proc.diurnal_amplitude.to_bits(),
                usage_proc.phase_hours.to_bits(),
            );
            let d = match scratch.diurnal.iter().find(|(k, _)| *k == dkey) {
                Some(&(_, d)) => d,
                None => {
                    let d = usage_proc.diurnal_mean(window_start, window_end);
                    scratch.diurnal.push((dkey, d));
                    d
                }
            };
            let mut avg = usage_proc.average_with_diurnal(d, window_start);
            avg.mem = avg.mem.min(limit.mem);
            scratch.demand.push(avg);
            scratch.machine_demand[machine] += avg;
            if !scratch.machine_dirty[machine] {
                scratch.machine_dirty[machine] = true;
                scratch.touched.push(machine);
            }
        }

        // Pass 2: record throttled usage, slack, autopilot, and samples.
        // The throttle is evaluated per task straight off the machine's
        // demand aggregate — the same IEEE expression the legacy walk
        // tabulates for every machine, skipping the fleet-sized table.
        for (k, &(j, t)) in scratch.running.iter().enumerate() {
            let TaskState::Running { machine, .. } = self.jobs[j].tasks[t].state else {
                continue;
            };
            let throttle = self.machines[machine].cpu_throttle(scratch.machine_demand[machine].cpu);
            let tier = self.jobs[j].spec.tier;
            let usage_proc = self.jobs[j].spec.tasks[t].usage;
            let limit = self.jobs[j].tasks[t].limit;
            // Pass 1 kept the window average's CPU raw (only memory is
            // clamped), so the window peak derives from it without
            // re-evaluating the usage process: `peak_cpu_over(ws, we)`
            // is literally `average_over(ws, we).cpu * peak_factor`.
            let raw_cpu = scratch.demand[k].cpu;
            let mut avg = scratch.demand[k];
            avg.cpu *= throttle;
            let peak_cpu = raw_cpu * usage_proc.peak_factor * throttle;

            // Charge usage from where the last tick (or the task's start)
            // left off, so partial windows are counted exactly once. For
            // the common full-window case the charge equals the pass-1
            // average (same clamp, same limit — bit-identical); only
            // tasks that started mid-window re-evaluate the process.
            let acc = self.jobs[j].tasks[t].accounted_until.max(window_start);
            if window_end > acc {
                let charge = if acc == window_start {
                    Resources::new(raw_cpu * throttle, scratch.demand[k].mem)
                } else {
                    let mut charge = usage_proc.average_over(acc, window_end);
                    charge.cpu *= throttle;
                    charge.mem = charge.mem.min(limit.mem);
                    charge
                };
                self.metrics.add_usage(tier, acc, window_end, charge);
            }
            self.jobs[j].tasks[t].accounted_until = window_end;
            scratch.machine_usage[machine] += avg;

            // Peak NCU slack (§8) under the limit currently in force.
            if limit.cpu > 0.0 {
                let slack = ((limit.cpu - peak_cpu).max(0.0)) / limit.cpu;
                let mode = self.jobs[j].tasks[t].autopilot.mode();
                self.metrics
                    .add_slack(mode, slack, self.usage_seq * 131 + t as u64);
            }

            // §5.1: memory fill by alloc membership.
            if limit.mem > 0.0 {
                let ratio = (avg.mem / limit.mem).min(1.0);
                if self.jobs[j].tasks[t].in_alloc.is_some() {
                    self.metrics.fill_in_alloc.push(ratio);
                } else {
                    self.metrics.fill_outside_alloc.push(ratio);
                }
            }

            // Autopilot adjusts the limit from the observed window peak.
            let new_limit = self.jobs[j].tasks[t]
                .autopilot
                .observe(Resources::new(peak_cpu, avg.mem), limit);
            if (new_limit.cpu - limit.cpu).abs() > 0.10 * limit.cpu.max(1e-9) {
                self.jobs[j].tasks[t].limit = new_limit;
                self.emit_task(j, t, EventType::UpdateRunning, Some(machine));
            } else {
                self.jobs[j].tasks[t].limit = new_limit;
            }

            // Downsampled raw usage records. The sampler is fed pass 1's
            // raw window average (what it would recompute through the
            // diurnal cosines), and the histogram sorts in a reused
            // scratch buffer — both bit-identical to the legacy calls.
            let key = splitmix64((j as u64) << 32 | t as u64) ^ self.usage_seq;
            if key.is_multiple_of(self.cfg.keep_usage_every) {
                usage_proc.window_cpu_samples_with_avg(
                    raw_cpu,
                    window_start,
                    24,
                    &mut scratch.samples,
                );
                self.trace.usage.push(UsageRecord {
                    start: window_start,
                    end: window_end,
                    instance_id: InstanceId::new(CollectionId(self.jobs[j].spec.id), t as u32),
                    machine_id: self.machines[machine].id,
                    avg_usage: avg,
                    max_usage: Resources::new(peak_cpu, avg.mem),
                    limit: self.jobs[j].tasks[t].limit,
                    cpu_histogram: CpuHistogram::from_samples_with(
                        &scratch.samples,
                        &mut scratch.hist,
                    ),
                });
            }
        }

        // Figure 6 snapshot.
        if !self.snapshot_done && window_start >= self.cfg.snapshot_window() {
            self.snapshot_done = true;
            self.metrics.machine_snapshots = self
                .machines
                .iter()
                .enumerate()
                .map(|(i, m)| MachineSnapshot {
                    // A failed (zero-capacity) machine is idle, not full.
                    cpu_utilization: if m.capacity.cpu > 0.0 {
                        (scratch.machine_usage[i].cpu / m.capacity.cpu).min(1.0)
                    } else {
                        0.0
                    },
                    mem_utilization: if m.capacity.mem > 0.0 {
                        (scratch.machine_usage[i].mem / m.capacity.mem).min(1.0)
                    } else {
                        0.0
                    },
                })
                .collect();
        }

        // Over-commit reclamation: a machine whose memory demand exceeds
        // its capacity must kill instances to free resources (§5.2's
        // fourth eviction cause). Lowest tiers go first. Untouched
        // machines aggregated zero usage and can never trip the check
        // (0 ≤ cap × 1.04), so only touched machines are visited —
        // sorted, because eviction order reaches the pending queue.
        scratch.touched.sort_unstable();
        for &mi in &scratch.touched {
            let usage = scratch.machine_usage[mi];
            // Small excursions ride out (kernel reclaim); sustained
            // overload forces evictions.
            if usage.mem <= self.machines[mi].capacity.mem * 1.04 {
                continue;
            }
            let mut excess = usage.mem - self.machines[mi].capacity.mem;
            // Production memory is protected: the reclamation falls on
            // lower tiers (Borg's eviction SLOs; in practice production
            // memory is reserved, not over-committed away).
            let mut victims: Vec<(Tier, usize, usize, f64)> = self.machines[mi]
                .occupants
                .iter()
                .filter(|o| {
                    !o.is_alloc_instance && !matches!(o.tier, Tier::Production | Tier::Monitoring)
                })
                .map(|o| (o.tier, o.owner, o.index, o.request.mem))
                .collect();
            victims.sort_by_key(|a| a.0);
            for (_, j, t, mem) in victims {
                if excess <= 0.0 {
                    break;
                }
                if matches!(self.jobs[j].tasks[t].state, TaskState::Running { .. }) {
                    self.evict_task_cause(j, t, "overcommit");
                    excess -= mem;
                }
            }
        }

        scratch.reset_machines();
        self.scratch = scratch;
    }

    /// The seed usage tick (`SimConfig::legacy_event_loop`): allocates
    /// the running snapshot, the per-task demand vector, the full-fleet
    /// throttle table, and the per-machine usage vector every tick, and
    /// evaluates the diurnal cosines per task. The reference arm for
    /// `loop_equivalence.rs`; [`CellSim::on_usage_tick`] must reproduce
    /// its outputs bit-for-bit.
    fn on_usage_tick_legacy(&mut self) {
        let window_end = self.now;
        let window_start = window_end.saturating_sub(self.cfg.usage_interval);
        self.queue
            .push(self.now + self.cfg.usage_interval, Ev::UsageTick);
        self.usage_seq += 1;

        // Pass 1: raw demand per task and per machine.
        let running: Vec<(usize, usize)> = self.running.to_vec();
        let mut demand: Vec<Resources> = Vec::with_capacity(running.len());
        let mut machine_demand: Vec<Resources> = vec![Resources::ZERO; self.machines.len()];
        for &(j, t) in &running {
            let TaskState::Running { machine, .. } = self.jobs[j].tasks[t].state else {
                demand.push(Resources::ZERO);
                continue;
            };
            let usage_proc = self.jobs[j].spec.tasks[t].usage;
            let limit = self.jobs[j].tasks[t].limit;
            let mut avg = usage_proc.average_over(window_start, window_end);
            avg.mem = avg.mem.min(limit.mem);
            demand.push(avg);
            machine_demand[machine] += avg;
        }
        let throttle: Vec<f64> = self
            .machines
            .iter()
            .zip(&machine_demand)
            .map(|(m, d)| {
                if d.cpu > m.capacity.cpu {
                    m.capacity.cpu / d.cpu
                } else {
                    1.0
                }
            })
            .collect();

        // Pass 2: record throttled usage, slack, autopilot, and samples.
        let mut machine_usage: Vec<Resources> = vec![Resources::ZERO; self.machines.len()];
        for (k, &(j, t)) in running.iter().enumerate() {
            let TaskState::Running { machine, .. } = self.jobs[j].tasks[t].state else {
                continue;
            };
            let tier = self.jobs[j].spec.tier;
            let usage_proc = self.jobs[j].spec.tasks[t].usage;
            let limit = self.jobs[j].tasks[t].limit;
            let raw_cpu = demand[k].cpu;
            let mut avg = demand[k];
            avg.cpu *= throttle[machine];
            let peak_cpu = raw_cpu * usage_proc.peak_factor * throttle[machine];

            let acc = self.jobs[j].tasks[t].accounted_until.max(window_start);
            if window_end > acc {
                let charge = if acc == window_start {
                    Resources::new(raw_cpu * throttle[machine], demand[k].mem)
                } else {
                    let mut charge = usage_proc.average_over(acc, window_end);
                    charge.cpu *= throttle[machine];
                    charge.mem = charge.mem.min(limit.mem);
                    charge
                };
                self.metrics.add_usage(tier, acc, window_end, charge);
            }
            self.jobs[j].tasks[t].accounted_until = window_end;
            machine_usage[machine] += avg;

            if limit.cpu > 0.0 {
                let slack = ((limit.cpu - peak_cpu).max(0.0)) / limit.cpu;
                let mode = self.jobs[j].tasks[t].autopilot.mode();
                self.metrics
                    .add_slack(mode, slack, self.usage_seq * 131 + t as u64);
            }

            if limit.mem > 0.0 {
                let ratio = (avg.mem / limit.mem).min(1.0);
                if self.jobs[j].tasks[t].in_alloc.is_some() {
                    self.metrics.fill_in_alloc.push(ratio);
                } else {
                    self.metrics.fill_outside_alloc.push(ratio);
                }
            }

            let new_limit = self.jobs[j].tasks[t]
                .autopilot
                .observe(Resources::new(peak_cpu, avg.mem), limit);
            if (new_limit.cpu - limit.cpu).abs() > 0.10 * limit.cpu.max(1e-9) {
                self.jobs[j].tasks[t].limit = new_limit;
                self.emit_task(j, t, EventType::UpdateRunning, Some(machine));
            } else {
                self.jobs[j].tasks[t].limit = new_limit;
            }

            let key = splitmix64((j as u64) << 32 | t as u64) ^ self.usage_seq;
            if key.is_multiple_of(self.cfg.keep_usage_every) {
                let samples = usage_proc.window_cpu_samples(window_start, window_end, 24);
                self.trace.usage.push(UsageRecord {
                    start: window_start,
                    end: window_end,
                    instance_id: InstanceId::new(CollectionId(self.jobs[j].spec.id), t as u32),
                    machine_id: self.machines[machine].id,
                    avg_usage: avg,
                    max_usage: Resources::new(peak_cpu, avg.mem),
                    limit: self.jobs[j].tasks[t].limit,
                    cpu_histogram: CpuHistogram::from_samples(&samples),
                });
            }
        }

        // Figure 6 snapshot.
        if !self.snapshot_done && window_start >= self.cfg.snapshot_window() {
            self.snapshot_done = true;
            self.metrics.machine_snapshots = self
                .machines
                .iter()
                .enumerate()
                .map(|(i, m)| MachineSnapshot {
                    cpu_utilization: if m.capacity.cpu > 0.0 {
                        (machine_usage[i].cpu / m.capacity.cpu).min(1.0)
                    } else {
                        0.0
                    },
                    mem_utilization: if m.capacity.mem > 0.0 {
                        (machine_usage[i].mem / m.capacity.mem).min(1.0)
                    } else {
                        0.0
                    },
                })
                .collect();
        }

        // Over-commit reclamation, walking every machine like the seed.
        for (mi, usage) in machine_usage.iter().enumerate() {
            if usage.mem <= self.machines[mi].capacity.mem * 1.04 {
                continue;
            }
            let mut excess = usage.mem - self.machines[mi].capacity.mem;
            let mut victims: Vec<(Tier, usize, usize, f64)> = self.machines[mi]
                .occupants
                .iter()
                .filter(|o| {
                    !o.is_alloc_instance && !matches!(o.tier, Tier::Production | Tier::Monitoring)
                })
                .map(|o| (o.tier, o.owner, o.index, o.request.mem))
                .collect();
            victims.sort_by_key(|a| a.0);
            for (_, j, t, mem) in victims {
                if excess <= 0.0 {
                    break;
                }
                if matches!(self.jobs[j].tasks[t].state, TaskState::Running { .. }) {
                    self.evict_task_cause(j, t, "overcommit");
                    excess -= mem;
                }
            }
        }
    }

    fn finalize(&mut self) {
        self.now = self.cfg.horizon;
        self.metrics.index = self.index.stats();
        // Close allocation intervals for still-running tasks (alive at
        // trace end, like real long-running services).
        let still_running: Vec<(usize, usize)> = self.running.to_vec();
        for (j, t) in still_running {
            if let TaskState::Running { since, .. } = self.jobs[j].tasks[t].state {
                let tier = self.jobs[j].spec.tier;
                let limit = self.jobs[j].tasks[t].limit;
                self.metrics.add_allocation(tier, since, self.now, limit);
                let acc = self.jobs[j].tasks[t].accounted_until;
                if self.now > acc {
                    let usage_proc = self.jobs[j].spec.tasks[t].usage;
                    let mut avg = usage_proc.average_over(acc, self.now);
                    avg.mem = avg.mem.min(limit.mem);
                    self.metrics.add_usage(tier, acc, self.now, avg);
                }
            }
        }
        for a in 0..self.allocs.len() {
            if self.allocs[a].active {
                let size = self.allocs[a].spec.instance_size;
                for i in 0..self.allocs[a].instances.len() {
                    if let Some(_mi) = self.allocs[a].instances[i].machine {
                        let placed = self.allocs[a].instances[i].placed_at;
                        let hours = (self.now - placed).as_hours_f64();
                        self.metrics.alloc_set_cpu_hours += size.cpu * hours;
                        self.metrics.alloc_set_mem_hours += size.mem * hours;
                        self.metrics
                            .add_allocation(Tier::Production, placed, self.now, size);
                    }
                }
            }
        }
        self.trace.sort();
    }

    /// Re-exports the end-of-run [`SimMetrics`] tallies and the
    /// placement-index counters as telemetry counters, so a single
    /// snapshot answers both "where did the time go" and "what did the
    /// scheduler do". Simulation-state tallies are deterministic-plane;
    /// index internals are engine-plane (legitimately different between
    /// the naive scan and the indexed path, even though the traces are
    /// bit-identical).
    fn export_metrics_telemetry(&mut self) {
        if !self.tel.is_enabled() {
            return;
        }
        let det = Plane::Deterministic;
        let m = &self.metrics;
        let scalars: [(&str, u64); 10] = [
            ("sim.metrics.preemptions", m.preemptions),
            ("sim.metrics.machine_failures", m.machine_failures),
            ("sim.metrics.machine_repairs", m.machine_repairs),
            ("sim.metrics.tasks_lost", m.tasks_lost),
            (
                "sim.metrics.transitions.collection",
                m.collection_transitions.total(),
            ),
            (
                "sim.metrics.transitions.instance",
                m.instance_transitions.total(),
            ),
            ("sim.metrics.delay_samples", m.delays.len() as u64),
            ("sim.metrics.slack_samples", m.slack.len() as u64),
            (
                "sim.metrics.machine_snapshots",
                m.machine_snapshots.len() as u64,
            ),
            (
                "sim.metrics.evicted_collections",
                m.evictions_by_collection.len() as u64,
            ),
        ];
        let stalls: Vec<(String, u64)> = m
            .stalls_by_tier
            .iter()
            .map(|(tier, &n)| (format!("sim.metrics.stalls.{tier}"), n))
            .collect();
        let evictions: Vec<(String, u64)> = m
            .evictions_by_cause
            .iter()
            .map(|(cause, &n)| (format!("sim.metrics.evictions.{cause}"), n))
            .collect();
        for (name, value) in scalars {
            self.tel.count(name, det, value);
        }
        for (name, value) in stalls.into_iter().chain(evictions) {
            self.tel.count(&name, det, value);
        }
        let ix = self.index.stats();
        let eng = Plane::Engine;
        self.tel.count("sim.index.cache_hits", eng, ix.cache_hits);
        self.tel
            .count("sim.index.negative_hits", eng, ix.negative_hits);
        self.tel
            .count("sim.index.cache_misses", eng, ix.cache_misses);
        self.tel
            .count("sim.index.leaves_scanned", eng, ix.leaves_scanned);
        self.tel
            .count("sim.index.preempt_probes", eng, ix.preempt_probes);
        self.tel
            .count("sim.index.bounded_probes", eng, ix.bounded_probes);
        self.tel
            .count("sim.index.shards", eng, self.index.shard_count() as u64);
        if self.index.shard_count() > 1 {
            // Per-shard probe counters expose load skew across the
            // contiguous ranges (engine plane: observability only,
            // never part of the deterministic contract).
            for (s, st) in self.index.per_shard_stats().into_iter().enumerate() {
                self.tel.count(
                    &format!("sim.index.shard{s}.cache_hits"),
                    eng,
                    st.cache_hits,
                );
                self.tel.count(
                    &format!("sim.index.shard{s}.cache_misses"),
                    eng,
                    st.cache_misses,
                );
                self.tel.count(
                    &format!("sim.index.shard{s}.leaves_scanned"),
                    eng,
                    st.leaves_scanned,
                );
                self.tel.count(
                    &format!("sim.index.shard{s}.preempt_probes"),
                    eng,
                    st.preempt_probes,
                );
            }
        }
    }
}

impl JobRt {
    fn tasks_sm_state(&self, task: usize) -> Option<borg_trace::state::InstanceState> {
        self.tasks[task].sm.state()
    }

    fn apply_task_sm(&mut self, task: usize, ev: EventType) -> bool {
        self.tasks[task].sm.apply(ev).is_ok()
    }
}

/// One simulated day, for telemetry's per-day grid rows.
const DAY_MICROS: u64 = 24 * 60 * 60 * 1_000_000;

/// Salt mixed into the config seed to derive the workload seed, so the
/// fleet sampling and the workload use independent streams.
const WORKLOAD_SEED_SALT: u64 = 0xB0B6_2019;

/// Salt for the placement index's bounded-probe permutation, independent
/// of both the fleet and workload streams.
const INDEX_SEED_SALT: u64 = 0x1D_0CE5;

/// Salt for the fault injector's stream, independent of all the above so
/// enabling faults never shifts the workload or placement draws.
const FAULT_SEED_SALT: u64 = 0xFA17_0B06;
