//! The scheduler's pending queue.
//!
//! Tasks awaiting placement are served highest-priority-first, FIFO within
//! a priority — Borg's greedy scheduling order (§2: the scheduler places
//! each task onto a suitable machine; production work goes first).
//!
//! Entries are *generation-stamped*: each carries the owning task's
//! generation counter as of the push. The cell bumps a task's generation
//! whenever outstanding entries must die (the task starts, stalls, or its
//! job ends), so a popped entry is live iff its stamp still matches —
//! one integer compare, no re-derivation of job/task state (DESIGN.md
//! §13). Stale entries stay in the heap and are discarded lazily at pop.

use borg_trace::priority::Priority;
use borg_trace::time::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A task waiting for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTask {
    /// Priority (higher first).
    pub priority: Priority,
    /// When the task became ready (earlier first within a priority).
    pub ready_at: Micros,
    /// Insertion sequence (deterministic tiebreak).
    pub seq: u64,
    /// Owning job index.
    pub job: usize,
    /// Task index within the job.
    pub task: usize,
    /// The task's generation when this entry was pushed; the entry is
    /// stale once the task's current generation moves past it.
    pub gen: u32,
}

impl Ord for PendingTask {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then earlier ready time, then
        // insertion order.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.ready_at.cmp(&self.ready_at))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PendingTask {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority-ordered pending queue.
#[derive(Debug, Default)]
pub struct PendingQueue {
    heap: BinaryHeap<PendingTask>,
    seq: u64,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> PendingQueue {
        PendingQueue::default()
    }

    /// Enqueues a task, stamped with its current generation.
    pub fn push(
        &mut self,
        priority: Priority,
        ready_at: Micros,
        job: usize,
        task: usize,
        gen: u32,
    ) {
        self.heap.push(PendingTask {
            priority,
            ready_at,
            seq: self.seq,
            job,
            task,
            gen,
        });
        self.seq += 1;
    }

    /// Dequeues the highest-priority task (live or stale; the caller
    /// compares the stamp against the task's current generation).
    pub fn pop(&mut self) -> Option<PendingTask> {
        self.heap.pop()
    }

    /// Number of waiting entries (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries wait.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_workload::usage_model::splitmix64;

    #[test]
    fn priority_order() {
        let mut q = PendingQueue::new();
        q.push(Priority::new(25), Micros::from_secs(1), 1, 0, 0);
        q.push(Priority::new(200), Micros::from_secs(2), 2, 0, 0);
        q.push(Priority::new(112), Micros::from_secs(0), 3, 0, 0);
        assert_eq!(q.pop().unwrap().job, 2);
        assert_eq!(q.pop().unwrap().job, 3);
        assert_eq!(q.pop().unwrap().job, 1);
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = PendingQueue::new();
        q.push(Priority::new(200), Micros::from_secs(5), 1, 0, 0);
        q.push(Priority::new(200), Micros::from_secs(5), 2, 0, 0);
        q.push(Priority::new(200), Micros::from_secs(3), 3, 0, 0);
        assert_eq!(q.pop().unwrap().job, 3, "earlier ready time first");
        assert_eq!(q.pop().unwrap().job, 1, "insertion order within ties");
        assert_eq!(q.pop().unwrap().job, 2);
    }

    #[test]
    fn len_and_empty() {
        let mut q = PendingQueue::new();
        assert!(q.is_empty());
        q.push(Priority::new(0), Micros::ZERO, 0, 0, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.pop().is_none());
    }

    /// Naive reference model for the property test: a plain vector whose
    /// "pop" scans for the max by the documented ordering.
    #[derive(Default)]
    struct ModelQueue {
        entries: Vec<PendingTask>,
        seq: u64,
    }

    impl ModelQueue {
        fn push(
            &mut self,
            priority: Priority,
            ready_at: Micros,
            job: usize,
            task: usize,
            gen: u32,
        ) {
            self.entries.push(PendingTask {
                priority,
                ready_at,
                seq: self.seq,
                job,
                task,
                gen,
            });
            self.seq += 1;
        }

        fn pop(&mut self) -> Option<PendingTask> {
            let best = self
                .entries
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.cmp(b).then(Ordering::Less))?
                .0;
            Some(self.entries.remove(best))
        }
    }

    /// Random push / pop / invalidate sequences: the heap with lazy
    /// stale-discard must pop exactly the live entries the naive model
    /// pops, in the same order.
    #[test]
    fn generation_stamps_match_naive_model() {
        const TASKS: usize = 24;
        for seed in 0..16u64 {
            let mut real = PendingQueue::new();
            let mut model = ModelQueue::default();
            // Current generation per task (what the cell would hold).
            let mut gens = [0u32; TASKS];
            let mut draw = {
                let mut state = splitmix64(seed ^ 0x9E37);
                move || {
                    state = splitmix64(state);
                    state
                }
            };
            for step in 0..400 {
                match draw() % 5 {
                    // Push (live now, maybe invalidated later).
                    0 | 1 => {
                        let task = (draw() as usize) % TASKS;
                        let priority = Priority::new((draw() % 4 * 100) as u16);
                        let ready = Micros(draw() % 8);
                        real.push(priority, ready, 0, task, gens[task]);
                        model.push(priority, ready, 0, task, gens[task]);
                    }
                    // Invalidate: bump a task's generation, orphaning
                    // every outstanding entry for it.
                    2 => {
                        let task = (draw() as usize) % TASKS;
                        gens[task] = gens[task].wrapping_add(1);
                    }
                    // Pop-until-live from both, compare.
                    _ => {
                        let live_real =
                            std::iter::from_fn(|| real.pop()).find(|p| p.gen == gens[p.task]);
                        let live_model =
                            std::iter::from_fn(|| model.pop()).find(|p| p.gen == gens[p.task]);
                        assert_eq!(
                            live_real, live_model,
                            "seed {seed}, step {step}: heap and model diverge"
                        );
                    }
                }
            }
            // Drain: the remaining live sequences must agree too.
            loop {
                let a = std::iter::from_fn(|| real.pop()).find(|p| p.gen == gens[p.task]);
                let b = std::iter::from_fn(|| model.pop()).find(|p| p.gen == gens[p.task]);
                assert_eq!(a, b, "seed {seed}: drain diverges");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
