//! The scheduler's pending queue.
//!
//! Tasks awaiting placement are served highest-priority-first, FIFO within
//! a priority — Borg's greedy scheduling order (§2: the scheduler places
//! each task onto a suitable machine; production work goes first).

use borg_trace::priority::Priority;
use borg_trace::time::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A task waiting for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTask {
    /// Priority (higher first).
    pub priority: Priority,
    /// When the task became ready (earlier first within a priority).
    pub ready_at: Micros,
    /// Insertion sequence (deterministic tiebreak).
    pub seq: u64,
    /// Owning job index.
    pub job: usize,
    /// Task index within the job.
    pub task: usize,
}

impl Ord for PendingTask {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then earlier ready time, then
        // insertion order.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.ready_at.cmp(&self.ready_at))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PendingTask {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority-ordered pending queue.
#[derive(Debug, Default)]
pub struct PendingQueue {
    heap: BinaryHeap<PendingTask>,
    seq: u64,
}

impl PendingQueue {
    /// An empty queue.
    pub fn new() -> PendingQueue {
        PendingQueue::default()
    }

    /// Enqueues a task.
    pub fn push(&mut self, priority: Priority, ready_at: Micros, job: usize, task: usize) {
        self.heap.push(PendingTask {
            priority,
            ready_at,
            seq: self.seq,
            job,
            task,
        });
        self.seq += 1;
    }

    /// Dequeues the highest-priority task.
    pub fn pop(&mut self) -> Option<PendingTask> {
        self.heap.pop()
    }

    /// Number of waiting tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no tasks wait.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order() {
        let mut q = PendingQueue::new();
        q.push(Priority::new(25), Micros::from_secs(1), 1, 0);
        q.push(Priority::new(200), Micros::from_secs(2), 2, 0);
        q.push(Priority::new(112), Micros::from_secs(0), 3, 0);
        assert_eq!(q.pop().unwrap().job, 2);
        assert_eq!(q.pop().unwrap().job, 3);
        assert_eq!(q.pop().unwrap().job, 1);
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = PendingQueue::new();
        q.push(Priority::new(200), Micros::from_secs(5), 1, 0);
        q.push(Priority::new(200), Micros::from_secs(5), 2, 0);
        q.push(Priority::new(200), Micros::from_secs(3), 3, 0);
        assert_eq!(q.pop().unwrap().job, 3, "earlier ready time first");
        assert_eq!(q.pop().unwrap().job, 1, "insertion order within ties");
        assert_eq!(q.pop().unwrap().job, 2);
    }

    #[test]
    fn len_and_empty() {
        let mut q = PendingQueue::new();
        assert!(q.is_empty());
        q.push(Priority::new(0), Micros::ZERO, 0, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.pop().is_none());
    }
}
