//! A persistent ownership-transfer worker pool for deterministic fan-out.
//!
//! `std::thread::scope` is the right tool for coarse one-shot parallelism
//! (see `borg_query::parallel::map_blocks`), but a placement probe runs
//! millions of times per simulated month and cannot afford a thread spawn
//! per call. [`WorkerPool`] keeps a fixed set of workers alive for the
//! lifetime of its owner and moves *owned* jobs to them over channels —
//! no scoped borrows, no locks, no unsafe code, no new dependencies:
//!
//! * Every job is tagged with its batch position, and results land in a
//!   slot vector by tag, so the output order is the input order no
//!   matter which worker finished first. Scheduling can never change
//!   what a batch returns — the same discipline as `map_blocks`'s fixed
//!   partitioning + ordered merge, which keeps parallel callers
//!   bit-identical to their sequential counterparts (DESIGN.md §14).
//! * The calling thread is a worker too: [`WorkerPool::run_batch`]
//!   dispatches jobs `1..` and computes job `0` inline, so a pool of
//!   `n` workers uses `n + 1` cores, and a pool of zero workers
//!   degenerates to a plain sequential loop over the batch (the
//!   single-core / K=1 path).
//! * Dropping the pool closes the job channels; workers observe the
//!   hangup, drain, and exit, and `Drop` joins them.
//!
//! Jobs must be owned values (`J: Send + 'static`): the sharded
//! placement layer moves whole per-shard `PlacementIndex` values into
//! jobs and back out with the results (a handful of `Vec` headers per
//! move), and `multi::run_cells_parallel` moves `(profile, config)`
//! pairs. A panicking job is caught inside the worker loop
//! (`catch_unwind`), carried back over the result channel, and
//! re-raised on the caller **after** the whole batch has drained: the
//! lowest-tagged panic wins, so which panic the caller observes does
//! not depend on scheduling, the channels never hold stale tags, and
//! the pool stays usable (and `Drop` joins cleanly) afterwards.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A fixed set of worker threads executing `fn(J) -> R` jobs moved to
/// them by value. See the module docs for the determinism argument.
pub struct WorkerPool<J: Send + 'static, R: Send + 'static> {
    /// One job channel per worker; jobs are dealt round-robin.
    job_txs: Vec<Sender<(usize, J)>>,
    /// Tagged results from every worker; `Err` carries a caught panic.
    results: Receiver<(usize, std::thread::Result<R>)>,
    handles: Vec<JoinHandle<()>>,
    run: fn(J) -> R,
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawns `workers` threads running `run`. Zero workers is valid
    /// and makes every batch run inline on the caller.
    pub fn new(workers: usize, run: fn(J) -> R) -> WorkerPool<J, R> {
        let (res_tx, results) = channel::<(usize, std::thread::Result<R>)>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<(usize, J)>();
            let res_tx = res_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("borg-pool-{w}"))
                .spawn(move || {
                    while let Ok((tag, job)) = rx.recv() {
                        let out = catch_unwind(AssertUnwindSafe(|| run(job)));
                        if res_tx.send((tag, out)).is_err() {
                            break; // Pool dropped mid-flight.
                        }
                    }
                })
                // lint: library-panic-ok (spawn failure is unrecoverable resource exhaustion)
                .expect("spawn pool worker");
            job_txs.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            job_txs,
            results,
            handles,
            run,
        }
    }

    /// Number of spawned worker threads (the calling thread adds one).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one batch: job `i`'s result is at index `i` of the returned
    /// vector, regardless of which thread computed it. The caller
    /// computes job `0` inline (and the whole batch when the pool has
    /// no workers or the batch has one job).
    pub fn run_batch(&mut self, jobs: Vec<J>) -> Vec<R> {
        if self.job_txs.is_empty() || jobs.len() <= 1 {
            return jobs.into_iter().map(self.run).collect();
        }
        let n = jobs.len();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut first = None;
        for (tag, job) in jobs.into_iter().enumerate() {
            if tag == 0 {
                first = Some(job);
                continue;
            }
            let w = (tag - 1) % self.job_txs.len();
            // lint: library-panic-ok (workers only exit after this sender drops)
            self.job_txs[w].send((tag, job)).expect("pool worker alive");
        }
        // lint: library-panic-ok (the tag == 0 arm above always ran)
        let first = first.expect("first job reserved for the caller");
        // Collect every outcome before surfacing any panic: the result
        // channel must be fully drained, or the next batch would receive
        // this batch's stale tags and fill the wrong slots.
        let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        let run = self.run;
        match catch_unwind(AssertUnwindSafe(|| run(first))) {
            Ok(r) => slots[0] = Some(r),
            Err(p) => panics.push((0, p)),
        }
        for _ in 1..n {
            // lint: library-panic-ok (workers catch job panics and never exit early)
            let (tag, r) = self.results.recv().expect("pool worker alive");
            match r {
                Ok(r) => slots[tag] = Some(r),
                Err(p) => panics.push((tag, p)),
            }
        }
        if !panics.is_empty() {
            // Arrival order is scheduling-dependent; the lowest job tag
            // is not. Re-raise that one so the surfaced panic is
            // deterministic for a given batch.
            panics.sort_by_key(|(tag, _)| *tag);
            let (_, payload) = panics.swap_remove(0);
            resume_unwind(payload);
        }
        slots
            .into_iter()
            // lint: library-panic-ok (tags 0..n were each dispatched exactly once)
            .map(|s| s.expect("every job produced a result"))
            .collect()
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for WorkerPool<J, R> {
    fn drop(&mut self) {
        self.job_txs.clear(); // Hang up; workers drain and exit.
        for h in self.handles.drain(..) {
            // Job panics are caught in the worker loop and re-raised by
            // run_batch; never double-panic during drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: u64) -> u64 {
        x * x
    }

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [0, 1, 3, 7] {
            let mut pool = WorkerPool::new(workers, square as fn(u64) -> u64);
            let jobs: Vec<u64> = (0..50).collect();
            let out = pool.run_batch(jobs);
            assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let mut pool = WorkerPool::new(2, square as fn(u64) -> u64);
        assert!(pool.run_batch(Vec::new()).is_empty());
        assert_eq!(pool.run_batch(vec![9]), vec![81]);
    }

    #[test]
    fn pool_survives_many_batches() {
        // The persistence property: one spawn, many probes.
        let mut pool = WorkerPool::new(2, square as fn(u64) -> u64);
        assert_eq!(pool.workers(), 2);
        for round in 0..200u64 {
            let out = pool.run_batch(vec![round, round + 1, round + 2]);
            assert_eq!(
                out,
                vec![
                    round * round,
                    (round + 1) * (round + 1),
                    (round + 2) * (round + 2)
                ]
            );
        }
    }

    #[test]
    fn worker_panic_surfaces_and_pool_stays_usable() {
        // Regression: a panicking job used to kill its worker with jobs
        // still queued on its channel, leaving run_batch blocked on
        // recv forever. The panic must surface on the caller and the
        // pool must keep working afterwards.
        fn boom(x: u64) -> u64 {
            if x % 10 == 3 {
                panic!("job rejected: {x}");
            }
            x * x
        }
        let mut pool = WorkerPool::new(3, boom as fn(u64) -> u64);
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch((0..20).collect())))
            .expect_err("a panicking job must surface");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        // Jobs 3 and 13 both panic; the lowest tag wins deterministically.
        assert_eq!(msg, "job rejected: 3");
        // The batch fully drained, so the pool is immediately reusable.
        let out = pool.run_batch(vec![1, 2, 4]);
        assert_eq!(out, vec![1, 4, 16]);
        // Dropping the pool at end of scope must join cleanly (the test
        // would hang here before the fix).
    }

    #[test]
    fn inline_job_panic_still_drains_dispatched_work() {
        // Job 0 runs on the caller; its panic must not strand the
        // results the workers are about to send.
        fn boom_zero(x: u64) -> u64 {
            if x == 0 {
                panic!("zero");
            }
            x
        }
        let mut pool = WorkerPool::new(2, boom_zero as fn(u64) -> u64);
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch((0..8).collect())))
            .expect_err("job 0 panics");
        assert_eq!(err.downcast_ref::<&str>().copied(), Some("zero"));
        assert_eq!(pool.run_batch(vec![5, 6]), vec![5, 6]);
    }

    #[test]
    fn owned_state_round_trips_through_workers() {
        // The ownership-transfer pattern the shard layer relies on:
        // move a value in, get it back with the answer.
        fn push(mut v: Vec<u64>) -> Vec<u64> {
            let n = v.iter().sum();
            v.push(n);
            v
        }
        let mut pool = WorkerPool::new(3, push as fn(Vec<u64>) -> Vec<u64>);
        let jobs: Vec<Vec<u64>> = (0..8).map(|s| vec![s, s + 1]).collect();
        let out = pool.run_batch(jobs);
        for (s, v) in out.into_iter().enumerate() {
            let s = s as u64;
            assert_eq!(v, vec![s, s + 1, 2 * s + 1]);
        }
    }
}
