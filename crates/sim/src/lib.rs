#![warn(missing_docs)]

//! Discrete-event Borg cell simulator.
//!
//! This crate reproduces, at reduced scale, the scheduling machinery whose
//! *observable outcomes* the paper's trace records: a logically centralized
//! scheduler placing tasks onto heterogeneous machines (best-fit with
//! tier-discounted over-commitment), priority preemption, a batch-admission
//! queue for best-effort batch jobs (§3), alloc sets hosting other jobs'
//! tasks (§5.1), parent-child kill cascades (§5.2), maintenance and
//! over-commit evictions, task retries (the §6.2 rescheduling churn), and
//! Autopilot-style vertical scaling (§8).
//!
//! The simulator consumes a [`borg_workload`] workload and emits a
//! [`borg_trace::trace::Trace`] in the 2019 v3 schema, plus pre-aggregated
//! [`metrics::SimMetrics`] for the analyses that would otherwise need the
//! full 2.8 TiB of usage samples.
//!
//! # Examples
//!
//! ```
//! use borg_sim::{CellSim, SimConfig};
//! use borg_workload::cells::CellProfile;
//!
//! let profile = CellProfile::cell_2019('a');
//! let cfg = SimConfig::tiny_for_tests(42);
//! let outcome = CellSim::run_cell(&profile, &cfg);
//! assert!(!outcome.trace.collection_events.is_empty());
//! ```

pub mod autopilot;
pub mod cell;
pub mod config;
pub mod event;
pub mod faults;
pub mod fxhash;
pub mod index;
pub mod machine;
pub mod metrics;
pub mod multi;
pub mod pending;
pub mod pool;
pub mod runset;
pub mod shard;

pub use cell::{CellOutcome, CellSim};
pub use config::SimConfig;
pub use faults::{
    corrupt_trace, write_trace_dir_lossy, CorruptionConfig, FaultConfig, FaultInjector,
    FaultLedger, TableFaults,
};
pub use index::PlacementIndex;
pub use metrics::SimMetrics;
pub use multi::run_cells_parallel;
pub use pool::WorkerPool;
pub use shard::ShardedPlacement;
