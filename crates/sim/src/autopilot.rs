//! Autopilot: vertical autoscaling of task limits (§8).
//!
//! Autopilot "makes use of historical data … and then continually adjusts
//! the resource limits as the job executes so as to minimize slack". The
//! model here tracks a moving window of observed per-window peaks and sets
//! the limit to the recent peak times a safety margin — tight for fully
//! autoscaled tasks, looser for constrained ones, and untouched for manual
//! tasks. Figure 14's slack ordering (full < constrained < manual)
//! emerges from the margins.

use borg_trace::collection::VerticalScalingMode;
use borg_trace::resources::Resources;

/// Number of recent windows whose peaks inform the limit.
const WINDOW: usize = 6;

/// Per-task autopilot state.
#[derive(Debug, Clone)]
pub struct Autopilot {
    mode: VerticalScalingMode,
    /// The user-specified original request (the floor for `Constrained`).
    original: Resources,
    /// Ring buffer of recent per-window peak usage.
    peaks: [Resources; WINDOW],
    filled: usize,
    next: usize,
}

impl Autopilot {
    /// Creates autopilot state for a task.
    pub fn new(mode: VerticalScalingMode, original_request: Resources) -> Autopilot {
        Autopilot {
            mode,
            original: original_request,
            peaks: [Resources::ZERO; WINDOW],
            filled: 0,
            next: 0,
        }
    }

    /// The scaling mode.
    pub fn mode(&self) -> VerticalScalingMode {
        self.mode
    }

    /// Observes one window's peak usage and returns the limit that should
    /// now be in force.
    pub fn observe(&mut self, window_peak: Resources, current_limit: Resources) -> Resources {
        self.peaks[self.next] = window_peak;
        self.next = (self.next + 1) % WINDOW;
        self.filled = (self.filled + 1).min(WINDOW);
        self.recommend(current_limit)
    }

    /// The recommended limit given the observation history.
    pub fn recommend(&self, current_limit: Resources) -> Resources {
        match self.mode {
            VerticalScalingMode::Off => current_limit,
            VerticalScalingMode::Full | VerticalScalingMode::Constrained => {
                if self.filled == 0 {
                    return current_limit;
                }
                let peak = self.peaks[..self.filled]
                    .iter()
                    .fold(Resources::ZERO, |a, b| a.max(b));
                let margin = match self.mode {
                    VerticalScalingMode::Full => 1.10,
                    _ => 1.30,
                };
                let mut rec = peak * margin;
                if self.mode == VerticalScalingMode::Constrained {
                    // Constrained autoscaling may not shrink below 40% of
                    // the user's request (the user-provided bound).
                    rec = rec.max(&(self.original * 0.4));
                }
                // Never scale above the original request: Autopilot's goal
                // here is reclaiming slack, not growing limits.
                rec.min(&self.original)
            }
        }
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn run(mode: VerticalScalingMode, peaks: &[f64], original: f64) -> f64 {
        let mut ap = Autopilot::new(mode, Resources::new(original, original));
        let mut limit = Resources::new(original, original);
        for &p in peaks {
            limit = ap.observe(Resources::new(p, p), limit);
        }
        limit.cpu
    }

    #[test]
    fn off_never_changes() {
        assert_eq!(run(VerticalScalingMode::Off, &[0.1, 0.2, 0.05], 1.0), 1.0);
    }

    #[test]
    fn full_tracks_peak_with_tight_margin() {
        let lim = run(VerticalScalingMode::Full, &[0.1, 0.2, 0.15], 1.0);
        assert!((lim - 0.22).abs() < 1e-9, "limit = {lim}");
    }

    #[test]
    fn constrained_respects_floor() {
        // Peak 0.1 × 1.3 = 0.13, but the floor is 0.4 × original.
        let lim = run(VerticalScalingMode::Constrained, &[0.1], 1.0);
        assert!((lim - 0.4).abs() < 1e-9, "limit = {lim}");
    }

    #[test]
    fn never_exceeds_original() {
        let lim = run(VerticalScalingMode::Full, &[5.0], 1.0);
        assert_eq!(lim, 1.0);
    }

    #[test]
    fn window_forgets_old_peaks() {
        // One early spike followed by many quiet windows: the limit comes
        // back down once the spike leaves the window.
        let mut peaks = vec![0.8];
        peaks.extend(vec![0.1; WINDOW]);
        let lim = run(VerticalScalingMode::Full, &peaks, 1.0);
        assert!((lim - 0.11).abs() < 1e-9, "limit = {lim}");
    }

    #[test]
    fn slack_ordering_matches_figure_14() {
        // Same usage trace, three modes: full reclaims the most slack.
        let peaks = [0.2, 0.25, 0.22, 0.18];
        let full = run(VerticalScalingMode::Full, &peaks, 1.0);
        let constrained = run(VerticalScalingMode::Constrained, &peaks, 1.0);
        let off = run(VerticalScalingMode::Off, &peaks, 1.0);
        assert!(full < constrained && constrained < off);
    }

    #[test]
    fn no_observations_keeps_limit() {
        let ap = Autopilot::new(VerticalScalingMode::Full, Resources::new(1.0, 1.0));
        assert_eq!(
            ap.recommend(Resources::new(0.7, 0.7)),
            Resources::new(0.7, 0.7)
        );
    }
}
