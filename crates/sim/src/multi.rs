//! Running many cells in parallel.
//!
//! The 2019 trace covers eight cells; [`run_cells_parallel`] simulates
//! them concurrently (the cells are independent systems, as in the real
//! fleet) and returns the outcomes in profile order. Cells queue onto a
//! [`WorkerPool`] capped at available parallelism — a 100-profile policy
//! sweep no longer spawns 100 threads — and the pool's tag-to-slot
//! discipline keeps the output order (and every outcome's bits)
//! independent of scheduling.

use crate::cell::{CellOutcome, CellSim};
use crate::config::SimConfig;
use crate::pool::WorkerPool;
use borg_workload::cells::CellProfile;

/// One cell simulation moved to a pool worker by value.
fn run_cell_job((profile, cfg): (CellProfile, SimConfig)) -> CellOutcome {
    CellSim::run_cell(&profile, &cfg)
}

/// Simulates every profile concurrently on a worker pool capped at
/// available parallelism, seeding each cell deterministically from
/// `cfg.seed` and its index. Results are in the same order as
/// `profiles`, bit-identical to running the cells sequentially with the
/// same derived seeds.
pub fn run_cells_parallel(profiles: &[CellProfile], cfg: &SimConfig) -> Vec<CellOutcome> {
    let jobs: Vec<(CellProfile, SimConfig)> = profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut cell_cfg = cfg.clone();
            cell_cfg.seed = cfg.seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9));
            (profile.clone(), cell_cfg)
        })
        .collect();
    // The calling thread works too, so `cores - 1` workers saturate the
    // host; fewer jobs than that need even fewer threads.
    let par = std::thread::available_parallelism().map_or(1, usize::from);
    let workers = par.saturating_sub(1).min(jobs.len().saturating_sub(1));
    let mut pool = WorkerPool::new(
        workers,
        run_cell_job as fn((CellProfile, SimConfig)) -> CellOutcome,
    );
    pool.run_batch(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_trace::time::Micros;

    #[test]
    fn parallel_matches_sequential() {
        let profiles = vec![CellProfile::cell_2019('a'), CellProfile::cell_2019('b')];
        let mut cfg = SimConfig::tiny_for_tests(7);
        cfg.horizon = Micros::from_hours(6);
        let parallel = run_cells_parallel(&profiles, &cfg);
        assert_eq!(parallel.len(), 2);
        // Sequential runs with the same derived seeds must match exactly:
        // every trace table byte for byte, and the full metrics struct —
        // counting events would miss reordered or corrupted records.
        for (i, outcome) in parallel.iter().enumerate() {
            let mut cell_cfg = cfg.clone();
            cell_cfg.seed = cfg.seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9));
            let seq = CellSim::run_cell(&profiles[i], &cell_cfg);
            assert_eq!(
                seq.trace.machine_events, outcome.trace.machine_events,
                "cell {i}: machine events diverge"
            );
            assert_eq!(
                seq.trace.collection_events, outcome.trace.collection_events,
                "cell {i}: collection events diverge"
            );
            assert_eq!(
                seq.trace.instance_events, outcome.trace.instance_events,
                "cell {i}: instance events diverge"
            );
            assert_eq!(
                seq.trace.usage, outcome.trace.usage,
                "cell {i}: usage records diverge"
            );
            assert_eq!(seq.metrics, outcome.metrics, "cell {i}: metrics diverge");
        }
    }

    #[test]
    fn cells_get_distinct_seeds() {
        let profiles = vec![CellProfile::cell_2019('a'), CellProfile::cell_2019('a')];
        let mut cfg = SimConfig::tiny_for_tests(9);
        cfg.horizon = Micros::from_hours(6);
        let outcomes = run_cells_parallel(&profiles, &cfg);
        // Same profile, different seeds → different workloads.
        assert_ne!(
            outcomes[0].trace.collection_events.len(),
            outcomes[1].trace.collection_events.len()
        );
    }

    #[test]
    fn more_profiles_than_cores_still_all_run() {
        // The cap satellite: ten cells must not mean ten threads, and
        // queueing them through the pool must keep profile order.
        let profiles: Vec<CellProfile> = "abcd"
            .chars()
            .cycle()
            .take(10)
            .map(CellProfile::cell_2019)
            .collect();
        let mut cfg = SimConfig::tiny_for_tests(3);
        cfg.horizon = Micros::from_hours(2);
        cfg.scale = 0.001;
        let outcomes = run_cells_parallel(&profiles, &cfg);
        assert_eq!(outcomes.len(), 10);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                o.trace.cell_name, profiles[i].name,
                "outcome {i} out of profile order"
            );
        }
    }
}
