//! Running many cells in parallel.
//!
//! The 2019 trace covers eight cells; [`run_cells_parallel`] simulates
//! each on its own thread (the cells are independent systems, as in the
//! real fleet) and returns the outcomes in profile order.

use crate::cell::{CellOutcome, CellSim};
use crate::config::SimConfig;
use borg_workload::cells::CellProfile;

/// Simulates every profile in parallel, one thread per cell, seeding each
/// cell deterministically from `cfg.seed` and its index. Results are in
/// the same order as `profiles`.
pub fn run_cells_parallel(profiles: &[CellProfile], cfg: &SimConfig) -> Vec<CellOutcome> {
    let mut slots: Vec<Option<CellOutcome>> = (0..profiles.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, (profile, slot)) in profiles.iter().zip(slots.iter_mut()).enumerate() {
            let mut cell_cfg = cfg.clone();
            cell_cfg.seed = cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9);
            scope.spawn(move || {
                *slot = Some(CellSim::run_cell(profile, &cell_cfg));
            });
        }
    });
    slots
        .into_iter()
        // lint: library-panic-ok (scope joined every spawned cell; each filled its slot)
        .map(|s| s.expect("every cell produced an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_trace::time::Micros;

    #[test]
    fn parallel_matches_sequential() {
        let profiles = vec![CellProfile::cell_2019('a'), CellProfile::cell_2019('b')];
        let mut cfg = SimConfig::tiny_for_tests(7);
        cfg.horizon = Micros::from_hours(6);
        let parallel = run_cells_parallel(&profiles, &cfg);
        assert_eq!(parallel.len(), 2);
        // Sequential runs with the same derived seeds must match exactly.
        for (i, outcome) in parallel.iter().enumerate() {
            let mut cell_cfg = cfg.clone();
            cell_cfg.seed = cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9);
            let seq = CellSim::run_cell(&profiles[i], &cell_cfg);
            assert_eq!(
                seq.trace.collection_events.len(),
                outcome.trace.collection_events.len()
            );
            assert_eq!(
                seq.trace.instance_events.len(),
                outcome.trace.instance_events.len()
            );
        }
    }

    #[test]
    fn cells_get_distinct_seeds() {
        let profiles = vec![CellProfile::cell_2019('a'), CellProfile::cell_2019('a')];
        let mut cfg = SimConfig::tiny_for_tests(9);
        cfg.horizon = Micros::from_hours(6);
        let outcomes = run_cells_parallel(&profiles, &cfg);
        // Same profile, different seeds → different workloads.
        assert_ne!(
            outcomes[0].trace.collection_events.len(),
            outcomes[1].trace.collection_events.len()
        );
    }
}
