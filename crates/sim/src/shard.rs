//! Sharded within-cell placement: K per-shard [`PlacementIndex`]
//! instances over contiguous machine ranges, probed in parallel on a
//! persistent [`WorkerPool`], with a deterministic combining layer
//! (DESIGN.md §14).
//!
//! The paper's cells run ~12k machines; a single `PlacementIndex` scans
//! them on one thread. This layer splits the fleet into K near-equal
//! contiguous ranges — shard `s` owns global machines
//! `[offsets[s], offsets[s+1])` — each backed by a full index (score
//! cache, scan mirror, preemption tree) over its local range. Probes
//! fan out; mutations route to the owning shard.
//!
//! # Determinism contract
//!
//! Exact mode stays **bit-identical** to the single sequential index
//! (and therefore to the naive full scan) for every shard count:
//!
//! * Per-machine scores are computed by [`PlacementIndex`]'s mirror
//!   rows with the identical float ops regardless of which shard holds
//!   the machine — sharding moves a row to a different `Vec`, never
//!   changes its bits or its evaluation.
//! * Each shard reports the lexicographic `(score, machine_index)`
//!   minimum of its range; [`combine_winners`] reduces the per-shard
//!   winners **in fixed shard order** under the same lexicographic
//!   tie-break. Shards partition the fleet, so this two-level minimum
//!   equals the flat scan's minimum, bit for bit.
//! * Preemption probes enumerate each shard's bound-passing tree
//!   leaves on workers, but the *exact* victim checks run on the
//!   calling thread in ascending global machine order with early exit
//!   — the first machine that passes is the one the naive walk
//!   returns.
//! * The pool tags every job with its batch position and the caller
//!   reassembles results by tag, so thread scheduling can reorder
//!   *when* shards finish, never *which* answer wins.
//!
//! K = 1 (the default on small fleets and single-core hosts — see
//! `SimConfig::effective_shards`) delegates every call straight to the
//! untouched single-index code path.

use crate::index::{IndexStats, PlacementIndex};
use crate::machine::{discount, Machine};
use crate::pool::WorkerPool;
use borg_trace::priority::Tier;
use borg_trace::resources::Resources;

/// Stride deriving per-shard index seeds from the cell's placement
/// seed; shard 0 keeps the cell seed itself, so K=1 is byte-for-byte
/// the pre-shard construction.
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// One unit of shard work moved to a pool worker by value. The shard's
/// whole index travels with the job (a handful of `Vec` headers) and
/// comes home inside [`ShardDone`].
enum ShardJob {
    /// Cold best-fit: full mirror scan + cache store on the shard.
    Scan {
        shard: PlacementIndex,
        request: Resources,
        tier: Tier,
    },
    /// Preemption candidate enumeration over the (pre-flushed) shard
    /// tree.
    Preempt {
        shard: PlacementIndex,
        needed: Resources,
        tier: Tier,
    },
}

/// A shard coming home from a worker with its answer.
struct ShardDone {
    shard: PlacementIndex,
    /// `Scan` answer, in shard-local machine indices.
    best: Option<(usize, f64)>,
    /// `Preempt` answer: bound-passing leaves, ascending, shard-local.
    candidates: Vec<u32>,
}

/// The pool worker function: pure per-shard work, no shared state.
fn run_shard_job(job: ShardJob) -> ShardDone {
    match job {
        ShardJob::Scan {
            mut shard,
            request,
            tier,
        } => {
            let best = shard.scan_best_fit(request, tier);
            ShardDone {
                shard,
                best,
                candidates: Vec::new(),
            }
        }
        ShardJob::Preempt {
            mut shard,
            needed,
            tier,
        } => {
            let candidates = shard.preempt_candidates(needed, tier);
            ShardDone {
                shard,
                best: None,
                candidates,
            }
        }
    }
}

/// Reduces per-shard best-fit winners (already translated to *global*
/// machine indices) to the fleet winner.
///
/// **The blessed combining helper**: an explicit loop in fixed shard
/// order under the lexicographic `(score, machine_index)` order — the
/// only reduction shape borg-lint permits over parallel float results
/// in a bit-identity file (D3 flags `.reduce(` / `.min_by(` here; see
/// `crates/lint`). Every shard reports its own lexicographic minimum
/// and shards partition the fleet, so the minimum over per-shard
/// winners equals the flat sequential scan's winner, bit for bit.
// IEEE equality (not total_cmp) is load-bearing: the sequential scan
// ties ±0.0 together and keeps the lower machine index, and this
// reduction must preserve that ordering. Feasible scores are finite,
// never NaN.
#[allow(clippy::float_cmp)]
pub(crate) fn combine_winners(per_shard: &[Option<(usize, f64)>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for cand in per_shard {
        let Some((mi, score)) = *cand else { continue };
        let better = match best {
            None => true,
            Some((best_mi, best_score)) => {
                score < best_score || (score == best_score && mi < best_mi)
            }
        };
        if better {
            best = Some((mi, score));
        }
    }
    best
}

/// K placement-index shards over contiguous machine ranges with a
/// deterministic combining layer. Owned by the cell simulator exactly
/// as the single [`PlacementIndex`] used to be; see the module docs.
pub struct ShardedPlacement {
    shards: Vec<PlacementIndex>,
    /// `offsets[s]` is shard `s`'s first global machine index;
    /// `offsets[K]` is the fleet size.
    offsets: Vec<usize>,
    /// Shard-size arithmetic: the first `rem` shards hold `base + 1`
    /// machines, the rest `base`.
    base: usize,
    rem: usize,
    /// Persistent workers for K > 1 on multi-core hosts; `None` means
    /// every fan-out runs inline on the caller (same answers).
    pool: Option<WorkerPool<ShardJob, ShardDone>>,
}

impl ShardedPlacement {
    /// Builds `shards` indices over near-equal contiguous ranges of the
    /// fleet (clamped to `[1, machines.len()]`). `seed` fixes each
    /// shard's bounded-probe order; shard 0 reuses it unchanged so K=1
    /// reproduces the pre-shard index exactly.
    pub fn new(machines: &[Machine], seed: u64, shards: usize) -> ShardedPlacement {
        let n = machines.len();
        let k = shards.clamp(1, n.max(1));
        let base = n / k;
        let rem = n % k;
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0usize);
        let mut built = Vec::with_capacity(k);
        let mut start = 0usize;
        for s in 0..k {
            let end = start + base + usize::from(s < rem);
            built.push(PlacementIndex::new(
                &machines[start..end],
                seed.wrapping_add((s as u64).wrapping_mul(SHARD_SEED_STRIDE)),
            ));
            offsets.push(end);
            start = end;
        }
        // Workers beyond the shard count or the host's cores would only
        // idle; the calling thread always acts as one more worker.
        let pool = if k > 1 {
            let par = std::thread::available_parallelism().map_or(1, usize::from);
            let workers = (k - 1).min(par.saturating_sub(1));
            (workers > 0)
                .then(|| WorkerPool::new(workers, run_shard_job as fn(ShardJob) -> ShardDone))
        } else {
            None
        };
        ShardedPlacement {
            shards: built,
            offsets,
            base,
            rem,
            pool,
        }
    }

    /// Number of shards (K).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning global machine `mi`.
    fn shard_of(&self, mi: usize) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let cut = self.rem * (self.base + 1);
        if mi < cut {
            mi / (self.base + 1)
        } else {
            self.rem + (mi - cut) / self.base
        }
    }

    /// Routes a machine mutation to the owning shard's index (mirror
    /// sync, tree-dirty mark, cache mutation log) — the sharded
    /// counterpart of [`PlacementIndex::on_machine_changed`].
    pub fn on_machine_changed(&mut self, mi: usize, m: &Machine) {
        let s = self.shard_of(mi);
        let local = mi - self.offsets[s];
        self.shards[s].on_machine_changed(local, m);
    }

    /// Exact best-fit across all shards: the machine (and score) the
    /// flat sequential scan would choose. Sequential per-shard cache
    /// probes, parallel scans for the shards that miss, deterministic
    /// combine.
    pub fn best_fit(
        &mut self,
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, f64)> {
        if self.shards.len() == 1 {
            // K=1 is the pre-shard code path, untouched.
            return self.shards[0].best_fit(machines, request, tier);
        }
        let k = self.shards.len();
        let mut winners: Vec<Option<(usize, f64)>> = vec![None; k];
        let mut missed: Vec<usize> = Vec::new();
        for (s, winner) in winners.iter_mut().enumerate() {
            match self.shards[s].cached_best_fit(request, tier) {
                Some(answer) => {
                    *winner = answer.map(|(mi, score)| (mi + self.offsets[s], score));
                }
                None => missed.push(s),
            }
        }
        let mut fanned = false;
        if missed.len() >= 2 {
            if let Some(pool) = self.pool.as_mut() {
                let jobs: Vec<ShardJob> = missed
                    .iter()
                    .map(|&s| ShardJob::Scan {
                        shard: std::mem::replace(&mut self.shards[s], PlacementIndex::new(&[], 0)),
                        request,
                        tier,
                    })
                    .collect();
                // Results come back in `missed` order: the pool tags by
                // batch position, independent of scheduling.
                for (&s, done) in missed.iter().zip(pool.run_batch(jobs)) {
                    winners[s] = done.best.map(|(mi, score)| (mi + self.offsets[s], score));
                    self.shards[s] = done.shard;
                }
                fanned = true;
            }
        }
        if !fanned {
            for &s in &missed {
                winners[s] = self.shards[s]
                    .scan_best_fit(request, tier)
                    .map(|(mi, score)| (mi + self.offsets[s], score));
            }
        }
        combine_winners(&winners)
    }

    /// Bounded candidate search. Only reachable at K=1: the config
    /// layer forces a single shard whenever `candidate_cap` is set,
    /// because the bounded mode's seeded probe permutation spans the
    /// whole fleet.
    pub fn best_fit_bounded(
        &mut self,
        machines: &[Machine],
        request: Resources,
        tier: Tier,
        cap: usize,
    ) -> Option<(usize, f64)> {
        debug_assert_eq!(self.shards.len(), 1, "bounded mode requires K = 1");
        self.shards[0].best_fit_bounded(machines, request, tier, cap)
    }

    /// The lowest-indexed machine fleet-wide where preempting lower
    /// tiers frees room for `request`, with its victim list — exactly
    /// the machine the naive `find_map` returns. Shard trees are
    /// flushed here (this thread holds the machines), candidate
    /// enumeration fans out, exact checks run in ascending global order
    /// with early exit.
    #[allow(clippy::type_complexity)]
    pub fn first_preemptible(
        &mut self,
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, Vec<(usize, usize)>)> {
        if self.shards.len() == 1 {
            return self.shards[0].first_preemptible(machines, request, tier);
        }
        let k = self.shards.len();
        let needed = discount(request, tier);
        for s in 0..k {
            self.shards[s].flush_for_preempt(&machines[self.offsets[s]..self.offsets[s + 1]]);
        }
        if let Some(pool) = self.pool.as_mut() {
            let jobs: Vec<ShardJob> = (0..k)
                .map(|s| ShardJob::Preempt {
                    shard: std::mem::replace(&mut self.shards[s], PlacementIndex::new(&[], 0)),
                    needed,
                    tier,
                })
                .collect();
            let mut hit: Option<(usize, Vec<(usize, usize)>)> = None;
            for (s, done) in pool.run_batch(jobs).into_iter().enumerate() {
                if hit.is_none() {
                    for &local in &done.candidates {
                        let g = self.offsets[s] + local as usize;
                        if let Some(victims) = machines[g].preemption_victims(request, tier) {
                            hit = Some((g, victims));
                            break;
                        }
                    }
                }
                self.shards[s] = done.shard;
            }
            hit
        } else {
            // Inline: early-exit shard by shard, like the naive walk.
            for s in 0..k {
                let candidates = self.shards[s].preempt_candidates(needed, tier);
                for &local in &candidates {
                    let g = self.offsets[s] + local as usize;
                    if let Some(victims) = machines[g].preemption_victims(request, tier) {
                        return Some((g, victims));
                    }
                }
            }
            None
        }
    }

    /// Aggregate query counters, summed in fixed shard order.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in &self.shards {
            let s = shard.stats;
            total.cache_hits += s.cache_hits;
            total.negative_hits += s.negative_hits;
            total.cache_misses += s.cache_misses;
            total.leaves_scanned += s.leaves_scanned;
            total.preempt_probes += s.preempt_probes;
            total.bounded_probes += s.bounded_probes;
        }
        total
    }

    /// Per-shard query counters, in shard order (telemetry export).
    pub fn per_shard_stats(&self) -> Vec<IndexStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Occupant;
    use borg_trace::machine::MachineId;
    use borg_workload::usage_model::splitmix64;

    fn naive_best_fit(
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, m) in machines.iter().enumerate() {
            if let Some(score) = m.fit_score(request, tier) {
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((i, score));
                }
            }
        }
        best
    }

    fn naive_first_preemptible(
        machines: &[Machine],
        request: Resources,
        tier: Tier,
    ) -> Option<(usize, Vec<(usize, usize)>)> {
        machines
            .iter()
            .enumerate()
            .find_map(|(i, m)| m.preemption_victims(request, tier).map(|v| (i, v)))
    }

    fn tier_of(r: u64) -> Tier {
        match r % 5 {
            0 => Tier::Free,
            1 => Tier::BestEffortBatch,
            2 => Tier::Mid,
            3 => Tier::Production,
            _ => Tier::Monitoring,
        }
    }

    #[test]
    fn combine_prefers_lower_score_then_lower_index() {
        assert_eq!(combine_winners(&[]), None);
        assert_eq!(combine_winners(&[None, None]), None);
        assert_eq!(
            combine_winners(&[None, Some((7, 0.5)), None, Some((3, 0.25))]),
            Some((3, 0.25))
        );
        // Equal scores: the lower machine index wins, wherever it sits.
        assert_eq!(
            combine_winners(&[Some((9, 0.5)), Some((2, 0.5))]),
            Some((2, 0.5))
        );
        // ±0.0 tie together under IEEE equality; lower index wins.
        assert_eq!(
            combine_winners(&[Some((4, 0.0)), Some((1, -0.0))]),
            Some((1, -0.0))
        );
    }

    #[test]
    fn shard_ranges_partition_the_fleet() {
        let machines: Vec<Machine> = (0..37)
            .map(|i| Machine::new(MachineId(i), Resources::new(1.0, 1.0)))
            .collect();
        for k in [1usize, 2, 3, 7, 16, 37, 64] {
            let sharded = ShardedPlacement::new(&machines, 5, k);
            let want_k = k.min(37);
            assert_eq!(sharded.shard_count(), want_k, "k = {k}");
            assert_eq!(sharded.offsets[0], 0);
            assert_eq!(*sharded.offsets.last().unwrap(), 37);
            for s in 0..want_k {
                let size = sharded.offsets[s + 1] - sharded.offsets[s];
                assert!(size >= 37 / want_k, "near-equal split");
                assert!(size <= 37 / want_k + 1, "near-equal split");
                for mi in sharded.offsets[s]..sharded.offsets[s + 1] {
                    assert_eq!(sharded.shard_of(mi), s, "k = {k}, machine {mi}");
                }
            }
        }
    }

    /// The sharded core exactness property: random commits, frees, and
    /// queries match the naive scan for every shard count — including
    /// K values that do not divide the fleet and K > cores (which
    /// exercises both the pooled and the inline fan-out).
    #[test]
    fn randomized_ops_match_naive_scan_across_shard_counts() {
        for k in [1usize, 2, 3, 7, 16] {
            let seed = 99u64;
            let mut machines: Vec<Machine> = (0..37)
                .map(|i| {
                    let r = splitmix64(seed ^ (i as u64 * 7919));
                    let cpu = 0.3 + (r % 100) as f64 / 120.0;
                    let mem = 0.3 + (r / 100 % 100) as f64 / 120.0;
                    Machine::new(MachineId(i), Resources::new(cpu, mem))
                })
                .collect();
            let mut sharded = ShardedPlacement::new(&machines, seed, k);
            let mut occupants: Vec<(usize, usize)> = Vec::new();
            let mut next_owner = 0usize;
            let shapes: Vec<Resources> = (0..8)
                .map(|s| {
                    let r = splitmix64(seed ^ (s as u64 * 104729));
                    Resources::new(
                        0.01 + (r % 37) as f64 / 90.0,
                        0.01 + (r / 37 % 37) as f64 / 90.0,
                    )
                })
                .collect();
            for step in 0..3000u64 {
                let r = splitmix64(seed.wrapping_mul(31).wrapping_add(step));
                let request = shapes[(r % 8) as usize];
                let tier = tier_of(r / 1369);
                match r % 11 {
                    0..=2 => {
                        if !occupants.is_empty() {
                            let i = (r / 13) as usize % occupants.len();
                            let (mi, owner) = occupants.swap_remove(i);
                            machines[mi].remove(owner, 0).expect("occupant present");
                            sharded.on_machine_changed(mi, &machines[mi]);
                        }
                    }
                    3..=7 => {
                        let expect = naive_best_fit(&machines, request, tier);
                        let got = sharded.best_fit(&machines, request, tier);
                        assert_eq!(got, expect, "k {k} step {step}");
                        if let Some((mi, _)) = got {
                            machines[mi].add(Occupant {
                                owner: next_owner,
                                index: 0,
                                is_alloc_instance: false,
                                tier,
                                request,
                            });
                            sharded.on_machine_changed(mi, &machines[mi]);
                            occupants.push((mi, next_owner));
                            next_owner += 1;
                        }
                    }
                    _ => {
                        let tier = if r.is_multiple_of(2) {
                            Tier::Production
                        } else {
                            Tier::Monitoring
                        };
                        let expect = naive_first_preemptible(&machines, request, tier);
                        let got = sharded.first_preemptible(&machines, request, tier);
                        assert_eq!(got, expect, "k {k} step {step}");
                    }
                }
            }
            if k > 1 {
                let per_shard = sharded.per_shard_stats();
                assert_eq!(per_shard.len(), k);
                let agg = sharded.stats();
                assert_eq!(
                    agg.cache_misses,
                    per_shard.iter().map(|s| s.cache_misses).sum::<u64>()
                );
                assert!(agg.cache_misses > 0);
            }
        }
    }

    /// Capacity churn (the fault injector zeroes and restores machine
    /// capacity) routes through shard membership deterministically.
    #[test]
    fn capacity_churn_stays_exact() {
        let seed = 17u64;
        for k in [2usize, 5] {
            let mut machines: Vec<Machine> = (0..24)
                .map(|i| Machine::new(MachineId(i), Resources::new(1.0, 1.0)))
                .collect();
            let mut sharded = ShardedPlacement::new(&machines, seed, k);
            let request = Resources::new(0.3, 0.3);
            for step in 0..400u64 {
                let r = splitmix64(seed.wrapping_add(step * 2654435761));
                let mi = (r % 24) as usize;
                if r.is_multiple_of(3) {
                    // Fail: capacity to zero (as `fail_machine` does).
                    machines[mi].capacity = Resources::ZERO;
                } else {
                    machines[mi].capacity = Resources::new(1.0, 1.0);
                }
                sharded.on_machine_changed(mi, &machines[mi]);
                let expect = naive_best_fit(&machines, request, Tier::Mid);
                assert_eq!(
                    sharded.best_fit(&machines, request, Tier::Mid),
                    expect,
                    "k {k} step {step}"
                );
            }
        }
    }

    #[test]
    fn empty_fleet_is_a_single_empty_shard() {
        let machines: Vec<Machine> = Vec::new();
        let mut sharded = ShardedPlacement::new(&machines, 1, 8);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(
            sharded.best_fit(&machines, Resources::new(0.1, 0.1), Tier::Free),
            None
        );
        assert_eq!(
            sharded.first_preemptible(&machines, Resources::new(0.1, 0.1), Tier::Production),
            None
        );
    }
}
