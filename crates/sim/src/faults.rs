//! Fault injection: machine failure schedules and lossy trace writers.
//!
//! §9 of the paper notes the public traces were scrubbed against "a raft
//! of logical invariants" precisely because real event collection loses,
//! duplicates, and reorders records. This module injects both fault
//! classes deterministically so the ingestion pipeline
//! ([`borg_trace::repair`]) can be tested closed-loop:
//!
//! * **Generation faults** — [`FaultConfig`] + [`FaultInjector`] drive
//!   machine failure/repair as first-class simulation events (wired into
//!   [`crate::cell::CellSim`] via [`crate::event::Ev::MachineFail`]),
//!   including correlated failure domains that take out whole racks and a
//!   fraction of resident tasks that vanish (`Lost`) instead of being
//!   evicted.
//! * **Recording faults** — [`CorruptionConfig`] + [`corrupt_trace`]
//!   model a lossy trace writer: dropped, duplicated, clock-jittered and
//!   reordered rows, truncated tails, and ([`write_trace_dir_lossy`])
//!   garbled CSV lines. Every injected fault is counted in a
//!   [`FaultLedger`] so round-trip tests can reconcile repairs against
//!   ground truth *exactly*, not just statistically.
//!
//! Everything is seeded: the injector and the corruptor each own an
//! independent RNG stream, so enabling faults never perturbs the
//! workload or placement streams, and `faults: None` is bit-identical to
//! a build without this module.

use borg_trace::machine::Platform;
use borg_trace::resources::Resources;
use borg_trace::time::{Micros, MICROS_PER_HOUR};
use borg_trace::trace::Trace;
use borg_workload::cells::FailureModel;
use borg_workload::dist::{Exponential, Sample};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Machine-failure injection parameters (the generation side).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Mean failures per machine per 30 days.
    pub failures_per_machine_month: f64,
    /// Mean time from failure to repair, in hours.
    pub mean_repair_hours: f64,
    /// Machines per correlated failure domain (a rack / power unit).
    pub domain_size: usize,
    /// Fraction of failures that take out the whole domain at once.
    pub correlated_fraction: f64,
    /// Fraction of resident tasks that vanish (`Lost`) with the machine
    /// instead of being evicted and resubmitted.
    pub lost_fraction: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::from_model(&FailureModel::default())
    }
}

impl FaultConfig {
    /// Builds the injection config from a cell profile's failure model.
    pub fn from_model(m: &FailureModel) -> FaultConfig {
        FaultConfig {
            failures_per_machine_month: m.failures_per_machine_month,
            mean_repair_hours: m.mean_repair_hours,
            domain_size: m.domain_size,
            correlated_fraction: m.correlated_fraction,
            lost_fraction: m.lost_fraction,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values, like [`crate::SimConfig::validate`].
    pub fn validate(&self) {
        assert!(
            self.failures_per_machine_month > 0.0,
            "failure rate must be positive"
        );
        assert!(self.mean_repair_hours > 0.0, "repair time must be positive");
        assert!(self.domain_size >= 1, "domain size must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.correlated_fraction),
            "correlated fraction in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.lost_fraction),
            "lost fraction in [0, 1]"
        );
    }
}

/// Per-machine failure state: clocks, saved capacities, and the RNG
/// stream all failure decisions draw from. Owned by the cell simulator
/// when `SimConfig::faults` is set.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    /// Capacity saved while a machine is down (`Some` = down).
    down: Vec<Option<Resources>>,
    /// Original platform of each machine, for re-emitting machine events.
    platforms: Vec<Platform>,
    /// Failure-clock epoch per machine; bumped on every failure so clock
    /// events scheduled before a correlated co-failure are invalidated.
    epoch: Vec<u32>,
}

impl FaultInjector {
    /// A fresh injector for `platforms.len()` machines.
    pub fn new(cfg: FaultConfig, platforms: Vec<Platform>, seed: u64) -> FaultInjector {
        cfg.validate();
        let n = platforms.len();
        FaultInjector {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            down: vec![None; n],
            platforms,
            epoch: vec![0; n],
        }
    }

    /// Number of machines under injection.
    pub fn machine_count(&self) -> usize {
        self.down.len()
    }

    /// True while the machine is failed.
    pub fn is_down(&self, m: usize) -> bool {
        self.down[m].is_some()
    }

    /// Current failure-clock epoch of a machine.
    pub fn epoch(&self, m: usize) -> u32 {
        self.epoch[m]
    }

    /// The machine's hardware platform (as initially sampled).
    pub fn platform(&self, m: usize) -> Platform {
        self.platforms[m]
    }

    /// Marks a machine down, saving its capacity and invalidating any
    /// pending failure clock.
    pub fn begin_failure(&mut self, m: usize, capacity: Resources) {
        debug_assert!(self.down[m].is_none(), "machine already down");
        self.down[m] = Some(capacity);
        self.epoch[m] = self.epoch[m].wrapping_add(1);
    }

    /// Marks a machine repaired, returning the capacity to restore
    /// (`None` when the machine was not down).
    pub fn end_repair(&mut self, m: usize) -> Option<Resources> {
        self.down[m].take()
    }

    /// The correlated failure domain containing machine `m`.
    pub fn domain_of(&self, m: usize) -> std::ops::Range<usize> {
        let ds = self.cfg.domain_size.max(1);
        let start = m / ds * ds;
        start..(start + ds).min(self.machine_count())
    }

    /// Draws whether this failure takes out the whole domain.
    pub fn draw_correlated(&mut self) -> bool {
        self.rng.random_bool(self.cfg.correlated_fraction)
    }

    /// Draws whether a resident task vanishes (`Lost`) with the machine.
    pub fn draw_lost(&mut self) -> bool {
        self.rng.random_bool(self.cfg.lost_fraction)
    }

    /// Time until a machine's next failure: exponential with the
    /// configured per-machine MTBF, floored at one second.
    pub fn sample_failure_gap(&mut self) -> Micros {
        let mtbf_hours = 30.0 * 24.0 / self.cfg.failures_per_machine_month.max(1e-9);
        let s = Exponential::with_mean(mtbf_hours * MICROS_PER_HOUR as f64).sample(&mut self.rng);
        Micros((s.max(1e6)) as u64)
    }

    /// Time from failure to repair: exponential with the configured mean,
    /// floored at one second so a Remove and its Add never share a
    /// timestamp (which would make them look like duplicate-adjacent
    /// rows to downstream dedupe).
    pub fn sample_repair_gap(&mut self) -> Micros {
        let s = Exponential::with_mean(self.cfg.mean_repair_hours * MICROS_PER_HOUR as f64)
            .sample(&mut self.rng);
        Micros((s.max(1e6)) as u64)
    }
}

// ----- lossy trace writer ------------------------------------------------

/// Recording-fault parameters (the lossy-writer side).
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    /// Fraction of rows silently dropped.
    pub drop_fraction: f64,
    /// Fraction of rows written twice.
    pub duplicate_fraction: f64,
    /// Fraction of adjacent row pairs swapped (buffer reordering).
    pub reorder_fraction: f64,
    /// Fraction of event rows whose timestamp is jittered (clock skew).
    /// Usage windows are never jittered.
    pub jitter_fraction: f64,
    /// Maximum absolute clock jitter.
    pub max_jitter: Micros,
    /// When set, the writer died early: every row later than
    /// `horizon - truncate_tail` is missing.
    pub truncate_tail: Option<Micros>,
    /// Fraction of CSV lines garbled to unparseable bytes (only applied
    /// by [`write_trace_dir_lossy`]).
    pub garble_fraction: f64,
}

impl CorruptionConfig {
    /// A lossy-but-parseable writer: drops, duplicates, and reorders
    /// rows. No jitter and no garbling, so duplicate reconciliation
    /// against the repair report is *exact*.
    pub fn lossy() -> CorruptionConfig {
        CorruptionConfig {
            drop_fraction: 0.05,
            duplicate_fraction: 0.03,
            reorder_fraction: 0.02,
            jitter_fraction: 0.0,
            max_jitter: Micros::ZERO,
            truncate_tail: None,
            garble_fraction: 0.0,
        }
    }

    /// A harsh writer: drops, reorders, clock-jitters, garbles lines,
    /// and dies before the end of the trace. No duplication, so
    /// quarantine reconciliation against garbled counts is *exact*.
    pub fn harsh() -> CorruptionConfig {
        CorruptionConfig {
            drop_fraction: 0.05,
            duplicate_fraction: 0.0,
            reorder_fraction: 0.05,
            jitter_fraction: 0.02,
            max_jitter: Micros::from_secs(5),
            truncate_tail: Some(Micros::from_hours(12)),
            garble_fraction: 0.03,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions.
    pub fn validate(&self) {
        for (name, f) in [
            ("drop", self.drop_fraction),
            ("duplicate", self.duplicate_fraction),
            ("reorder", self.reorder_fraction),
            ("jitter", self.jitter_fraction),
            ("garble", self.garble_fraction),
        ] {
            assert!((0.0..=1.0).contains(&f), "{name} fraction in [0, 1]");
        }
    }
}

/// Ground-truth fault counts for one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableFaults {
    /// Rows silently dropped.
    pub dropped: u64,
    /// Rows written twice.
    pub duplicated: u64,
    /// Rows whose timestamp was jittered.
    pub jittered: u64,
    /// Adjacent row pairs swapped.
    pub reordered: u64,
    /// Rows lost to tail truncation.
    pub truncated: u64,
    /// CSV lines garbled to unparseable bytes.
    pub garbled: u64,
}

impl TableFaults {
    /// Total faults injected into the table.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.jittered
            + self.reordered
            + self.truncated
            + self.garbled
    }
}

/// Every fault injected by [`corrupt_trace`] and
/// [`write_trace_dir_lossy`], per table — the ground truth the chaos
/// round-trip reconciles repair reports and quarantines against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Machine-events table faults.
    pub machine_events: TableFaults,
    /// Collection-events table faults.
    pub collection_events: TableFaults,
    /// Instance-events table faults.
    pub instance_events: TableFaults,
    /// Usage table faults.
    pub usage: TableFaults,
}

impl FaultLedger {
    /// Total faults across all tables.
    pub fn total(&self) -> u64 {
        self.machine_events.total()
            + self.collection_events.total()
            + self.instance_events.total()
            + self.usage.total()
    }

    /// Sum of dropped rows across tables.
    pub fn dropped(&self) -> u64 {
        self.machine_events.dropped
            + self.collection_events.dropped
            + self.instance_events.dropped
            + self.usage.dropped
    }

    /// Sum of duplicated rows across tables.
    pub fn duplicated(&self) -> u64 {
        self.machine_events.duplicated
            + self.collection_events.duplicated
            + self.instance_events.duplicated
            + self.usage.duplicated
    }

    /// Sum of garbled lines across tables.
    pub fn garbled(&self) -> u64 {
        self.machine_events.garbled
            + self.collection_events.garbled
            + self.instance_events.garbled
            + self.usage.garbled
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "faults injected: {} total ({} dropped, {} duplicated, {} garbled)",
            self.total(),
            self.dropped(),
            self.duplicated(),
            self.garbled()
        )
    }

    /// Re-exports the ledger as telemetry counters named
    /// `chaos.{table}.{kind}`. Deterministic plane: the corruption
    /// stream is seeded, so the ledger is a pure function of
    /// (seed, config). Zero tallies are skipped.
    pub fn export_metrics(&self, tel: &mut borg_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        let tables = [
            ("machine_events", &self.machine_events),
            ("collection_events", &self.collection_events),
            ("instance_events", &self.instance_events),
            ("usage", &self.usage),
        ];
        for (table, f) in tables {
            let kinds = [
                ("dropped", f.dropped),
                ("duplicated", f.duplicated),
                ("jittered", f.jittered),
                ("reordered", f.reordered),
                ("truncated", f.truncated),
                ("garbled", f.garbled),
            ];
            for (kind, v) in kinds {
                if v > 0 {
                    tel.count(
                        &format!("chaos.{table}.{kind}"),
                        borg_telemetry::Plane::Deterministic,
                        v,
                    );
                }
            }
        }
    }
}

/// How to write a jittered timestamp back into a row; `None` for tables
/// whose timestamps must stay untouched (usage windows).
type JitterFn<'a, T> = Option<&'a dyn Fn(&mut T, Micros)>;

/// Per-row corruption pipeline shared by every table. The order is
/// load-bearing for exact reconciliation: jitter first (so a duplicate
/// is a copy of the row as written), then the truncation check (so a
/// duplicate pair never straddles the cutoff), then drop, then
/// duplicate (so an injected duplicate is never itself dropped —
/// each `duplicated` count is exactly one surviving extra row).
fn corrupt_rows<T: Copy>(
    rows: &[T],
    cfg: &CorruptionConfig,
    rng: &mut StdRng,
    faults: &mut TableFaults,
    cutoff: Option<Micros>,
    time: impl Fn(&T) -> Micros,
    jitter: JitterFn<'_, T>,
) -> Vec<T> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut row = *row;
        if let Some(set_time) = jitter {
            if cfg.jitter_fraction > 0.0 && rng.random_bool(cfg.jitter_fraction) {
                let amt = (rng.random::<f64>() * 2.0 - 1.0) * cfg.max_jitter.as_micros() as f64;
                let t = time(&row).as_micros() as i64 + amt as i64;
                set_time(&mut row, Micros(t.max(0) as u64));
                faults.jittered += 1;
            }
        }
        if let Some(cut) = cutoff {
            if time(&row) > cut {
                faults.truncated += 1;
                continue;
            }
        }
        if cfg.drop_fraction > 0.0 && rng.random_bool(cfg.drop_fraction) {
            faults.dropped += 1;
            continue;
        }
        out.push(row);
        if cfg.duplicate_fraction > 0.0 && rng.random_bool(cfg.duplicate_fraction) {
            out.push(row);
            faults.duplicated += 1;
        }
    }
    // Buffer reordering: swap a fraction of adjacent pairs, each row in
    // at most one swap.
    if cfg.reorder_fraction > 0.0 {
        let mut i = 0;
        while i + 1 < out.len() {
            if rng.random_bool(cfg.reorder_fraction) {
                out.swap(i, i + 1);
                faults.reordered += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
    }
    out
}

/// Runs a trace through the lossy writer's in-memory faults (drop,
/// duplicate, jitter, reorder, truncate), returning the corrupted trace
/// and the exact ledger of what was done. Garbling is a byte-level
/// fault and only happens in [`write_trace_dir_lossy`].
pub fn corrupt_trace(trace: &Trace, cfg: &CorruptionConfig, seed: u64) -> (Trace, FaultLedger) {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ledger = FaultLedger::default();
    let cutoff = cfg
        .truncate_tail
        .map(|tail| Micros(trace.horizon.as_micros().saturating_sub(tail.as_micros())));
    // The metadata row survives corruption untouched.
    let mut out = Trace {
        cell_name: trace.cell_name.clone(),
        schema: trace.schema,
        horizon: trace.horizon,
        ..Trace::default()
    };
    out.machine_events = corrupt_rows(
        &trace.machine_events,
        cfg,
        &mut rng,
        &mut ledger.machine_events,
        cutoff,
        |e| e.time,
        Some(&|e, t| e.time = t),
    );
    out.collection_events = corrupt_rows(
        &trace.collection_events,
        cfg,
        &mut rng,
        &mut ledger.collection_events,
        cutoff,
        |e| e.time,
        Some(&|e, t| e.time = t),
    );
    out.instance_events = corrupt_rows(
        &trace.instance_events,
        cfg,
        &mut rng,
        &mut ledger.instance_events,
        cutoff,
        |e| e.time,
        Some(&|e, t| e.time = t),
    );
    // Usage windows are never jittered: a half-moved window would be a
    // different record, not a recording fault.
    out.usage = corrupt_rows(
        &trace.usage,
        cfg,
        &mut rng,
        &mut ledger.usage,
        cutoff,
        |r| r.start,
        None,
    );
    (out, ledger)
}

/// Garbles a fraction of data lines in a rendered CSV table so they can
/// never parse (the first field becomes non-numeric), counting each one.
fn garble_lines(table: &str, frac: f64, rng: &mut StdRng, garbled: &mut u64) -> String {
    if frac <= 0.0 {
        return table.to_string();
    }
    let mut out = String::with_capacity(table.len() + 64);
    for (i, line) in table.lines().enumerate() {
        if i > 0 && !line.is_empty() && rng.random_bool(frac) {
            out.push_str("##corrupt##");
            *garbled += 1;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Writes a trace directory through the lossy writer's byte-level fault:
/// `cfg.garble_fraction` of data lines per table are garbled so they
/// fail to parse, each counted in `ledger`. Combine with
/// [`corrupt_trace`] for row-level faults first.
pub fn write_trace_dir_lossy(
    trace: &Trace,
    dir: &std::path::Path,
    cfg: &CorruptionConfig,
    seed: u64,
    ledger: &mut FaultLedger,
) -> std::io::Result<()> {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    std::fs::create_dir_all(dir)?;
    let mut buf = Vec::new();
    borg_trace::csv::write_machine_events(&mut buf, &trace.machine_events)?;
    let table = String::from_utf8_lossy(&buf).into_owned();
    std::fs::write(
        dir.join(borg_trace::csv::FILE_MACHINE),
        garble_lines(
            &table,
            cfg.garble_fraction,
            &mut rng,
            &mut ledger.machine_events.garbled,
        ),
    )?;
    buf.clear();
    borg_trace::csv::write_collection_events(&mut buf, &trace.collection_events)?;
    let table = String::from_utf8_lossy(&buf).into_owned();
    std::fs::write(
        dir.join(borg_trace::csv::FILE_COLLECTION),
        garble_lines(
            &table,
            cfg.garble_fraction,
            &mut rng,
            &mut ledger.collection_events.garbled,
        ),
    )?;
    buf.clear();
    borg_trace::csv::write_instance_events(&mut buf, &trace.instance_events)?;
    let table = String::from_utf8_lossy(&buf).into_owned();
    std::fs::write(
        dir.join(borg_trace::csv::FILE_INSTANCE),
        garble_lines(
            &table,
            cfg.garble_fraction,
            &mut rng,
            &mut ledger.instance_events.garbled,
        ),
    )?;
    buf.clear();
    borg_trace::csv::write_usage(&mut buf, &trace.usage)?;
    let table = String::from_utf8_lossy(&buf).into_owned();
    std::fs::write(
        dir.join(borg_trace::csv::FILE_USAGE),
        garble_lines(
            &table,
            cfg.garble_fraction,
            &mut rng,
            &mut ledger.usage.garbled,
        ),
    )?;
    std::fs::write(
        dir.join(borg_trace::csv::FILE_METADATA),
        format!(
            "cell_name,schema,horizon\n{},{},{}\n",
            trace.cell_name,
            trace.schema.map_or("unknown", |s| s.name()),
            trace.horizon.as_micros()
        ),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_trace::collection::{
        CollectionEvent, CollectionId, CollectionType, SchedulerKind, UserId, VerticalScalingMode,
    };
    use borg_trace::priority::Priority;
    use borg_trace::state::EventType;
    use borg_trace::trace::SchemaVersion;

    fn cev(id: u64, time_s: u64, ty: EventType) -> CollectionEvent {
        CollectionEvent {
            time: Micros::from_secs(time_s),
            collection_id: CollectionId(id),
            event_type: ty,
            collection_type: CollectionType::Job,
            priority: Priority::new(200),
            scheduler: SchedulerKind::Default,
            vertical_scaling: VerticalScalingMode::Off,
            parent_id: None,
            alloc_collection_id: None,
            user_id: UserId(0),
        }
    }

    fn toy_trace(n: u64) -> Trace {
        let mut t = Trace::new("toy", SchemaVersion::V3Trace2019, Micros::from_days(1));
        for id in 0..n {
            t.collection_events.push(cev(id, id, EventType::Submit));
            t.collection_events
                .push(cev(id, id + 100_000, EventType::Finish));
        }
        t
    }

    #[test]
    fn ledger_balances_row_counts() {
        let t = toy_trace(500);
        let cfg = CorruptionConfig::lossy();
        let (c, ledger) = corrupt_trace(&t, &cfg, 7);
        let f = ledger.collection_events;
        assert!(f.dropped > 0 && f.duplicated > 0, "{ledger:?}");
        assert_eq!(
            c.collection_events.len() as u64,
            t.collection_events.len() as u64 - f.dropped + f.duplicated
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let t = toy_trace(200);
        let cfg = CorruptionConfig::harsh();
        let (a, la) = corrupt_trace(&t, &cfg, 9);
        let (b, lb) = corrupt_trace(&t, &cfg, 9);
        assert_eq!(a.collection_events, b.collection_events);
        assert_eq!(la, lb);
        let (c, lc) = corrupt_trace(&t, &cfg, 10);
        assert!(c.collection_events != a.collection_events || lc != la);
    }

    #[test]
    fn truncation_cuts_the_tail() {
        let mut t = toy_trace(0);
        t.horizon = Micros::from_hours(100);
        t.collection_events.push(cev(1, 0, EventType::Submit));
        let mut late = cev(1, 0, EventType::Finish);
        late.time = Micros::from_hours(99);
        t.collection_events.push(late);
        let cfg = CorruptionConfig {
            drop_fraction: 0.0,
            duplicate_fraction: 0.0,
            reorder_fraction: 0.0,
            jitter_fraction: 0.0,
            max_jitter: Micros::ZERO,
            truncate_tail: Some(Micros::from_hours(12)),
            garble_fraction: 0.0,
        };
        let (c, ledger) = corrupt_trace(&t, &cfg, 1);
        assert_eq!(ledger.collection_events.truncated, 1);
        assert_eq!(c.collection_events.len(), 1);
        assert!(c.collection_events[0].time < Micros::from_hours(88));
    }

    #[test]
    fn duplicates_are_adjacent_exact_copies() {
        let t = toy_trace(300);
        let mut cfg = CorruptionConfig::lossy();
        cfg.drop_fraction = 0.0;
        cfg.reorder_fraction = 0.0;
        let (c, ledger) = corrupt_trace(&t, &cfg, 3);
        let mut adjacent_dups = 0u64;
        for w in c.collection_events.windows(2) {
            if w[0] == w[1] {
                adjacent_dups += 1;
            }
        }
        assert_eq!(adjacent_dups, ledger.collection_events.duplicated);
    }

    #[test]
    fn lossy_writer_garbles_exactly_counted_lines() {
        let t = toy_trace(400);
        let mut cfg = CorruptionConfig::harsh();
        cfg.drop_fraction = 0.0;
        cfg.jitter_fraction = 0.0;
        cfg.reorder_fraction = 0.0;
        cfg.truncate_tail = None;
        let dir = std::env::temp_dir().join(format!("borg_faults_garble_{}", std::process::id()));
        let mut ledger = FaultLedger::default();
        write_trace_dir_lossy(&t, &dir, &cfg, 5, &mut ledger).unwrap();
        assert!(ledger.collection_events.garbled > 0);
        let (read, quarantine) = borg_trace::csv::read_trace_dir_lenient(&dir);
        assert_eq!(quarantine.total_lines(), ledger.garbled());
        assert_eq!(
            read.collection_events.len() as u64,
            t.collection_events.len() as u64 - ledger.collection_events.garbled
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injector_domains_and_clocks() {
        let cfg = FaultConfig {
            domain_size: 4,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, vec![Platform(0); 10], 11);
        assert_eq!(inj.domain_of(5), 4..8);
        assert_eq!(inj.domain_of(9), 8..10);
        assert!(!inj.is_down(3));
        let e0 = inj.epoch(3);
        inj.begin_failure(3, Resources::new(1.0, 1.0));
        assert!(inj.is_down(3));
        assert_ne!(inj.epoch(3), e0);
        assert_eq!(inj.end_repair(3), Some(Resources::new(1.0, 1.0)));
        assert!(!inj.is_down(3));
        assert_eq!(inj.end_repair(3), None);
        for _ in 0..100 {
            assert!(inj.sample_failure_gap() >= Micros::from_secs(1));
            assert!(inj.sample_repair_gap() >= Micros::from_secs(1));
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let mut cfg = CorruptionConfig::lossy();
        cfg.drop_fraction = 1.5;
        cfg.validate();
    }
}
