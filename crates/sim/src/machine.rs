//! Machine runtime state and fit/preemption logic.
//!
//! §4 of the paper shows Borg deliberately over-commits: the sum of limits
//! on a machine may exceed its capacity because every tier reliably
//! under-uses its requests. The fit check therefore discounts requests per
//! tier and per dimension, which is how cell-level allocation climbs well
//! above 100% of capacity (Figures 4/5) while usage stays below it
//! (Figure 2).

use crate::fxhash::FxHashMap;
use borg_trace::machine::MachineId;
use borg_trace::priority::Tier;
use borg_trace::resources::Resources;

/// The fraction of a request that counts against machine capacity during
/// fit checks, per tier and per dimension `(cpu, memory)`.
///
/// The discounts mirror the tiers' expected usage-to-limit ratios plus a
/// safety margin: production CPU runs at ~30% of its limit (§4), so
/// counting prod CPU requests at 45% lets the fleet promise ~2× its CPU
/// in production limits while staying physically safe — exactly the
/// statistical multiplexing the paper describes. Memory is discounted
/// less because running out of RAM means OOM evictions, not throttling.
pub fn tier_discount(tier: Tier) -> Resources {
    match tier {
        Tier::Production | Tier::Monitoring => Resources::new(0.45, 0.72),
        Tier::Mid => Resources::new(0.75, 0.90),
        Tier::BestEffortBatch => Resources::new(0.45, 0.55),
        Tier::Free => Resources::new(0.35, 0.55),
    }
}

/// Applies a per-dimension discount to a request.
pub fn discount(request: Resources, tier: Tier) -> Resources {
    let d = tier_discount(tier);
    Resources::new(request.cpu * d.cpu, request.mem * d.mem)
}

/// Something occupying space on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupant {
    /// Owning job (or alloc set) index in the cell tables.
    pub owner: usize,
    /// Task / alloc-instance index within the owner.
    pub index: usize,
    /// True when this occupant is an alloc instance (reservation), which
    /// is never preempted.
    pub is_alloc_instance: bool,
    /// Tier, for discounting and victim selection.
    pub tier: Tier,
    /// The full (undiscounted) request.
    pub request: Resources,
}

impl Occupant {
    /// The discounted request counted against capacity.
    pub fn discounted(&self) -> Resources {
        discount(self.request, self.tier)
    }
}

/// One machine's runtime state.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Trace-level id.
    pub id: MachineId,
    /// Capacity.
    pub capacity: Resources,
    /// Current occupants.
    pub occupants: Vec<Occupant>,
    /// Sum of discounted requests (kept incrementally).
    pub committed: Resources,
    /// Occupant slot map: `(owner, index)` → position in `occupants`,
    /// kept in lock-step across `swap_remove` so removal is O(1).
    slots: FxHashMap<(usize, usize), usize>,
}

impl Machine {
    /// A fresh machine.
    pub fn new(id: MachineId, capacity: Resources) -> Machine {
        Machine {
            id,
            capacity,
            occupants: Vec::new(),
            committed: Resources::ZERO,
            slots: FxHashMap::default(),
        }
    }

    /// Remaining discounted capacity.
    pub fn headroom(&self) -> Resources {
        self.capacity - self.committed
    }

    /// True when an occupant with the given tier and request fits.
    pub fn fits(&self, request: Resources, tier: Tier) -> bool {
        let d = discount(request, tier);
        (self.committed + d).fits_in(&self.capacity) && request.fits_in(&self.capacity)
    }

    /// Adds an occupant (caller must have checked the fit policy; adding
    /// beyond capacity is allowed — that is what over-commitment means
    /// when the policy discounts requests).
    pub fn add(&mut self, occ: Occupant) {
        self.committed += occ.discounted();
        let prev = self
            .slots
            .insert((occ.owner, occ.index), self.occupants.len());
        debug_assert!(
            prev.is_none(),
            "duplicate occupant ({}, {})",
            occ.owner,
            occ.index
        );
        self.occupants.push(occ);
    }

    /// Removes the occupant with the given owner and index, returning it.
    /// O(1) via the slot map.
    pub fn remove(&mut self, owner: usize, index: usize) -> Option<Occupant> {
        let pos = self.slots.remove(&(owner, index))?;
        let occ = self.occupants.swap_remove(pos);
        if let Some(moved) = self.occupants.get(pos) {
            self.slots.insert((moved.owner, moved.index), pos);
        }
        self.committed -= occ.discounted();
        // Guard against float drift on empty machines.
        if self.occupants.is_empty() {
            self.committed = Resources::ZERO;
        }
        Some(occ)
    }

    /// The best-fit score for placing `request` at `tier`: the remaining
    /// dominant-share headroom after placement (smaller is tighter).
    /// `None` when it does not fit.
    pub fn fit_score(&self, request: Resources, tier: Tier) -> Option<f64> {
        self.fit_score_at(self.committed, request, tier)
    }

    /// [`Machine::fit_score`] evaluated against an overridden commitment
    /// level — the gang dry-run scores machines under scratch
    /// commitments without cloning the fleet. Uses the identical float
    /// operations as the committed-state path, so scores are
    /// bit-identical when `committed == self.committed`.
    pub fn fit_score_at(
        &self,
        committed: Resources,
        request: Resources,
        tier: Tier,
    ) -> Option<f64> {
        let after = committed + discount(request, tier);
        if !(after.fits_in(&self.capacity) && request.fits_in(&self.capacity)) {
            return None;
        }
        Some(1.0 - after.dominant_fraction_of(&self.capacity))
    }

    /// CPU throttle factor under a given raw occupant demand: CPU is
    /// work-conserving but physically capped at capacity, so an
    /// over-subscribed machine squeezes every occupant proportionally;
    /// demand within capacity runs unthrottled (factor 1.0). The usage
    /// tick derives this per task straight from the machine's demand
    /// aggregate — same IEEE division for every occupant of a machine,
    /// so per-task evaluation is bit-identical to a per-machine table.
    pub fn cpu_throttle(&self, demand_cpu: f64) -> f64 {
        if demand_cpu > self.capacity.cpu {
            self.capacity.cpu / demand_cpu
        } else {
            1.0
        }
    }

    /// Selects preemption victims strictly below `tier` that would free
    /// enough discounted capacity to host `request`. Victims are chosen
    /// lowest-tier-first (Borg's eviction SLO protects important work,
    /// §5.2). Returns the victims (owner, index) or `None` when even
    /// preempting everything below the tier is not enough. Alloc
    /// instances are never victims.
    pub fn preemption_victims(
        &self,
        request: Resources,
        tier: Tier,
    ) -> Option<Vec<(usize, usize)>> {
        let needed = discount(request, tier);
        let mut candidates: Vec<&Occupant> = self
            .occupants
            .iter()
            .filter(|o| o.tier < tier && !o.is_alloc_instance)
            .collect();
        // Lowest tier first; bigger victims first within a tier so we
        // evict few tasks.
        candidates.sort_by(|a, b| {
            // Requests are finite and non-negative; IEEE equality keeps
            // the stable sort's occupant order on ties, which the
            // eviction trace depends on.
            a.tier.cmp(&b.tier).then_with(|| {
                b.request
                    .cpu
                    .partial_cmp(&a.request.cpu)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        });
        let mut freed = Resources::ZERO;
        let mut victims = Vec::new();
        let mut headroom = self.headroom();
        for v in candidates {
            if (headroom + freed).cpu >= needed.cpu && (headroom + freed).mem >= needed.mem {
                break;
            }
            freed += v.discounted();
            victims.push((v.owner, v.index));
        }
        headroom += freed;
        if headroom.cpu >= needed.cpu && headroom.mem >= needed.mem {
            Some(victims)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(owner: usize, tier: Tier, cpu: f64) -> Occupant {
        Occupant {
            owner,
            index: 0,
            is_alloc_instance: false,
            tier,
            request: Resources::new(cpu, cpu / 2.0),
        }
    }

    #[test]
    fn discounts_enable_overcommit() {
        let mut m = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        // Four beb tasks of 0.5 NCU each count 0.25 each against the
        // machine, so all four fit: raw requests total 2.0 NCU (200%).
        for i in 0..4 {
            assert!(
                m.fits(Resources::new(0.5, 0.2), Tier::BestEffortBatch),
                "i = {i}"
            );
            m.add(task(i, Tier::BestEffortBatch, 0.5));
        }
        let raw: Resources = m.occupants.iter().map(|o| o.request).sum();
        assert!(raw.cpu > m.capacity.cpu, "raw allocation exceeds capacity");
        assert!(m.committed.fits_in(&m.capacity));
    }

    #[test]
    fn production_discounted_less_than_batch() {
        let mut m = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        // 2.0 NCU of production requests commit 0.9 NCU; a third 1.0 NCU
        // production request (0.45 committed) no longer fits...
        m.add(task(0, Tier::Production, 1.0));
        m.add(task(1, Tier::Production, 1.0));
        assert!(!m.fits(Resources::new(1.0, 0.1), Tier::Production));
        // ...but a smaller batch task still squeezes in.
        assert!(m.fits(Resources::new(0.15, 0.1), Tier::BestEffortBatch));
    }

    #[test]
    fn request_must_fit_machine_at_all() {
        let m = Machine::new(MachineId(0), Resources::new(0.5, 0.5));
        assert!(!m.fits(Resources::new(0.6, 0.1), Tier::Free));
    }

    #[test]
    fn remove_restores_headroom() {
        let mut m = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        m.add(task(7, Tier::Production, 0.9));
        assert!(m.remove(7, 0).is_some());
        assert!(m.remove(7, 0).is_none());
        assert_eq!(m.committed, Resources::ZERO);
        assert!(m.fits(Resources::new(0.9, 0.4), Tier::Production));
    }

    #[test]
    fn fit_score_prefers_tighter_machines() {
        let mut tight = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        tight.add(task(0, Tier::Production, 0.6));
        let empty = Machine::new(MachineId(1), Resources::new(1.0, 1.0));
        let req = Resources::new(0.2, 0.1);
        let s_tight = tight.fit_score(req, Tier::Production).unwrap();
        let s_empty = empty.fit_score(req, Tier::Production).unwrap();
        assert!(s_tight < s_empty, "best-fit picks the tighter machine");
    }

    #[test]
    fn preemption_picks_lowest_tier_first() {
        let mut m = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        m.add(task(1, Tier::Free, 0.8));
        m.add(task(2, Tier::BestEffortBatch, 0.8));
        m.add(task(3, Tier::Mid, 0.8));
        // Machine committed: 0.32 + 0.40 + 0.64 = 1.36 CPU-equivalent...
        // capacity 1.0, so a production arrival must preempt.
        let victims = m
            .preemption_victims(Resources::new(0.9, 0.25), Tier::Production)
            .unwrap();
        assert!(!victims.is_empty());
        assert_eq!(victims[0], (1, 0), "free tier evicted first");
    }

    #[test]
    fn preemption_never_touches_same_or_higher_tier_or_allocs() {
        let mut m = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        m.add(task(1, Tier::Production, 1.0));
        m.add(Occupant {
            owner: 2,
            index: 0,
            is_alloc_instance: true,
            tier: Tier::Free,
            request: Resources::new(1.0, 1.0),
        });
        // Machine is full (committed 0.45 + 0.4 CPU / 0.375 + 0.4 mem,
        // plus the big request): a 1.0-NCU production request cannot be
        // satisfied because neither occupant is preemptible.
        assert!(m
            .preemption_victims(Resources::new(1.0, 0.8), Tier::Production)
            .is_none());
    }

    #[test]
    fn preemption_returns_empty_when_already_fits() {
        let m = Machine::new(MachineId(0), Resources::new(1.0, 1.0));
        let victims = m
            .preemption_victims(Resources::new(0.3, 0.1), Tier::Production)
            .unwrap();
        assert!(victims.is_empty());
    }
}
