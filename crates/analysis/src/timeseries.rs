//! Time-bucketed aggregation.
//!
//! Figures 2 and 4 of the paper plot, for every hour of the month, the
//! fraction of cell capacity used/allocated per tier. [`HourBuckets`]
//! accumulates weighted interval contributions into fixed-width time
//! buckets: a task running from `t0` to `t1` with rate `r` contributes
//! `r × overlap(bucket, [t0, t1))` resource-time to every bucket it
//! overlaps.

/// Fixed-width time-bucket accumulator over `[0, horizon)`.
///
/// Times are in arbitrary integer units (the toolkit uses microseconds).
///
/// # Examples
///
/// ```
/// use borg_analysis::timeseries::HourBuckets;
///
/// // Two buckets of 100 units each.
/// let mut b = HourBuckets::new(100, 200);
/// // A task at rate 2.0 running across both buckets.
/// b.add_interval(50, 150, 2.0);
/// // 50 time-units in each bucket, so 100 resource-time units each;
/// // the average rate per bucket is therefore 1.0.
/// assert_eq!(b.average_rates(), vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HourBuckets {
    width: u64,
    totals: Vec<f64>,
}

impl HourBuckets {
    /// Creates buckets of `width` time units spanning `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero.
    pub fn new(width: u64, horizon: u64) -> Self {
        assert!(width > 0, "bucket width must be positive");
        let n = horizon.div_ceil(width) as usize;
        HourBuckets {
            width,
            totals: vec![0.0; n],
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True when there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Bucket width in time units.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Adds a constant-rate contribution over `[start, end)`.
    ///
    /// The portion outside `[0, horizon)` is ignored; inverted intervals
    /// contribute nothing.
    pub fn add_interval(&mut self, start: u64, end: u64, rate: f64) {
        if end <= start || rate == 0.0 || self.totals.is_empty() {
            return;
        }
        let horizon = self.width * self.totals.len() as u64;
        let start = start.min(horizon);
        let end = end.min(horizon);
        if end <= start {
            return;
        }
        let first = (start / self.width) as usize;
        let last = ((end - 1) / self.width) as usize;
        for (b, total) in self
            .totals
            .iter_mut()
            .enumerate()
            .take(last + 1)
            .skip(first)
        {
            let b_start = b as u64 * self.width;
            let b_end = b_start + self.width;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            *total += rate * overlap as f64;
        }
    }

    /// Adds constant-rate contributions over the same `[start, end)` to
    /// two accumulators of identical shape — the CPU/memory pair every
    /// caller feeds in lock-step — computing the bucket span and the
    /// per-bucket overlaps once. Bit-identical to calling
    /// [`HourBuckets::add_interval`] on each: a zero rate contributes
    /// nothing to its series, exactly like that method's early return.
    ///
    /// # Panics
    ///
    /// Panics when the two accumulators' shapes differ.
    pub fn add_interval_pair(
        a: &mut HourBuckets,
        b: &mut HourBuckets,
        start: u64,
        end: u64,
        rate_a: f64,
        rate_b: f64,
    ) {
        assert_eq!(a.width, b.width, "bucket widths differ");
        assert_eq!(a.totals.len(), b.totals.len(), "bucket counts differ");
        if end <= start || (rate_a == 0.0 && rate_b == 0.0) || a.totals.is_empty() {
            return;
        }
        let horizon = a.width * a.totals.len() as u64;
        let start = start.min(horizon);
        let end = end.min(horizon);
        if end <= start {
            return;
        }
        let first = (start / a.width) as usize;
        let last = ((end - 1) / a.width) as usize;
        for i in first..=last {
            let b_start = i as u64 * a.width;
            let b_end = b_start + a.width;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            if rate_a != 0.0 {
                a.totals[i] += rate_a * overlap as f64;
            }
            if rate_b != 0.0 {
                b.totals[i] += rate_b * overlap as f64;
            }
        }
    }

    /// Adds an instantaneous amount to the bucket containing `t`.
    pub fn add_point(&mut self, t: u64, amount: f64) {
        let idx = (t / self.width) as usize;
        if let Some(total) = self.totals.get_mut(idx) {
            *total += amount;
        }
    }

    /// Raw accumulated resource-time per bucket.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Average rate per bucket: `total / width`, the quantity Figures 2
    /// and 4 plot once divided by cell capacity.
    pub fn average_rates(&self) -> Vec<f64> {
        self.totals.iter().map(|t| t / self.width as f64).collect()
    }

    /// Mean of the per-bucket average rates across the whole horizon —
    /// the per-tier bar heights of Figures 3 and 5.
    pub fn overall_average_rate(&self) -> f64 {
        if self.totals.is_empty() {
            return 0.0;
        }
        self.average_rates().iter().sum::<f64>() / self.totals.len() as f64
    }

    /// Element-wise sum with another accumulator of identical shape.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn merge(&mut self, other: &HourBuckets) {
        assert_eq!(self.width, other.width, "bucket widths differ");
        assert_eq!(
            self.totals.len(),
            other.totals.len(),
            "bucket counts differ"
        );
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += b;
        }
    }
}

/// Strength and phase of a periodic component in a uniformly sampled
/// series: the amplitude of the single-frequency Fourier component at
/// `period` samples, relative to the series mean, and the phase (in
/// samples) at which the component peaks.
///
/// Used to verify the diurnal cycles of Figure 2 and the timezone shift
/// of cell g (§4.1): a 24-bucket-period component on hourly utilization.
///
/// Returns `None` when the series is shorter than one period or has a
/// non-positive mean.
///
/// # Examples
///
/// ```
/// use borg_analysis::timeseries::periodic_component;
///
/// // A clean 24-sample sinusoid peaking at sample 6.
/// let series: Vec<f64> = (0..96)
///     .map(|i| 1.0 + 0.3 * (2.0 * std::f64::consts::PI * (i as f64 - 6.0) / 24.0).cos())
///     .collect();
/// let (strength, phase) = periodic_component(&series, 24).unwrap();
/// assert!((strength - 0.3).abs() < 0.01);
/// assert!((phase - 6.0).abs() < 0.5);
/// ```
pub fn periodic_component(series: &[f64], period: usize) -> Option<(f64, f64)> {
    if period == 0 || series.len() < period {
        return None;
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return None;
    }
    let omega = 2.0 * std::f64::consts::PI / period as f64;
    let mut re = 0.0;
    let mut im = 0.0;
    for (i, &x) in series.iter().enumerate() {
        let theta = omega * i as f64;
        re += (x - mean) * theta.cos();
        im += (x - mean) * theta.sin();
    }
    re *= 2.0 / n;
    im *= 2.0 / n;
    let amplitude = (re * re + im * im).sqrt();
    // The component is amplitude × cos(ω(i − phase)).
    let phase = im.atan2(re) / omega;
    let phase = (phase % period as f64 + period as f64) % period as f64;
    Some((amplitude / mean, phase))
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn interval_within_one_bucket() {
        let mut b = HourBuckets::new(100, 300);
        b.add_interval(10, 60, 4.0);
        assert_eq!(b.totals(), &[200.0, 0.0, 0.0]);
    }

    #[test]
    fn interval_spanning_buckets() {
        let mut b = HourBuckets::new(100, 300);
        b.add_interval(50, 250, 1.0);
        assert_eq!(b.totals(), &[50.0, 100.0, 50.0]);
    }

    #[test]
    fn interval_clipped_to_horizon() {
        let mut b = HourBuckets::new(100, 200);
        b.add_interval(150, 900, 2.0);
        assert_eq!(b.totals(), &[0.0, 100.0]);
    }

    #[test]
    fn inverted_and_zero_rate_ignored() {
        let mut b = HourBuckets::new(10, 100);
        b.add_interval(50, 40, 1.0);
        b.add_interval(0, 100, 0.0);
        assert!(b.totals().iter().all(|&t| t == 0.0));
    }

    #[test]
    fn average_rate_full_occupation() {
        let mut b = HourBuckets::new(60, 180);
        b.add_interval(0, 180, 0.5);
        assert_eq!(b.average_rates(), vec![0.5, 0.5, 0.5]);
        assert_eq!(b.overall_average_rate(), 0.5);
    }

    #[test]
    fn add_point() {
        let mut b = HourBuckets::new(10, 30);
        b.add_point(15, 7.0);
        b.add_point(29, 3.0);
        b.add_point(1000, 99.0); // out of range, ignored
        assert_eq!(b.totals(), &[0.0, 7.0, 3.0]);
    }

    #[test]
    fn merge_sums() {
        let mut a = HourBuckets::new(10, 20);
        let mut b = HourBuckets::new(10, 20);
        a.add_interval(0, 10, 1.0);
        b.add_interval(10, 20, 2.0);
        a.merge(&b);
        assert_eq!(a.totals(), &[10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        HourBuckets::new(0, 100);
    }

    #[test]
    fn horizon_rounds_up() {
        let b = HourBuckets::new(100, 250);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn periodic_component_finds_phase_shift() {
        let make = |peak_at: f64| -> Vec<f64> {
            (0..240)
                .map(|i| {
                    1.0 + 0.25 * (2.0 * std::f64::consts::PI * (i as f64 - peak_at) / 24.0).cos()
                })
                .collect()
        };
        let (s0, p0) = periodic_component(&make(3.0), 24).unwrap();
        let (s1, p1) = periodic_component(&make(15.0), 24).unwrap();
        assert!((s0 - 0.25).abs() < 0.01 && (s1 - 0.25).abs() < 0.01);
        let shift = (p1 - p0 + 24.0) % 24.0;
        assert!((shift - 12.0).abs() < 0.5, "shift = {shift}");
    }

    #[test]
    fn periodic_component_rejects_degenerate() {
        assert!(periodic_component(&[1.0; 10], 24).is_none());
        assert!(periodic_component(&[1.0; 48], 0).is_none());
        let (s, _) = periodic_component(&[1.0; 48], 24).unwrap();
        assert!(s < 1e-12, "flat series has no cycle");
    }
}
