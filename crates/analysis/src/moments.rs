//! Streaming moments: mean, variance, and the squared coefficient of
//! variation (C²) that §7 of the paper centers on.

/// Streaming estimator of count, mean, and variance using Welford's
/// algorithm, which is numerically stable for the enormous dynamic ranges
/// found in cluster traces (job usage integrals span nine orders of
/// magnitude).
///
/// # Examples
///
/// ```
/// use borg_analysis::moments::Moments;
///
/// let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(m.mean(), 5.0);
/// assert_eq!(m.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    ///
    /// Non-finite values are ignored so that a stray sentinel in a trace
    /// cannot poison a month-long aggregation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by `n`); 0 when fewer than 1 observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n - 1`); 0 when fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The squared coefficient of variation, `C² = variance / mean²`.
    ///
    /// This is the headline variability statistic of §7: the paper reports
    /// C² ≈ 23 312 for 2019 CPU usage integrals and C² ≈ 43 476 for memory.
    /// C² is invariant to rescaling the data, which is what makes it
    /// comparable across traces with different normalization constants.
    ///
    /// Returns 0 for an empty accumulator and `+inf` when the mean is zero
    /// but the variance is not.
    pub fn c_squared(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let var = self.sample_variance();
        if self.mean == 0.0 {
            if var == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            var / (self.mean * self.mean)
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.c_squared(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut m = Moments::new();
        m.push(42.0);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert_eq!(m.mean(), 5.0);
        assert!((m.population_variance() - 4.0).abs() < 1e-12);
        assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn c_squared_exponential_like() {
        // For data where sample variance equals mean², C² = 1 (the
        // exponential-distribution reference point quoted in §7).
        let m: Moments = [0.0, 2.0].iter().copied().collect();
        assert!((m.c_squared() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn c_squared_scale_invariant() {
        let xs = [0.5, 1.5, 2.5, 8.0, 100.0];
        let a: Moments = xs.iter().copied().collect();
        let b: Moments = xs.iter().map(|x| x * 1234.5).collect();
        assert!((a.c_squared() - b.c_squared()).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let whole: Moments = xs.iter().copied().collect();
        let mut left: Moments = xs[..37].iter().copied().collect();
        let right: Moments = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: Moments = [1.0, 2.0].iter().copied().collect();
        let b = Moments::new();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c = Moments::new();
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert_eq!(c.mean(), 1.5);
    }

    #[test]
    fn ignores_non_finite() {
        let mut m = Moments::new();
        m.push(f64::NAN);
        m.push(f64::INFINITY);
        m.push(3.0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 3.0);
    }
}
