#![warn(missing_docs)]

//! Statistical analysis primitives for cluster-trace studies.
//!
//! This crate provides the mathematical toolkit used by the reproduction of
//! *Borg: the Next Generation* (EuroSys 2020): complementary cumulative
//! distribution functions (CCDFs), streaming moments and the squared
//! coefficient of variation, percentile estimation, Pareto tail fitting with
//! goodness of fit, Pearson correlation and bucketed-median curves,
//! time-bucketed aggregation, histograms, and M/G/1 queueing formulas.
//!
//! Everything here is dependency-free and deterministic, so results are
//! reproducible bit-for-bit across runs.
//!
//! # Examples
//!
//! ```
//! use borg_analysis::moments::Moments;
//!
//! let mut m = Moments::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     m.push(x);
//! }
//! assert_eq!(m.mean(), 2.5);
//! ```

pub mod ccdf;
pub mod correlation;
pub mod histogram;
pub mod lorenz;
pub mod moments;
pub mod pareto;
pub mod percentile;
pub mod queueing;
pub mod regression;
pub mod timeseries;

pub use ccdf::Ccdf;
pub use correlation::{bucketed_medians, pearson};
pub use histogram::{Histogram, LogHistogram};
pub use lorenz::{gini, Lorenz};
pub use moments::Moments;
pub use pareto::{ParetoFit, TailShare};
pub use percentile::{percentile, percentiles};
pub use queueing::{mg1_mean_queueing_delay, mm1_mean_queueing_delay};
pub use regression::LinearFit;
pub use timeseries::{periodic_component, HourBuckets};
