//! Correlation analyses.
//!
//! §7.2 of the paper shows that per-job compute and memory consumption are
//! strongly correlated: jobs are bucketed by NCU-hours into 1-hour-wide
//! buckets and the median NMU-hours per bucket is nearly linear in the
//! bucket index, with a Pearson coefficient of 0.97 (Figure 13).

/// Pearson correlation coefficient of paired samples.
///
/// Returns `None` with fewer than two finite pairs or when either variable
/// is constant.
///
/// # Examples
///
/// ```
/// use borg_analysis::correlation::pearson;
///
/// let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64)).collect();
/// assert!((pearson(&pairs).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = pairs
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in &pts {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// One bucket of the Figure 13 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower edge of the x bucket.
    pub x_lo: f64,
    /// Exclusive upper edge of the x bucket.
    pub x_hi: f64,
    /// Median of the y values whose x fell in this bucket.
    pub median_y: f64,
    /// Number of pairs in the bucket.
    pub count: usize,
}

/// Buckets pairs by `x` into `width`-wide bins and reports the median `y`
/// of each non-empty bin, exactly as Figure 13 buckets jobs into
/// 1-NCU-hour bins and plots the median NMU-hours.
///
/// Returns an empty vector for empty input.
///
/// # Panics
///
/// Panics when `width` is not strictly positive.
pub fn bucketed_medians(pairs: &[(f64, f64)], width: f64) -> Vec<Bucket> {
    assert!(width > 0.0, "bucket width must be positive");
    let mut by_bucket: std::collections::BTreeMap<i64, Vec<f64>> =
        std::collections::BTreeMap::new();
    for &(x, y) in pairs {
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let idx = (x / width).floor() as i64;
        by_bucket.entry(idx).or_default().push(y);
    }
    by_bucket
        .into_iter()
        .map(|(idx, mut ys)| {
            ys.sort_by(|a, b| a.total_cmp(b));
            Bucket {
                x_lo: idx as f64 * width,
                x_hi: (idx + 1) as f64 * width,
                median_y: crate::percentile::percentile_of_sorted(&ys, 50.0),
                count: ys.len(),
            }
        })
        .collect()
}

/// Pearson correlation between bucket centers and bucket medians — the
/// statistic the paper actually quotes for Figure 13.
pub fn bucketed_median_correlation(pairs: &[(f64, f64)], width: f64) -> Option<f64> {
    let buckets = bucketed_medians(pairs, width);
    let pts: Vec<(f64, f64)> = buckets
        .iter()
        .map(|b| ((b.x_lo + b.x_hi) / 2.0, b.median_y))
        .collect();
    pearson(&pts)
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let pairs: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        assert!((pearson(&pairs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let pairs: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, -(i as f64))).collect();
        assert!((pearson(&pairs).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_symmetric() {
        // y depends only on |x|, symmetric around x = 0: correlation 0.
        let pairs: Vec<(f64, f64)> = (-50..=50).map(|i| (i as f64, (i as f64).abs())).collect();
        assert!(pearson(&pairs).unwrap().abs() < 1e-12);
    }

    #[test]
    fn constant_rejected() {
        let pairs = vec![(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)];
        assert_eq!(pearson(&pairs), None);
        assert_eq!(pearson(&[(1.0, 2.0)]), None);
    }

    #[test]
    fn buckets_collect_medians() {
        let pairs = vec![(0.1, 1.0), (0.9, 3.0), (0.5, 2.0), (1.5, 10.0), (2.7, 20.0)];
        let buckets = bucketed_medians(&pairs, 1.0);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].median_y, 2.0);
        assert_eq!(buckets[0].count, 3);
        assert_eq!(buckets[1].median_y, 10.0);
        assert_eq!(buckets[2].x_lo, 2.0);
    }

    #[test]
    fn bucketed_correlation_linear_relation() {
        // y = 0.5 x with multiplicative noise still yields near-1 bucketed
        // median correlation.
        let pairs: Vec<(f64, f64)> = (1..2000)
            .map(|i| {
                let x = i as f64 * 0.01;
                let noise = 1.0 + 0.3 * ((i as f64) * 0.77).sin();
                (x, 0.5 * x * noise)
            })
            .collect();
        let r = bucketed_median_correlation(&pairs, 1.0).unwrap();
        assert!(r > 0.95, "r = {r}");
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        bucketed_medians(&[(1.0, 1.0)], 0.0);
    }
}
