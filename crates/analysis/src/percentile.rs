//! Percentile estimation on samples.
//!
//! The paper reports medians, 90/99/99.9 percentiles and maxima of the
//! per-job usage integrals (Table 2). These helpers compute percentiles on
//! in-memory samples with linear interpolation between order statistics
//! (the "type 7" estimator used by most statistics packages).

/// Computes the `p`-th percentile (0 ≤ `p` ≤ 100) of `xs` with linear
/// interpolation between closest ranks.
///
/// The input slice is copied and sorted internally; call [`percentiles`]
/// when several percentiles of the same data are needed.
///
/// Returns `None` for an empty input or a `p` outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use borg_analysis::percentile::percentile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(percentile_of_sorted(&sorted, p))
}

/// Computes several percentiles of the same data with a single sort.
///
/// Returns `None` if the input is empty or any requested percentile is out
/// of range.
pub fn percentiles(xs: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() || ps.iter().any(|p| !(0.0..=100.0).contains(p)) {
        return None;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(
        ps.iter()
            .map(|&p| percentile_of_sorted(&sorted, p))
            .collect(),
    )
}

/// Percentile on an already-sorted, non-empty slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The fraction of total mass contributed by the top `top_percent` percent
/// of the largest values.
///
/// This is the paper's "hogs" statistic: in the 2019 trace the top 1% of
/// jobs account for 99.2% of all NCU-hours (Table 2). A value of `1.0` for
/// `top_percent` computes exactly that share.
///
/// Returns `None` on empty input, non-positive totals, or an out-of-range
/// `top_percent`.
///
/// # Examples
///
/// ```
/// use borg_analysis::percentile::top_share;
///
/// // One hog of 99 units among 99 mice of ~0.0101 units each.
/// let mut xs = vec![0.0101; 99];
/// xs.push(99.0);
/// let share = top_share(&xs, 1.0).unwrap();
/// assert!(share > 0.98);
/// ```
pub fn top_share(xs: &[f64], top_percent: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&top_percent) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return None;
    }
    // At least one job belongs to the top group whenever top_percent > 0.
    let k = ((top_percent / 100.0 * sorted.len() as f64).round() as usize)
        .max(usize::from(top_percent > 0.0))
        .min(sorted.len());
    let top: f64 = sorted[..k].iter().sum();
    Some(top / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_even_count_interpolates() {
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), Some(2.5));
    }

    #[test]
    fn median_of_odd_count_is_middle() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), Some(3.0));
    }

    #[test]
    fn extremes() {
        let xs = [9.0, 2.0, 7.0];
        assert_eq!(percentile(&xs, 0.0), Some(2.0));
        assert_eq!(percentile(&xs, 100.0), Some(9.0));
    }

    #[test]
    fn empty_and_out_of_range() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[1.0], -1.0), None);
        assert_eq!(percentile(&[1.0], 101.0), None);
    }

    #[test]
    fn multi_percentile_matches_single() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let got = percentiles(&xs, &[10.0, 50.0, 90.0, 99.0]).unwrap();
        assert_eq!(got, vec![10.0, 50.0, 90.0, 99.0]);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 33.0), Some(7.0));
    }

    #[test]
    fn top_share_uniform_is_proportional() {
        let xs = vec![1.0; 100];
        let s = top_share(&xs, 10.0).unwrap();
        assert!((s - 0.10).abs() < 1e-12);
    }

    #[test]
    fn top_share_hog_dominates() {
        let mut xs = vec![0.001; 999];
        xs.push(1000.0);
        let s = top_share(&xs, 0.1).unwrap();
        assert!(s > 0.999, "share = {s}");
    }

    #[test]
    fn top_share_rejects_zero_total() {
        assert_eq!(top_share(&[0.0, 0.0], 1.0), None);
    }

    #[test]
    fn non_finite_filtered() {
        assert_eq!(percentile(&[f64::NAN, 1.0, 3.0], 50.0), Some(2.0));
    }
}
