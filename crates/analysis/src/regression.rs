//! Ordinary least-squares linear regression.
//!
//! Used by the Pareto tail fit (§7), which regresses `log P(X > x)` on
//! `log x` and reports the slope as `-α` together with the R² goodness of
//! fit (the paper reports R² > 99%).

/// Result of fitting `y = slope * x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Fits a line to `(x, y)` pairs; returns `None` with fewer than two
    /// distinct x values.
    ///
    /// # Examples
    ///
    /// ```
    /// use borg_analysis::regression::LinearFit;
    ///
    /// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
    /// let fit = LinearFit::fit(&pts).unwrap();
    /// assert!((fit.slope - 3.0).abs() < 1e-12);
    /// assert!((fit.intercept - 1.0).abs() < 1e-12);
    /// assert!((fit.r_squared - 1.0).abs() < 1e-12);
    /// ```
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let n = pts.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = pts.iter().map(|p| p.0).sum::<f64>() / nf;
        let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in &pts {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy == 0.0 {
            // A perfectly horizontal relationship is perfectly explained.
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
            n,
        })
    }

    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, -2.0 * i as f64 + 5.0)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 20);
    }

    #[test]
    fn noisy_line_good_r2() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                // Small deterministic "noise".
                (x, 4.0 * x + (i as f64 * 0.7).sin())
            })
            .collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 4.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn too_few_points() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
    }

    #[test]
    fn vertical_points_rejected() {
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 5.0)]).is_none());
    }

    #[test]
    fn horizontal_points_r2_one() {
        let fit = LinearFit::fit(&[(0.0, 3.0), (1.0, 3.0), (2.0, 3.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn predict_roundtrip() {
        let fit = LinearFit::fit(&[(0.0, 1.0), (2.0, 5.0)]).unwrap();
        assert!((fit.predict(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn filters_non_finite() {
        let fit = LinearFit::fit(&[(0.0, 1.0), (f64::NAN, 9.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.n, 2);
    }
}
