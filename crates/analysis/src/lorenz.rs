//! Lorenz curves and the Gini coefficient.
//!
//! §7's "hogs and mice" statistic (top-1% load share) is one point on the
//! Lorenz curve of per-job consumption. The full curve and its Gini
//! coefficient summarize load concentration in one number: a Gini near 1
//! means a few jobs carry nearly all the load — the 2019 trace's regime.

/// A Lorenz curve: cumulative load share versus cumulative population
/// share, jobs sorted smallest first.
#[derive(Debug, Clone, PartialEq)]
pub struct Lorenz {
    /// Points `(population share, load share)`, both in `[0, 1]`,
    /// starting at `(0, 0)` and ending at `(1, 1)`.
    pub points: Vec<(f64, f64)>,
}

impl Lorenz {
    /// Builds the Lorenz curve of non-negative samples, compressed to at
    /// most `resolution + 1` points. Returns `None` on empty input or a
    /// non-positive total.
    pub fn from_samples(xs: &[f64], resolution: usize) -> Option<Lorenz> {
        let mut sorted: Vec<f64> = xs
            .iter()
            .copied()
            .filter(|x| x.is_finite() && *x >= 0.0)
            .collect();
        if sorted.is_empty() || resolution == 0 {
            return None;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        let total: f64 = sorted.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let n = sorted.len();
        let mut points = Vec::with_capacity(resolution + 1);
        points.push((0.0, 0.0));
        let mut cumulative = 0.0;
        let mut next_emit = 1;
        for (i, &x) in sorted.iter().enumerate() {
            cumulative += x;
            // Emit at evenly spaced population shares plus the endpoint.
            while next_emit <= resolution
                && (i + 1) as f64 / n as f64 >= next_emit as f64 / resolution as f64
            {
                points.push(((i + 1) as f64 / n as f64, cumulative / total));
                next_emit += 1;
            }
        }
        if points.last().map(|p| p.1) != Some(1.0) {
            points.push((1.0, 1.0));
        }
        Some(Lorenz { points })
    }

    /// The load share of the largest `top` fraction of jobs (e.g.
    /// `top = 0.01` reads off the paper's top-1% statistic).
    pub fn top_share(&self, top: f64) -> f64 {
        let pop = 1.0 - top;
        // Linear interpolation on the curve.
        let mut prev = (0.0, 0.0);
        for &(x, y) in &self.points {
            if x >= pop {
                let frac = if x > prev.0 {
                    (pop - prev.0) / (x - prev.0)
                } else {
                    0.0
                };
                let at = prev.1 + (y - prev.1) * frac;
                return 1.0 - at;
            }
            prev = (x, y);
        }
        0.0
    }
}

/// The Gini coefficient of non-negative samples: 0 = perfectly equal,
/// → 1 = all load on one job.
///
/// Computed exactly from the sorted sample:
/// `G = (2 Σ i·x_(i) / (n Σ x)) − (n + 1)/n`.
///
/// Returns `None` on empty input or a non-positive total.
///
/// # Examples
///
/// ```
/// use borg_analysis::lorenz::gini;
///
/// assert!(gini(&[1.0, 1.0, 1.0, 1.0]).unwrap() < 1e-12);
/// assert!(gini(&[0.0, 0.0, 0.0, 100.0]).unwrap() > 0.7);
/// ```
pub fn gini(xs: &[f64]) -> Option<f64> {
    let mut sorted: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x >= 0.0)
        .collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Some((2.0 * weighted / (n * total)) - (n + 1.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_distribution_gini_zero() {
        assert!(gini(&[5.0; 100]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn single_hog_gini_near_one() {
        let mut xs = vec![0.0; 999];
        xs.push(1.0);
        let g = gini(&xs).unwrap();
        assert!(g > 0.99, "gini = {g}");
    }

    #[test]
    fn gini_of_uniform_is_one_third() {
        // For U(0, 1), G = 1/3.
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64 + 0.5) / 10_000.0).collect();
        let g = gini(&xs).unwrap();
        assert!((g - 1.0 / 3.0).abs() < 1e-3, "gini = {g}");
    }

    #[test]
    fn lorenz_curve_endpoints_and_convexity() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let l = Lorenz::from_samples(&xs, 20).unwrap();
        assert_eq!(l.points.first(), Some(&(0.0, 0.0)));
        assert_eq!(l.points.last().map(|p| p.1), Some(1.0));
        // Lorenz curves lie below the diagonal and are non-decreasing.
        let mut prev_y = 0.0;
        for &(x, y) in &l.points {
            assert!(y <= x + 1e-9, "below diagonal at ({x}, {y})");
            assert!(y >= prev_y - 1e-12);
            prev_y = y;
        }
    }

    #[test]
    fn lorenz_top_share_matches_top_share_fn() {
        let xs: Vec<f64> = (1..=1000).map(|i| (i as f64).powi(3)).collect();
        let l = Lorenz::from_samples(&xs, 1000).unwrap();
        let direct = crate::percentile::top_share(&xs, 1.0).unwrap();
        let via_lorenz = l.top_share(0.01);
        assert!(
            (direct - via_lorenz).abs() < 0.01,
            "direct {direct} vs lorenz {via_lorenz}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(gini(&[]).is_none());
        assert!(gini(&[0.0, 0.0]).is_none());
        assert!(Lorenz::from_samples(&[], 10).is_none());
        assert!(Lorenz::from_samples(&[1.0], 0).is_none());
    }

    #[test]
    fn heavy_tail_has_extreme_gini() {
        // Pareto(0.7)-style: inverse-CDF samples.
        let xs: Vec<f64> = (1..=50_000)
            .map(|i| {
                let u = (i as f64 - 0.5) / 50_000.0;
                u.powf(-1.0 / 0.7).min(1e5)
            })
            .collect();
        let g = gini(&xs).unwrap();
        assert!(g > 0.9, "heavy-tailed gini = {g}");
    }
}
