//! Fixed-bin and logarithmic histograms.
//!
//! The 2019 trace attaches a 21-element CPU-utilization histogram to every
//! 5-minute usage sample (§3); [`Histogram`] provides the general machinery
//! and `borg-trace` builds the biased-percentile variant on top of it.
//! [`LogHistogram`] supports the log-log CCDF plots (Figure 12) where data
//! spans nine orders of magnitude.

/// A histogram with uniform-width bins over `[lo, hi)` plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Upper edge of bin `i`.
    pub fn bin_hi(&self, i: usize) -> f64 {
        self.bin_lo(i + 1)
    }

    /// Approximate quantile `q` in `[0, 1]` from bin midpoints; `None`
    /// when the histogram is empty or all mass is in under/overflow.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((self.bin_lo(i) + self.bin_hi(i)) / 2.0);
            }
        }
        Some(self.hi)
    }
}

/// A histogram with logarithmically spaced bins, for data spanning many
/// orders of magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    log_lo: f64,
    log_hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates `bins` log-spaced bins over `[lo, hi)`; both positive.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0`, `lo <= 0`, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0 && lo < hi, "log histogram needs 0 < lo < hi");
        LogHistogram {
            log_lo: lo.ln(),
            log_hi: hi.ln(),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation; non-positive and non-finite values count as
    /// underflow.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() || x <= 0.0 {
            self.underflow += 1;
            return;
        }
        let lx = x.ln();
        if lx < self.log_lo {
            self.underflow += 1;
        } else if lx >= self.log_hi {
            self.overflow += 1;
        } else {
            let frac = (lx - self.log_lo) / (self.log_hi - self.log_lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Geometric midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + w * (i as f64 + 0.5)).exp()
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations that fell below range (or were non-positive).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
// Exact equality below asserts deterministically-computed values reproduce
// bit-for-bit; approximate comparison would mask a determinism regression.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fill() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn bin_edges() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_hi(0), 25.0);
        assert_eq!(h.bin_hi(3), 100.0);
    }

    #[test]
    fn quantile_midpoints() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..9 {
            h.push(0.5);
        }
        h.push(9.5);
        assert_eq!(h.quantile(0.5), Some(0.5));
        assert_eq!(h.quantile(1.0), Some(9.5));
        assert_eq!(h.quantile(2.0), None);
    }

    #[test]
    fn empty_quantile() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn log_bins_per_decade() {
        let mut h = LogHistogram::new(1e-3, 1e3, 6);
        h.push(3e-3); // decade [1e-3, 1e-2)
        h.push(30.0); // decade [1e1, 1e2)
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn log_rejects_nonpositive_values_as_underflow() {
        let mut h = LogHistogram::new(0.1, 10.0, 2);
        h.push(0.0);
        h.push(-5.0);
        h.push(f64::NAN);
        assert_eq!(h.underflow(), 3);
    }

    #[test]
    fn log_bin_center_geometric() {
        let h = LogHistogram::new(1.0, 100.0, 2);
        assert!((h.bin_center(0) - 10f64.powf(0.5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
